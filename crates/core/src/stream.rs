//! Online (streaming) co-analysis.
//!
//! The batch pipeline answers "what happened last quarter"; a control room
//! needs the same filters applied to records *as they arrive*. This module
//! provides an incremental analyzer that:
//!
//! * deduplicates the FATAL stream online with the *same*
//!   [`DedupWindow`](crate::filter::DedupWindow) rolling-window core the
//!   batch `TemporalSpatial` stage instantiates (fed the same records in
//!   the same order, it surfaces exactly the events the batch
//!   temporal+spatial stack keeps — the equivalence is structural, and the
//!   test pins it);
//! * optionally applies a per-code impact map learned from an earlier
//!   offline run, so warnings skip the codes co-analysis has shown to be
//!   harmless (Observation 1 in production).
//!
//! Causality and job-related filtering need hindsight (rule mining, "did a
//! clean job run in between"), so the streaming stage intentionally stops at
//! temporal+spatial — the stages that kill 95+ % of the volume.

use crate::classify::ImpactSummary;
use crate::filter::{DedupDecision, DedupWindow};
use bgp_model::{Duration, Location, Timestamp};
use raslog::{ErrCode, RasRecord, Severity};

/// One coherent snapshot of an [`OnlineAnalyzer`]'s counters.
///
/// The daemon and the tests read a single snapshot instead of four separate
/// getters, so the numbers are guaranteed to describe the same instant. The
/// struct is also the unit of **shard merging**: a pool of analyzers sharded
/// by error code sums its per-shard snapshots with [`StreamCounters::merge`]
/// to recover the global stream totals (both dedup keys include the error
/// code, so per-code sharding partitions the counter space exactly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounters {
    /// Records consumed (any severity).
    pub records_in: u64,
    /// FATAL records consumed.
    pub fatal_in: u64,
    /// Fatal records absorbed by the temporal window (same code + location).
    pub merged_temporal: u64,
    /// Temporal survivors absorbed by the spatial window (same code anywhere).
    pub merged_spatial: u64,
    /// Independent events surfaced.
    pub events_out: u64,
    /// Events that warranted a warning under the impact map.
    pub warnings: u64,
}

impl StreamCounters {
    /// Sum two snapshots field-wise — the shard-merge operation.
    #[must_use]
    pub fn merge(self, other: StreamCounters) -> StreamCounters {
        StreamCounters {
            records_in: self.records_in + other.records_in,
            fatal_in: self.fatal_in + other.fatal_in,
            merged_temporal: self.merged_temporal + other.merged_temporal,
            merged_spatial: self.merged_spatial + other.merged_spatial,
            events_out: self.events_out + other.events_out,
            warnings: self.warnings + other.warnings,
        }
    }

    /// Compression ratio over the fatal stream (0 when no fatals seen).
    pub fn compression(&self) -> f64 {
        if self.fatal_in == 0 {
            return 0.0;
        }
        1.0 - self.events_out as f64 / self.fatal_in as f64
    }

    /// Internal consistency: every fatal record is merged or surfaced.
    pub fn is_consistent(&self) -> bool {
        self.fatal_in == self.merged_temporal + self.merged_spatial + self.events_out
            && self.fatal_in <= self.records_in
            && self.warnings <= self.events_out
    }
}

/// What the analyzer did with one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamDecision {
    /// Below-FATAL severity: not part of the fatal stream.
    NotFatal,
    /// Merged into the current storm at the same (code, location).
    MergedTemporal,
    /// Same code seen elsewhere within the spatial window.
    MergedSpatial,
    /// A new independent fatal event. Carries whether the impact map says
    /// it deserves a warning.
    NewEvent {
        /// Warn the operator / predictor?
        warn: bool,
    },
}

/// The streaming analyzer. Feed records in non-decreasing time order.
///
/// ```
/// use bgp_model::Timestamp;
/// use coanalysis::stream::{OnlineAnalyzer, StreamDecision};
/// use raslog::{Catalog, RasRecord};
///
/// let code = Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap();
/// let mut monitor = OnlineAnalyzer::new();
/// let at = |t| RasRecord::new(t, Timestamp::from_unix(t as i64),
///                             "R00-M0-N00-J00".parse().unwrap(), code);
/// assert!(matches!(monitor.push(&at(0)), StreamDecision::NewEvent { .. }));
/// assert_eq!(monitor.push(&at(10)), StreamDecision::MergedTemporal);
/// assert_eq!(monitor.events_out(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineAnalyzer {
    /// Rolling window per (code, exact location) — the temporal half.
    temporal: DedupWindow<(ErrCode, Location)>,
    /// Rolling window per code (fed temporal survivors only, mirroring the
    /// batch stack) — the spatial half.
    spatial: DedupWindow<ErrCode>,
    /// Optional per-code impact verdicts from an offline run.
    impact: Option<ImpactSummary>,
    counters: StreamCounters,
}

impl OnlineAnalyzer {
    /// An analyzer with the default batch thresholds and no impact map
    /// (every new event warns).
    pub fn new() -> OnlineAnalyzer {
        OnlineAnalyzer::with_thresholds(Duration::minutes(5), Duration::minutes(5))
    }

    /// Custom thresholds.
    pub fn with_thresholds(temporal: Duration, spatial: Duration) -> OnlineAnalyzer {
        OnlineAnalyzer {
            temporal: DedupWindow::new(temporal),
            spatial: DedupWindow::new(spatial),
            impact: None,
            counters: StreamCounters::default(),
        }
    }

    /// Install an impact map from an offline co-analysis run: new events of
    /// codes classified non-fatal stop warning.
    pub fn with_impact(mut self, impact: ImpactSummary) -> OnlineAnalyzer {
        self.impact = Some(impact);
        self
    }

    /// Process one record.
    pub fn push(&mut self, r: &RasRecord) -> StreamDecision {
        self.counters.records_in += 1;
        if r.severity != Severity::Fatal {
            return StreamDecision::NotFatal;
        }
        self.counters.fatal_in += 1;

        // Temporal: same code at the same exact location, rolling window.
        // A stream keeps no output buffer, so the slot argument is unused.
        let tkey = (r.errcode, r.location);
        if let DedupDecision::Merged(_) = self.temporal.observe(tkey, r.event_time, 0) {
            self.counters.merged_temporal += 1;
            return StreamDecision::MergedTemporal;
        }

        // Spatial: same code anywhere, rolling window over temporal
        // survivors.
        if let DedupDecision::Merged(_) = self.spatial.observe(r.errcode, r.event_time, 0) {
            self.counters.merged_spatial += 1;
            return StreamDecision::MergedSpatial;
        }

        self.counters.events_out += 1;
        let warn = self
            .impact
            .as_ref()
            .and_then(|i| i.per_code.get(&r.errcode))
            .is_none_or(|v| v.treat_as_fatal());
        if warn {
            self.counters.warnings += 1;
        }
        StreamDecision::NewEvent { warn }
    }

    /// One coherent snapshot of every counter.
    pub fn counters(&self) -> StreamCounters {
        self.counters
    }

    /// Records consumed so far.
    pub fn records_in(&self) -> u64 {
        self.counters.records_in
    }

    /// FATAL records consumed so far.
    pub fn fatal_in(&self) -> u64 {
        self.counters.fatal_in
    }

    /// Independent events surfaced so far.
    pub fn events_out(&self) -> u64 {
        self.counters.events_out
    }

    /// Warnings raised so far.
    pub fn warnings(&self) -> u64 {
        self.counters.warnings
    }

    /// Running compression ratio over the fatal stream.
    pub fn compression(&self) -> f64 {
        self.counters.compression()
    }

    /// Drop rolling state older than `horizon` before `now` — call
    /// periodically on a long-running stream to bound memory.
    pub fn evict_before(&mut self, now: Timestamp, horizon: Duration) {
        let cutoff = now - horizon;
        self.temporal.evict_before(cutoff);
        self.spatial.evict_before(cutoff);
    }
}

impl Default for OnlineAnalyzer {
    fn default() -> Self {
        OnlineAnalyzer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::filter::{SpatialFilter, TemporalFilter};
    use bgp_sim::{SimConfig, Simulation};
    use raslog::Catalog;

    fn rec(recid: u64, t: i64, loc: &str, name: &str) -> RasRecord {
        RasRecord::new(
            recid,
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
        )
    }

    #[test]
    fn decisions_follow_the_windows() {
        let mut a = OnlineAnalyzer::new();
        assert_eq!(
            a.push(&rec(1, 0, "R00-M0-N00-J00", "_bgp_warn_ecc_corrected")),
            StreamDecision::NotFatal
        );
        assert_eq!(
            a.push(&rec(2, 10, "R00-M0-N00-J00", "_bgp_err_kernel_panic")),
            StreamDecision::NewEvent { warn: true }
        );
        // Same code + location inside the window.
        assert_eq!(
            a.push(&rec(3, 50, "R00-M0-N00-J00", "_bgp_err_kernel_panic")),
            StreamDecision::MergedTemporal
        );
        // Same code, different location, inside the spatial window.
        assert_eq!(
            a.push(&rec(4, 90, "R11-M1-N00-J00", "_bgp_err_kernel_panic")),
            StreamDecision::MergedSpatial
        );
        // Far in the future: a fresh event.
        assert_eq!(
            a.push(&rec(5, 10_000, "R00-M0-N00-J00", "_bgp_err_kernel_panic")),
            StreamDecision::NewEvent { warn: true }
        );
        assert_eq!(a.records_in(), 5);
        assert_eq!(a.fatal_in(), 4);
        assert_eq!(a.events_out(), 2);
        assert_eq!(a.warnings(), 2);
        assert!(a.compression() > 0.4);
        // The snapshot agrees with the getters and tracks the merges.
        let c = a.counters();
        assert_eq!(
            c,
            StreamCounters {
                records_in: 5,
                fatal_in: 4,
                merged_temporal: 1,
                merged_spatial: 1,
                events_out: 2,
                warnings: 2,
            }
        );
        assert!(c.is_consistent());
    }

    #[test]
    fn counters_merge_recovers_per_code_sharded_totals() {
        // Shard by error code: the merged snapshot equals the single
        // analyzer's because both dedup keys include the code.
        let pool = ["_bgp_err_kernel_panic", "_bgp_err_ddr_controller"];
        let records: Vec<RasRecord> = (0..60)
            .map(|i| rec(i, i as i64 * 40, "R00-M0", pool[i as usize % 2]))
            .collect();
        let mut single = OnlineAnalyzer::new();
        let mut shards = [OnlineAnalyzer::new(), OnlineAnalyzer::new()];
        for r in &records {
            single.push(r);
            shards[r.errcode.index() % 2].push(r);
        }
        assert_ne!(
            records[0].errcode.index() % 2,
            records[1].errcode.index() % 2,
            "fixture should actually split across shards"
        );
        let merged = shards[0].counters().merge(shards[1].counters());
        assert_eq!(merged.fatal_in, single.counters().fatal_in);
        assert_eq!(merged.events_out, single.counters().events_out);
        assert_eq!(merged.merged_temporal, single.counters().merged_temporal);
        assert_eq!(merged.merged_spatial, single.counters().merged_spatial);
        assert!(merged.is_consistent());
    }

    #[test]
    fn impact_map_suppresses_nonfatal_warnings() {
        use crate::classify::{CodeImpact, ImpactSummary};
        let bulk = Catalog::standard().lookup("BULK_POWER_FATAL").unwrap();
        let mut impact = ImpactSummary::default();
        impact.per_code.insert(bulk, CodeImpact::NonFatal);
        let mut a = OnlineAnalyzer::new().with_impact(impact);
        assert_eq!(
            a.push(&rec(1, 0, "R00-B", "BULK_POWER_FATAL")),
            StreamDecision::NewEvent { warn: false }
        );
        // An unknown code stays pessimistic.
        assert_eq!(
            a.push(&rec(2, 10_000, "R00-M0", "_bgp_err_ddr_controller")),
            StreamDecision::NewEvent { warn: true }
        );
        assert_eq!(a.warnings(), 1);
        assert_eq!(a.events_out(), 2);
    }

    #[test]
    fn equivalent_to_batch_temporal_spatial() {
        // Feed a whole simulated log through the online analyzer: the event
        // count must equal the batch temporal→spatial stack's.
        let out = Simulation::new(SimConfig::small_test(21))
            .expect("valid config")
            .run();
        let mut online = OnlineAnalyzer::new();
        for r in out.ras.records() {
            online.push(r);
        }
        let raw = Event::from_fatal_records(&out.ras);
        let batch = SpatialFilter::default().apply(&TemporalFilter::default().apply(&raw));
        assert_eq!(online.events_out() as usize, batch.len());
        assert_eq!(online.fatal_in() as usize, raw.len());
    }

    proptest::proptest! {
        /// For ANY time-sorted record stream, the online analyzer surfaces
        /// exactly the events the batch temporal→spatial stack keeps.
        #[test]
        fn equivalent_to_batch_on_arbitrary_streams(
            gaps in proptest::collection::vec(0i64..2_000, 1..150),
            codes in proptest::collection::vec(0usize..3, 1..150),
            locs in proptest::collection::vec(0u8..4, 1..150),
        ) {
            let cat = Catalog::standard();
            let pool = [
                cat.lookup("_bgp_err_kernel_panic").unwrap(),
                cat.lookup("_bgp_err_ddr_controller").unwrap(),
                cat.lookup("BULK_POWER_FATAL").unwrap(),
            ];
            let n = gaps.len().min(codes.len()).min(locs.len());
            let mut t = 0i64;
            let records: Vec<RasRecord> = (0..n)
                .map(|i| {
                    t += gaps[i];
                    RasRecord::new(
                        i as u64,
                        Timestamp::from_unix(t),
                        format!("R0{}-M0", locs[i]).parse().unwrap(),
                        pool[codes[i] % pool.len()],
                    )
                })
                .collect();
            let mut online = OnlineAnalyzer::new();
            for r in &records {
                online.push(r);
            }
            let raw: Vec<Event> = records.iter().map(Event::from_record).collect();
            let batch =
                SpatialFilter::default().apply(&TemporalFilter::default().apply(&raw));
            proptest::prop_assert_eq!(online.events_out() as usize, batch.len());
        }
    }

    #[test]
    fn eviction_bounds_memory_without_changing_semantics_nearby() {
        let mut a = OnlineAnalyzer::new();
        for i in 0..100 {
            a.push(&rec(
                i,
                i as i64 * 10_000,
                "R00-M0-N00-J00",
                "_bgp_err_kernel_panic",
            ));
        }
        assert_eq!(a.temporal.len(), 1);
        a.evict_before(Timestamp::from_unix(2_000_000), Duration::hours(1));
        assert!(a.temporal.is_empty());
        assert!(a.spatial.is_empty());
        // Fresh records still processed normally after eviction.
        assert!(matches!(
            a.push(&rec(999, 2_000_001, "R00-M0", "_bgp_err_kernel_panic")),
            StreamDecision::NewEvent { .. }
        ));
    }
}
