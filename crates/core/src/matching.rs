//! Matching fatal events to job terminations (Section IV of the paper).
//!
//! Both logs carry time and location: a job is *interrupted by* a fatal
//! event when it ends within a small window of the event's time and the
//! event's location falls on the job's partition. Every event is also
//! classified into the paper's three cases:
//!
//! * **case 1** — the event interrupted one or more jobs;
//! * **case 2** — no job was running at the event's location (idle);
//! * **case 3** — jobs were running there, but none was interrupted.

use crate::context::AnalysisContext;
use crate::event::Event;
use bgp_model::Duration;
use joblog::{JobLog, JobRecord};
use std::collections::HashMap;

/// The paper's three event-vs-jobs cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventCase {
    /// Interrupted at least one job.
    Interrupted,
    /// Nothing was running at that location.
    IdleLocation,
    /// Jobs ran on through it.
    NotInterrupted,
}

/// Per-event match result.
#[derive(Debug, Clone, PartialEq)]
pub struct EventMatch {
    /// Jobs whose termination this event explains (job ids).
    pub victims: Vec<u64>,
    /// Number of jobs running at the event's location at event time.
    pub running: usize,
    /// The case classification.
    pub case: EventCase,
}

/// The full matching between an event stream and a job log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matching {
    /// Parallel to the event stream.
    pub per_event: Vec<EventMatch>,
    /// job id → index of the event that interrupted it. A job ending near
    /// two events is attributed to the closest-in-time one.
    pub job_to_event: HashMap<u64, usize>,
}

/// The matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Matcher {
    /// A job counts as interrupted by an event if it ends within this much
    /// of the event time (either side: clocks skew, and the kill is reported
    /// from several components at slightly different times).
    pub window: Duration,
    /// Require a non-zero exit code before blaming a fatal event for a job's
    /// termination. A job that exited 0 completed on its own; attributing it
    /// to a coincidentally-timed fatal event would poison the per-code case
    /// statistics.
    pub require_failed_exit: bool,
}

impl Default for Matcher {
    /// 30 s: wide enough for multi-component reporting skew, narrow enough
    /// that a coincidental normal completion near a fatal event rarely gets
    /// blamed on it.
    fn default() -> Self {
        Matcher {
            window: Duration::seconds(30),
            require_failed_exit: true,
        }
    }
}

impl Matcher {
    /// Match a time-sorted event stream against the indexed job log (the
    /// `Matching` stage).
    ///
    /// Contract: returns `per_event` exactly parallel to `events` (same
    /// length, same order); every match points at a job in `ctx`.
    pub fn run(&self, events: &[Event], ctx: &AnalysisContext<'_>) -> Matching {
        let mut per_event = Vec::with_capacity(events.len());
        // job id → (event index, |end − event time|), best so far.
        let mut best: HashMap<u64, (usize, i64)> = HashMap::new();

        for (i, e) in events.iter().enumerate() {
            // Jobs running anywhere on the event's footprint at event time.
            let mut running = 0usize;
            let mut seen: Vec<u64> = Vec::new();
            for m in e.footprint.midplanes() {
                for j in ctx.running_at(m, e.time) {
                    if !seen.contains(&j.job_id) {
                        seen.push(j.job_id);
                        running += 1;
                    }
                }
            }
            let ended = ctx.ended_in_window(e.time - self.window, e.time + self.window);
            let victims: Vec<u64> = ended
                .iter()
                .filter(|j| j.partition.overlaps(e.footprint))
                .filter(|j| !self.require_failed_exit || !j.exit.is_success())
                .map(|j| j.job_id)
                .collect();
            for &job_id in &victims {
                let Some(end) = ctx.job(job_id).map(|j| j.end_time) else {
                    continue; // victim ids come from this log; nothing to rank otherwise
                };
                let dist = (end - e.time).abs().as_secs();
                match best.get(&job_id) {
                    Some(&(_, d)) if d <= dist => {}
                    _ => {
                        best.insert(job_id, (i, dist));
                    }
                }
            }
            let case = if !victims.is_empty() {
                EventCase::Interrupted
            } else if running == 0 {
                EventCase::IdleLocation
            } else {
                EventCase::NotInterrupted
            };
            per_event.push(EventMatch {
                victims,
                running,
                case,
            });
        }

        // Keep only the best attribution per job, and drop victims that a
        // closer event claimed.
        let job_to_event: HashMap<u64, usize> =
            best.into_iter().map(|(j, (i, _))| (j, i)).collect();
        for (i, m) in per_event.iter_mut().enumerate() {
            m.victims.retain(|j| job_to_event.get(j) == Some(&i));
            if m.victims.is_empty() && m.case == EventCase::Interrupted {
                m.case = if m.running == 0 {
                    EventCase::IdleLocation
                } else {
                    EventCase::NotInterrupted
                };
            }
        }
        Matching {
            per_event,
            job_to_event,
        }
    }
}

impl Matching {
    /// Total interrupted jobs.
    pub fn interrupted_jobs(&self) -> usize {
        self.job_to_event.len()
    }

    /// Count of events per case.
    pub fn case_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for m in &self.per_event {
            match m.case {
                EventCase::Interrupted => c.0 += 1,
                EventCase::IdleLocation => c.1 += 1,
                EventCase::NotInterrupted => c.2 += 1,
            }
        }
        c
    }

    /// The interrupted [`JobRecord`]s, resolved against the job log.
    pub fn interrupted_records<'a>(&self, jobs: &'a JobLog) -> Vec<&'a JobRecord> {
        let mut out: Vec<&JobRecord> = self
            .job_to_event
            .keys()
            .filter_map(|&id| jobs.by_job_id(id))
            .collect();
        out.sort_by_key(|j| (j.end_time, j.job_id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Timestamp;
    use joblog::{ExecId, ExitStatus, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn matched(events: &[Event], jobs: &JobLog) -> Matching {
        let ctx = AnalysisContext::for_jobs(jobs);
        Matcher::default().run(events, &ctx)
    }

    fn job(job_id: u64, start: i64, end: i64, part: &str, failed: bool) -> joblog::JobRecord {
        joblog::JobRecord {
            job_id,
            exec: ExecId(job_id as u32),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(start - 10),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: if failed {
                ExitStatus::Failed(143)
            } else {
                ExitStatus::Completed
            },
        }
    }

    #[test]
    fn interruption_matched_by_time_and_location() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 5_000, "R00-M0", true)]);
        let events = vec![ev(5_010, "R00-M0-N01-J05", "_bgp_err_kernel_panic")];
        let m = matched(&events, &jobs);
        assert_eq!(m.per_event[0].victims, vec![1]);
        assert_eq!(m.per_event[0].case, EventCase::Interrupted);
        assert_eq!(m.job_to_event[&1], 0);
        assert_eq!(m.interrupted_jobs(), 1);
        assert_eq!(m.interrupted_records(&jobs)[0].job_id, 1);
    }

    #[test]
    fn wrong_location_is_not_a_victim() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 5_000, "R00-M0", true)]);
        let events = vec![ev(5_010, "R20-M1", "_bgp_err_kernel_panic")];
        let m = matched(&events, &jobs);
        assert!(m.per_event[0].victims.is_empty());
        assert_eq!(m.per_event[0].case, EventCase::IdleLocation);
    }

    #[test]
    fn case3_when_job_runs_through() {
        // Job runs across the event time but does not end near it.
        let jobs = JobLog::from_jobs(vec![job(1, 0, 50_000, "R00-M0", false)]);
        let events = vec![ev(20_000, "R00-M0", "BULK_POWER_FATAL")];
        let m = matched(&events, &jobs);
        assert_eq!(m.per_event[0].case, EventCase::NotInterrupted);
        assert_eq!(m.per_event[0].running, 1);
    }

    #[test]
    fn outside_window_not_matched() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 5_000, "R00-M0", true)]);
        let events = vec![ev(5_000 + 1_000, "R00-M0", "_bgp_err_kernel_panic")];
        let m = matched(&events, &jobs);
        assert!(m.per_event[0].victims.is_empty());
    }

    #[test]
    fn closest_event_wins_attribution() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 5_000, "R00-M0", true)]);
        let events = vec![
            ev(4_950, "R00-M0", "_bgp_err_kernel_panic"),
            ev(5_005, "R00-M0", "_bgp_err_ddr_controller"),
        ];
        let m = matched(&events, &jobs);
        assert_eq!(m.job_to_event[&1], 1, "closer event should win");
        assert!(m.per_event[0].victims.is_empty());
        assert_eq!(m.per_event[1].victims, vec![1]);
        // The losing event is re-cased; nothing else runs there, and the job
        // (which ends within the window) no longer counts as its victim.
        assert_ne!(m.per_event[0].case, EventCase::Interrupted);
    }

    #[test]
    fn one_event_many_victims() {
        // An fs-wide event killing two jobs at different locations — but the
        // event location only covers job 1; only covered jobs match.
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 5_000, "R00-M0", true),
            job(2, 0, 5_001, "R00-M1", true),
        ]);
        let events = vec![ev(5_000, "R00", "_bgp_err_fs_config")];
        let m = matched(&events, &jobs);
        // Rack-scoped location covers both midplanes.
        assert_eq!(m.per_event[0].victims.len(), 2);
        assert_eq!(m.interrupted_jobs(), 2);
    }

    #[test]
    fn case_counts() {
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 5_000, "R00-M0", true),
            job(2, 0, 50_000, "R01-M0", false),
        ]);
        let events = vec![
            ev(5_010, "R00-M0", "_bgp_err_kernel_panic"),  // case 1
            ev(20_000, "R01-M0", "BULK_POWER_FATAL"),      // case 3
            ev(20_000, "R30-M0", "_bgp_err_diag_netbist"), // case 2
        ];
        let m = matched(&events, &jobs);
        assert_eq!(m.case_counts(), (1, 1, 1));
    }
}
