//! Matching fatal events to job terminations (Section IV of the paper).
//!
//! Both logs carry time and location: a job is *interrupted by* a fatal
//! event when it ends within a small window of the event's time and the
//! event's location falls on the job's partition. Every event is also
//! classified into the paper's three cases:
//!
//! * **case 1** — the event interrupted one or more jobs;
//! * **case 2** — no job was running at the event's location (idle);
//! * **case 3** — jobs were running there, but none was interrupted.
//!
//! The kernel is a *sweep*: the event stream is time-sorted, so a
//! machine-wide cursor into the [`AnalysisContext`]'s termination rank
//! order advances monotonically instead of re-filtering an end-time window
//! per event, and a machine-wide occupancy active set is maintained
//! incrementally from the start-sorted job table instead of re-probing the
//! interval index per event. Partitions are bitmasks, so restricting
//! either machine-wide structure to an event's footprint costs one mask
//! intersection per candidate — Blue Gene/P partitions are exclusive, so
//! the active set never exceeds one job per midplane.
//! [`Matcher::run_with_threads`] shards the sweep over contiguous
//! event chunks (each chunk re-anchors its cursors by binary search, so the
//! per-event results are independent of chunk boundaries) and then runs the
//! best-attribution-per-job reduction serially — output is bit-identical to
//! the single-threaded kernel at any thread count.

use crate::context::AnalysisContext;
use crate::event::Event;
use bgp_model::{Duration, Timestamp};
use joblog::{JobLog, JobRecord};
use std::collections::HashMap;

/// The paper's three event-vs-jobs cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventCase {
    /// Interrupted at least one job.
    Interrupted,
    /// Nothing was running at that location.
    IdleLocation,
    /// Jobs ran on through it.
    NotInterrupted,
}

/// Per-event match result.
#[derive(Debug, Clone, PartialEq)]
pub struct EventMatch {
    /// Jobs whose termination this event explains (job ids).
    pub victims: Vec<u64>,
    /// Number of jobs running at the event's location at event time.
    pub running: usize,
    /// The case classification.
    pub case: EventCase,
}

/// The full matching between an event stream and a job log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matching {
    /// Parallel to the event stream.
    pub per_event: Vec<EventMatch>,
    /// job id → index of the event that interrupted it. A job ending near
    /// two events is attributed to the closest-in-time one.
    pub job_to_event: HashMap<u64, usize>,
}

/// The matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Matcher {
    /// A job counts as interrupted by an event if it ends within this much
    /// of the event time (either side: clocks skew, and the kill is reported
    /// from several components at slightly different times).
    pub window: Duration,
    /// Require a non-zero exit code before blaming a fatal event for a job's
    /// termination. A job that exited 0 completed on its own; attributing it
    /// to a coincidentally-timed fatal event would poison the per-code case
    /// statistics.
    pub require_failed_exit: bool,
}

impl Default for Matcher {
    /// 30 s: wide enough for multi-component reporting skew, narrow enough
    /// that a coincidental normal completion near a fatal event rarely gets
    /// blamed on it.
    fn default() -> Self {
        Matcher {
            window: Duration::seconds(30),
            require_failed_exit: true,
        }
    }
}

/// Below this many events per thread the sweep runs serially: spawning a
/// worker costs more than sweeping a small chunk, and the output is
/// bit-identical either way (sharding is a pure performance policy).
const MIN_EVENTS_PER_THREAD: usize = 2048;

/// When the sweep time jumps far enough that more than this many pending
/// ranks would be replayed to advance the termination cursor
/// incrementally, re-anchor it by binary search instead. Sparse event
/// streams (hundreds of events over months of jobs) would otherwise pay
/// for every termination between events; dense streams stay on the
/// amortized-O(1) incremental path.
const TERM_REANCHOR_GAP: usize = 64;

/// Same policy for the occupancy active set. Its re-anchor replays a
/// `max_duration`-bounded backward scan (typically a few hundred records),
/// so the break-even gap is larger than the termination cursor's.
const OCC_REANCHOR_GAP: usize = 512;

/// Per-chunk sweep state: a machine-wide occupancy active set and a
/// machine-wide termination-window cursor, plus reusable scratch, so the
/// per-event loop allocates nothing but each event's `victims` vector.
///
/// Both structures are global rather than per-midplane: partitions are
/// bitmasks, so restricting a machine-wide candidate to an event's
/// footprint is one mask intersection — far cheaper than walking 80
/// per-midplane indexes when an event's footprint is wide.
struct SweepState {
    /// Next record (in the job table's start order) not yet admitted to
    /// `active`.
    occ_pos: usize,
    /// `(end_time, job_id, partition mask)` of every job overlapping the
    /// sweep's current `[t, t + 1 s)` instant, machine-wide. Blue Gene/P
    /// partitions are exclusive, so this holds at most one job per
    /// midplane — it fits in cache.
    active: Vec<(Timestamp, u64, u128)>,
    occ_anchored: bool,
    /// Termination ranks `lo..hi` bracket the end times inside the current
    /// `[t − w, t + w)` window, in the machine-wide `(end_time, job_id)`
    /// rank order.
    term_lo: usize,
    term_hi: usize,
    term_anchored: bool,
    /// Job ids running on the footprint (deduped by sort).
    running_ids: Vec<u64>,
    /// Previous event time — a regression (unsorted input) re-anchors
    /// everything, so the sweep stays exact for arbitrary event order.
    prev_time: Option<Timestamp>,
}

impl SweepState {
    fn new() -> SweepState {
        SweepState {
            occ_pos: 0,
            active: Vec::new(),
            occ_anchored: false,
            term_lo: 0,
            term_hi: 0,
            term_anchored: false,
            running_ids: Vec::new(),
            prev_time: None,
        }
    }

    fn reset(&mut self) {
        self.occ_pos = 0;
        self.active.clear();
        self.occ_anchored = false;
        self.term_lo = 0;
        self.term_hi = 0;
        self.term_anchored = false;
    }
}

/// End time of the job at machine-wide termination rank `rank`.
fn rank_end(ctx: &AnalysisContext<'_>, rank: usize) -> Option<Timestamp> {
    u32::try_from(rank)
        .ok()
        .and_then(|r| ctx.job_by_end_rank(r))
        .map(|j| j.end_time)
}

/// First termination rank whose end time is ≥ `t` (binary search over the
/// machine-wide `(end_time, job_id)` rank order).
fn rank_lower_bound(ctx: &AnalysisContext<'_>, t: Timestamp) -> usize {
    let (mut lo, mut hi) = (0usize, ctx.job_count());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if rank_end(ctx, mid).is_some_and(|end| end < t) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Advance one termination bound to the first rank with end time ≥ `t`:
/// incrementally when the jump is small, by binary search when it is not
/// (both land on the same partition point of the end-sorted rank order).
fn advance_term_bound(ctx: &AnalysisContext<'_>, bound: &mut usize, t: Timestamp) {
    if rank_end(ctx, bound.saturating_add(TERM_REANCHOR_GAP)).is_some_and(|end| end < t) {
        *bound = rank_lower_bound(ctx, t);
    } else {
        while rank_end(ctx, *bound).is_some_and(|end| end < t) {
            *bound += 1;
        }
    }
}

impl Matcher {
    /// Match a time-sorted event stream against the indexed job log (the
    /// `Matching` stage).
    ///
    /// Contract: returns `per_event` exactly parallel to `events` (same
    /// length, same order); every match points at a job in `ctx`.
    pub fn run(&self, events: &[Event], ctx: &AnalysisContext<'_>) -> Matching {
        self.run_with_threads(events, ctx, 1)
    }

    /// [`Matcher::run`] with the per-event sweep sharded over up to
    /// `threads` contiguous event chunks.
    ///
    /// Contract: bit-identical to `run` on the same input for every thread
    /// count — each chunk re-anchors its termination cursors by binary
    /// search (per-event results never depend on chunk boundaries), and the
    /// best-attribution-per-job pass runs as a serial reduction over the
    /// merged per-event results.
    pub fn run_with_threads(
        &self,
        events: &[Event],
        ctx: &AnalysisContext<'_>,
        threads: usize,
    ) -> Matching {
        let serial = threads <= 1 || events.len() < threads.saturating_mul(MIN_EVENTS_PER_THREAD);
        let mut per_event = if serial {
            self.sweep_chunk(events, ctx)
        } else {
            let chunk = events.len().div_ceil(threads);
            let chunks: Vec<&[Event]> = events.chunks(chunk).collect();
            bgp_model::bytes::map_chunks_parallel(&chunks, |c| self.sweep_chunk(c, ctx))
                .into_iter()
                .flatten()
                .collect()
        };

        // Serial reduction: job id → (event index, |end − event time|),
        // best so far. Iterating in event order with a strict `<` on the
        // distance reproduces the serial tie-break (earlier event wins).
        let mut best: HashMap<u64, (usize, i64)> = HashMap::new();
        for (i, (e, m)) in events.iter().zip(&per_event).enumerate() {
            for &job_id in &m.victims {
                let Some(end) = ctx.job(job_id).map(|j| j.end_time) else {
                    continue; // victim ids come from this log; nothing to rank otherwise
                };
                let dist = (end - e.time).abs().as_secs();
                match best.get(&job_id) {
                    Some(&(_, d)) if d <= dist => {}
                    _ => {
                        best.insert(job_id, (i, dist));
                    }
                }
            }
        }

        // Keep only the best attribution per job, and drop victims that a
        // closer event claimed.
        let job_to_event: HashMap<u64, usize> =
            best.into_iter().map(|(j, (i, _))| (j, i)).collect();
        for (i, m) in per_event.iter_mut().enumerate() {
            m.victims.retain(|j| job_to_event.get(j) == Some(&i));
            if m.victims.is_empty() && m.case == EventCase::Interrupted {
                m.case = if m.running == 0 {
                    EventCase::IdleLocation
                } else {
                    EventCase::NotInterrupted
                };
            }
        }
        Matching {
            per_event,
            job_to_event,
        }
    }

    /// The per-event sweep over one contiguous, time-sorted event chunk.
    /// Victims here are *pre-reduction*: every job ending in the window on
    /// the footprint (exit-filtered), before best-attribution pruning.
    fn sweep_chunk(&self, events: &[Event], ctx: &AnalysisContext<'_>) -> Vec<EventMatch> {
        let mut state = SweepState::new();
        let records = ctx.job_records();
        let max_duration = ctx.max_job_duration();
        let mut per_event = Vec::with_capacity(events.len());
        for e in events {
            // Cursors only ever advance; if the stream is not time-sorted
            // after all, drop back to binary-search anchoring rather than
            // silently missing earlier jobs.
            if state.prev_time.is_some_and(|p| e.time < p) {
                state.reset();
            }
            state.prev_time = Some(e.time);
            let footprint = e.footprint.mask();

            // Jobs running anywhere on the event's footprint at event time,
            // deduped by job id. "Running at t" means overlapping
            // [t, t + 1 s): a job is admitted to the machine-wide active
            // set once its start time drops below t + 1 s and expired once
            // its end time is no longer after t — exactly the `overlapping`
            // predicate, paid incrementally as the sweep time advances.
            // Re-anchor on first touch, and whenever the time jump has
            // queued more than `OCC_REANCHOR_GAP` admissions (replaying
            // them one by one would cost more than rebuilding the set).
            let t1 = e.time + Duration::seconds(1);
            let far_jump = records
                .get(state.occ_pos.saturating_add(OCC_REANCHOR_GAP))
                .is_some_and(|j| j.start_time < t1);
            if !state.occ_anchored || far_jump {
                state.occ_pos = records.partition_point(|j| j.start_time < t1);
                state.active.clear();
                // Backward scan bounded by the longest job: anything
                // starting before `t − max_duration` has already ended.
                let cutoff = e.time - max_duration;
                for j in records.get(..state.occ_pos).unwrap_or(&[]).iter().rev() {
                    if j.start_time < cutoff {
                        break;
                    }
                    if j.overlaps(e.time, t1) {
                        state
                            .active
                            .push((j.end_time, j.job_id, j.partition.mask()));
                    }
                }
                state.occ_anchored = true;
            } else {
                while let Some(j) = records.get(state.occ_pos) {
                    if j.start_time >= t1 {
                        break;
                    }
                    if j.end_time > e.time {
                        state
                            .active
                            .push((j.end_time, j.job_id, j.partition.mask()));
                    }
                    state.occ_pos += 1;
                }
                state.active.retain(|&(end, _, _)| end > e.time);
            }
            state.running_ids.clear();
            for &(_, id, mask) in &state.active {
                if mask & footprint != 0 {
                    state.running_ids.push(id);
                }
            }
            state.running_ids.sort_unstable();
            state.running_ids.dedup();
            let running = state.running_ids.len();

            // Candidate terminations: the machine-wide (end_time, job_id)
            // rank order restricted to the window, filtered to jobs whose
            // partition touches the footprint — the same set, in the same
            // rank order, as the old per-midplane rank-list union.
            let (t0, t1) = (e.time - self.window, e.time + self.window);
            if !state.term_anchored {
                state.term_lo = rank_lower_bound(ctx, t0);
                state.term_hi = rank_lower_bound(ctx, t1);
                state.term_anchored = true;
            } else {
                advance_term_bound(ctx, &mut state.term_lo, t0);
                advance_term_bound(ctx, &mut state.term_hi, t1);
            }
            let victims: Vec<u64> = (state.term_lo..state.term_hi)
                .filter_map(|r| u32::try_from(r).ok().and_then(|r| ctx.job_by_end_rank(r)))
                .filter(|j| j.partition.mask() & footprint != 0)
                .filter(|j| !self.require_failed_exit || !j.exit.is_success())
                .map(|j| j.job_id)
                .collect();

            let case = if !victims.is_empty() {
                EventCase::Interrupted
            } else if running == 0 {
                EventCase::IdleLocation
            } else {
                EventCase::NotInterrupted
            };
            per_event.push(EventMatch {
                victims,
                running,
                case,
            });
        }
        per_event
    }
}

impl Matching {
    /// Total interrupted jobs.
    pub fn interrupted_jobs(&self) -> usize {
        self.job_to_event.len()
    }

    /// Count of events per case.
    pub fn case_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for m in &self.per_event {
            match m.case {
                EventCase::Interrupted => c.0 += 1,
                EventCase::IdleLocation => c.1 += 1,
                EventCase::NotInterrupted => c.2 += 1,
            }
        }
        c
    }

    /// The interrupted [`JobRecord`]s, resolved against the job log.
    pub fn interrupted_records<'a>(&self, jobs: &'a JobLog) -> Vec<&'a JobRecord> {
        let mut out: Vec<&JobRecord> = self
            .job_to_event
            .keys()
            .filter_map(|&id| jobs.by_job_id(id))
            .collect();
        out.sort_by_key(|j| (j.end_time, j.job_id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Timestamp;
    use joblog::{ExecId, ExitStatus, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn matched(events: &[Event], jobs: &JobLog) -> Matching {
        let ctx = AnalysisContext::for_jobs(jobs);
        Matcher::default().run(events, &ctx)
    }

    fn job(job_id: u64, start: i64, end: i64, part: &str, failed: bool) -> joblog::JobRecord {
        joblog::JobRecord {
            job_id,
            exec: ExecId(job_id as u32),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(start - 10),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: if failed {
                ExitStatus::Failed(143)
            } else {
                ExitStatus::Completed
            },
        }
    }

    #[test]
    fn interruption_matched_by_time_and_location() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 5_000, "R00-M0", true)]);
        let events = vec![ev(5_010, "R00-M0-N01-J05", "_bgp_err_kernel_panic")];
        let m = matched(&events, &jobs);
        assert_eq!(m.per_event[0].victims, vec![1]);
        assert_eq!(m.per_event[0].case, EventCase::Interrupted);
        assert_eq!(m.job_to_event[&1], 0);
        assert_eq!(m.interrupted_jobs(), 1);
        assert_eq!(m.interrupted_records(&jobs)[0].job_id, 1);
    }

    #[test]
    fn wrong_location_is_not_a_victim() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 5_000, "R00-M0", true)]);
        let events = vec![ev(5_010, "R20-M1", "_bgp_err_kernel_panic")];
        let m = matched(&events, &jobs);
        assert!(m.per_event[0].victims.is_empty());
        assert_eq!(m.per_event[0].case, EventCase::IdleLocation);
    }

    #[test]
    fn case3_when_job_runs_through() {
        // Job runs across the event time but does not end near it.
        let jobs = JobLog::from_jobs(vec![job(1, 0, 50_000, "R00-M0", false)]);
        let events = vec![ev(20_000, "R00-M0", "BULK_POWER_FATAL")];
        let m = matched(&events, &jobs);
        assert_eq!(m.per_event[0].case, EventCase::NotInterrupted);
        assert_eq!(m.per_event[0].running, 1);
    }

    #[test]
    fn outside_window_not_matched() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 5_000, "R00-M0", true)]);
        let events = vec![ev(5_000 + 1_000, "R00-M0", "_bgp_err_kernel_panic")];
        let m = matched(&events, &jobs);
        assert!(m.per_event[0].victims.is_empty());
    }

    #[test]
    fn closest_event_wins_attribution() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 5_000, "R00-M0", true)]);
        let events = vec![
            ev(4_950, "R00-M0", "_bgp_err_kernel_panic"),
            ev(5_005, "R00-M0", "_bgp_err_ddr_controller"),
        ];
        let m = matched(&events, &jobs);
        assert_eq!(m.job_to_event[&1], 1, "closer event should win");
        assert!(m.per_event[0].victims.is_empty());
        assert_eq!(m.per_event[1].victims, vec![1]);
        // The losing event is re-cased; nothing else runs there, and the job
        // (which ends within the window) no longer counts as its victim.
        assert_ne!(m.per_event[0].case, EventCase::Interrupted);
    }

    #[test]
    fn one_event_many_victims() {
        // An fs-wide event killing two jobs at different locations — but the
        // event location only covers job 1; only covered jobs match.
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 5_000, "R00-M0", true),
            job(2, 0, 5_001, "R00-M1", true),
        ]);
        let events = vec![ev(5_000, "R00", "_bgp_err_fs_config")];
        let m = matched(&events, &jobs);
        // Rack-scoped location covers both midplanes.
        assert_eq!(m.per_event[0].victims.len(), 2);
        assert_eq!(m.interrupted_jobs(), 2);
    }

    #[test]
    fn case_counts() {
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 5_000, "R00-M0", true),
            job(2, 0, 50_000, "R01-M0", false),
        ]);
        let events = vec![
            ev(5_010, "R00-M0", "_bgp_err_kernel_panic"),  // case 1
            ev(20_000, "R01-M0", "BULK_POWER_FATAL"),      // case 3
            ev(20_000, "R30-M0", "_bgp_err_diag_netbist"), // case 2
        ];
        let m = matched(&events, &jobs);
        assert_eq!(m.case_counts(), (1, 1, 1));
    }
}
