//! Failure-warning policies — the paper's first Section VII recommendation,
//! operationalized.
//!
//! A failure predictor that reacts to RAS events triggers *proactive
//! actions* (checkpoint now, migrate, drain). Every action has a cost, so
//! false alarms matter. The paper's point (Observations 1 and 7): a
//! severity-only predictor wastes actions on (a) fatal-labeled codes that
//! never hurt anybody and (b) faults on idle hardware. Co-analysis gives
//! the predictor exactly the two filters it needs — per-code impact
//! verdicts and location awareness.
//!
//! This module evaluates three warning policies *offline* against an event
//! stream and its matching:
//!
//! * [`WarningPolicy::SeverityOnly`] — warn on every FATAL event (baseline);
//! * [`WarningPolicy::ImpactFiltered`] — warn only on codes co-analysis
//!   considers interruption-related (Observation 1's filter);
//! * [`WarningPolicy::ImpactAndLocation`] — additionally suppress warnings
//!   when nothing runs at the event's location (Observation 7's filter).
//!
//! A warning is *useful* if the event really interrupted a job; every other
//! warning is a false alarm. The paper's prediction: the filters cut false
//! alarms drastically while keeping recall ≈ 1 (imperfect only where a
//! code's verdict was learned wrong).

use crate::classify::ImpactSummary;
use crate::event::Event;
use crate::matching::{EventCase, Matching};

/// The three warning policies, weakest filter first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarningPolicy {
    /// Warn on every FATAL-severity event.
    SeverityOnly,
    /// Warn only on events of codes classified interruption-related (the
    /// pessimistic rule: undetermined codes still warn).
    ImpactFiltered,
    /// Impact filter + suppress warnings on idle hardware.
    ImpactAndLocation,
}

impl WarningPolicy {
    /// All policies, in evaluation order.
    pub const ALL: [WarningPolicy; 3] = [
        WarningPolicy::SeverityOnly,
        WarningPolicy::ImpactFiltered,
        WarningPolicy::ImpactAndLocation,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            WarningPolicy::SeverityOnly => "severity-only",
            WarningPolicy::ImpactFiltered => "impact-filtered",
            WarningPolicy::ImpactAndLocation => "impact+location",
        }
    }

    /// Does this policy warn on the given event?
    pub fn warns(
        self,
        event: &Event,
        m: &crate::matching::EventMatch,
        impact: &ImpactSummary,
    ) -> bool {
        match self {
            WarningPolicy::SeverityOnly => true,
            WarningPolicy::ImpactFiltered => impact
                .per_code
                .get(&event.errcode)
                .is_none_or(|v| v.treat_as_fatal()),
            WarningPolicy::ImpactAndLocation => {
                let impact_ok = impact
                    .per_code
                    .get(&event.errcode)
                    .is_none_or(|v| v.treat_as_fatal());
                // "Location aware": something must be running (or just have
                // been interrupted) where the event fired.
                impact_ok && (m.running > 0 || !m.victims.is_empty())
            }
        }
    }
}

/// The outcome of evaluating one policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyScore {
    /// Which policy.
    pub policy: WarningPolicy,
    /// Warnings issued.
    pub warnings: usize,
    /// Warnings on events that really interrupted a job.
    pub useful: usize,
    /// Interrupting events that got a warning (= `useful`; kept separate
    /// for clarity of recall accounting).
    pub covered: usize,
    /// Total interrupting events.
    pub interrupting: usize,
}

impl PolicyScore {
    /// Fraction of warnings that were worth acting on.
    pub fn precision(&self) -> f64 {
        if self.warnings == 0 {
            return 0.0;
        }
        self.useful as f64 / self.warnings as f64
    }

    /// Fraction of interrupting events that were warned about.
    pub fn recall(&self) -> f64 {
        if self.interrupting == 0 {
            return 1.0;
        }
        self.covered as f64 / self.interrupting as f64
    }

    /// Warnings that were wasted actions.
    pub fn false_alarms(&self) -> usize {
        self.warnings - self.useful
    }
}

/// Evaluate every policy against a filtered event stream.
///
/// The evaluation is intentionally *optimistic about timeliness* (a warning
/// at event time counts), because the paper's argument is about *which*
/// events deserve a response, not lead time.
pub fn evaluate_policies(
    events: &[Event],
    matching: &Matching,
    impact: &ImpactSummary,
) -> Vec<PolicyScore> {
    assert_eq!(events.len(), matching.per_event.len());
    let interrupting = matching
        .per_event
        .iter()
        .filter(|m| m.case == EventCase::Interrupted)
        .count();
    WarningPolicy::ALL
        .iter()
        .map(|&policy| {
            let mut warnings = 0usize;
            let mut useful = 0usize;
            for (e, m) in events.iter().zip(&matching.per_event) {
                if policy.warns(e, m, impact) {
                    warnings += 1;
                    if m.case == EventCase::Interrupted {
                        useful += 1;
                    }
                }
            }
            PolicyScore {
                policy,
                warnings,
                useful,
                covered: useful,
                interrupting,
            }
        })
        .collect()
}

/// A *forward-looking* guard built on Observation 9: after an interruption
/// by a persistent-capable code, predict that the same midplane will strike
/// again until a clean run completes there.
///
/// Returns `(predictions, hits)`: how many "this midplane will kill the
/// next job placed on it" predictions were issued, and how many came true.
/// This is the quantity a fault-aware scheduler (Section VII) could have
/// saved.
pub fn chain_guard(events: &[Event], matching: &Matching) -> (usize, usize) {
    use std::collections::HashMap;
    // For each (code, midplane), walk interrupting events in time order;
    // after the first, each subsequent one within the same unbroken chain
    // is a correct prediction.
    let mut seen: HashMap<(raslog::ErrCode, u8), usize> = HashMap::new();
    let mut predictions = 0usize;
    let mut hits = 0usize;
    for (e, m) in events.iter().zip(&matching.per_event) {
        if m.case != EventCase::Interrupted {
            continue;
        }
        let key = (e.errcode, e.midplane().index() as u8);
        let n = seen.entry(key).or_insert(0);
        if *n >= 1 {
            // We had predicted "it will happen again here".
            predictions += 1;
            hits += 1;
        }
        *n += 1;
    }
    // Predictions that never came true: one per chain that ended (the
    // final event of every chain also generated a prediction).
    let unfulfilled = seen.values().filter(|&&n| n >= 1).count();
    (predictions + unfulfilled, hits)
}

/// A precursor-based *lead-time* predictor: correctable-memory WARNING
/// records (ECC corrected, single-symbol) often accelerate for hours before
/// the component dies. The predictor raises an alert for a midplane when at
/// least `threshold` such warnings land there within `window`; the alert is
/// a *hit* if an interrupting fatal event strikes that midplane within
/// `horizon`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecursorPredictor {
    /// Sliding window over which warnings are counted.
    pub window: bgp_model::Duration,
    /// Warnings within the window needed to raise an alert.
    pub threshold: usize,
    /// How far ahead an alert is considered to predict.
    pub horizon: bgp_model::Duration,
}

impl Default for PrecursorPredictor {
    fn default() -> Self {
        PrecursorPredictor {
            window: bgp_model::Duration::hours(2),
            // Healthy midplanes log a handful of correctable errors per
            // window; a dying DIMM logs dozens. The threshold sits well
            // above the ambient Poisson tail.
            threshold: 18,
            horizon: bgp_model::Duration::hours(8),
        }
    }
}

/// The outcome of a precursor-prediction evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecursorScore {
    /// Alerts raised.
    pub alerts: usize,
    /// Alerts followed by an interrupting fatal event at that midplane
    /// within the horizon.
    pub hits: usize,
    /// Interrupting events that had an alert active before them.
    pub predicted_events: usize,
    /// Total interrupting events.
    pub interrupting_events: usize,
    /// Median alert→event lead time (seconds) over predicted events.
    pub median_lead_secs: Option<i64>,
}

impl PrecursorScore {
    /// Fraction of alerts that were followed by trouble.
    pub fn precision(&self) -> f64 {
        if self.alerts == 0 {
            return 0.0;
        }
        self.hits as f64 / self.alerts as f64
    }

    /// Fraction of interrupting events that were warned ahead of time.
    pub fn recall(&self) -> f64 {
        if self.interrupting_events == 0 {
            return 1.0;
        }
        self.predicted_events as f64 / self.interrupting_events as f64
    }
}

impl PrecursorPredictor {
    /// Evaluate against a full RAS log (for the WARNING stream) and the
    /// filtered events with their matching (for ground truth on
    /// interruptions).
    pub fn evaluate(
        &self,
        ras: &raslog::RasLog,
        events: &[crate::event::Event],
        matching: &Matching,
    ) -> PrecursorScore {
        use raslog::Severity;
        use std::collections::HashMap;
        let warn_codes: Vec<raslog::ErrCode> =
            ["_bgp_warn_ecc_corrected", "_bgp_warn_single_symbol_error"]
                .iter()
                .filter_map(|n| raslog::Catalog::standard().lookup(n))
                .collect();

        // Per-midplane warning times.
        let mut warns: HashMap<u8, Vec<bgp_model::Timestamp>> = HashMap::new();
        for r in ras.records() {
            if r.severity == Severity::Warning && warn_codes.contains(&r.errcode) {
                for m in r.location.touched_midplanes() {
                    warns.entry(m.index() as u8).or_default().push(r.event_time);
                }
            }
        }

        // Alerts: sliding-window threshold crossings with a cooldown of one
        // horizon (one alert per episode).
        let mut alerts: HashMap<u8, Vec<bgp_model::Timestamp>> = HashMap::new();
        for (&mp, times) in &warns {
            let mut lo = 0usize;
            let mut last_alert: Option<bgp_model::Timestamp> = None;
            for hi in 0..times.len() {
                while times[hi] - times[lo] > self.window {
                    lo += 1;
                }
                if hi - lo + 1 >= self.threshold
                    && last_alert.is_none_or(|t| times[hi] - t > self.horizon)
                {
                    alerts.entry(mp).or_default().push(times[hi]);
                    last_alert = Some(times[hi]);
                }
            }
        }

        // Interrupting events per midplane.
        let mut targets: HashMap<u8, Vec<bgp_model::Timestamp>> = HashMap::new();
        let mut interrupting_events = 0usize;
        for (e, m) in events.iter().zip(&matching.per_event) {
            if m.case == EventCase::Interrupted {
                interrupting_events += 1;
                targets
                    .entry(e.midplane().index() as u8)
                    .or_default()
                    .push(e.time);
            }
        }

        // Score alerts and events.
        let mut hits = 0usize;
        let mut total_alerts = 0usize;
        let mut leads: Vec<i64> = Vec::new();
        let mut predicted: std::collections::HashSet<(u8, i64)> = std::collections::HashSet::new();
        for (&mp, alert_times) in &alerts {
            total_alerts += alert_times.len();
            let Some(event_times) = targets.get(&mp) else {
                continue;
            };
            for &a in alert_times {
                // The first interrupting event after the alert, within the
                // horizon.
                if let Some(&t) = event_times
                    .iter()
                    .find(|&&t| t >= a && t - a <= self.horizon)
                {
                    hits += 1;
                    if predicted.insert((mp, t.as_unix())) {
                        leads.push((t - a).as_secs());
                    }
                }
            }
        }
        leads.sort_unstable();
        PrecursorScore {
            alerts: total_alerts,
            hits,
            predicted_events: predicted.len(),
            interrupting_events,
            median_lead_secs: (!leads.is_empty()).then(|| leads[leads.len() / 2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_impact;
    use crate::matching::Matcher;
    use bgp_model::Timestamp;
    use joblog::{ExecId, ExitStatus, JobLog, JobRecord, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn job(job_id: u64, start: i64, end: i64, part: &str, failed: bool) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(job_id as u32),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(start - 10),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: if failed {
                ExitStatus::Failed(143)
            } else {
                ExitStatus::Completed
            },
        }
    }

    /// Scenario: one real interruption, one transient under a running job,
    /// one idle diagnostic event.
    fn scenario() -> (Vec<Event>, Matching, ImpactSummary) {
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 5_000, "R00-M0", true),
            job(2, 0, 50_000, "R01-M0", false),
        ]);
        let events = vec![
            ev(5_000, "R00-M0", "_bgp_err_ddr_controller"), // interrupts job 1
            ev(20_000, "R01-M0", "BULK_POWER_FATAL"),       // transient, busy
            ev(20_010, "R01-M0", "BULK_POWER_FATAL"),       // transient again
            ev(30_000, "R30-M0", "_bgp_err_diag_netbist"),  // idle
        ];
        let ctx = crate::context::AnalysisContext::for_jobs(&jobs);
        let matching = Matcher::default().run(&events, &ctx);
        let impact = classify_impact(&events, &matching);
        (events, matching, impact)
    }

    #[test]
    fn policies_are_strictly_more_selective() {
        let (events, matching, impact) = scenario();
        let scores = evaluate_policies(&events, &matching, &impact);
        assert_eq!(scores.len(), 3);
        let by_name: std::collections::HashMap<&str, &PolicyScore> =
            scores.iter().map(|s| (s.policy.name(), s)).collect();
        let sev = by_name["severity-only"];
        let imp = by_name["impact-filtered"];
        let loc = by_name["impact+location"];
        // Baseline warns on all 4 events; the impact filter drops the two
        // transient events; the location filter also drops the idle one.
        assert_eq!(sev.warnings, 4);
        assert_eq!(imp.warnings, 2);
        assert_eq!(loc.warnings, 1);
        // All policies keep the real interruption.
        for s in [sev, imp, loc] {
            assert_eq!(s.recall(), 1.0, "{}", s.policy.name());
        }
        // Precision strictly improves.
        assert!(sev.precision() < imp.precision());
        assert!(imp.precision() < loc.precision());
        assert_eq!(loc.precision(), 1.0);
        assert_eq!(sev.false_alarms(), 3);
        assert_eq!(loc.false_alarms(), 0);
    }

    #[test]
    fn empty_stream() {
        let scores = evaluate_policies(&[], &Matching::default(), &ImpactSummary::default());
        for s in scores {
            assert_eq!(s.warnings, 0);
            assert_eq!(s.recall(), 1.0);
            assert_eq!(s.precision(), 0.0);
        }
    }

    #[test]
    fn precursor_predictor_end_to_end() {
        // Real inputs: a simulated run with precursors on (the default).
        use bgp_sim::{SimConfig, Simulation};
        let mut cfg = SimConfig::small_test(41);
        cfg.days = 30;
        cfg.num_execs = 1_200;
        let out = Simulation::new(cfg).expect("valid config").run();
        let r = crate::pipeline::CoAnalysis::default().run(&out.ras, &out.jobs);
        let score = PrecursorPredictor::default().evaluate(&out.ras, &r.events, &r.matching);
        // Persistent hardware faults carry a precursor trail, so some
        // interrupting events must be predicted with positive lead time.
        assert!(score.alerts > 0, "no alerts raised");
        assert!(score.predicted_events > 0, "nothing predicted");
        assert!(score.precision() > 0.1, "precision {}", score.precision());
        let lead = score.median_lead_secs.expect("some leads");
        assert!(lead > 0, "lead {lead}");
        // Only a subset of interruptions are persistent-hardware ones, so
        // recall is partial by construction.
        assert!(score.recall() < 1.0);
    }

    #[test]
    fn precursor_predictor_empty_inputs() {
        let score = PrecursorPredictor::default().evaluate(
            &raslog::RasLog::default(),
            &[],
            &Matching::default(),
        );
        assert_eq!(score.alerts, 0);
        assert_eq!(score.precision(), 0.0);
        assert_eq!(score.recall(), 1.0);
        assert!(score.median_lead_secs.is_none());
    }

    #[test]
    fn chain_guard_counts_repeats() {
        // Three interruptions of the same code at one midplane: after the
        // first, two correct predictions; plus one outstanding prediction
        // at chain end.
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 1_000, "R00-M0", true),
            job(2, 1_100, 2_000, "R00-M0", true),
            job(3, 2_100, 3_000, "R00-M0", true),
        ]);
        let events = vec![
            ev(1_000, "R00-M0", "_bgp_err_ddr_controller"),
            ev(2_000, "R00-M0", "_bgp_err_ddr_controller"),
            ev(3_000, "R00-M0", "_bgp_err_ddr_controller"),
        ];
        let ctx = crate::context::AnalysisContext::for_jobs(&jobs);
        let matching = Matcher::default().run(&events, &ctx);
        let (predictions, hits) = chain_guard(&events, &matching);
        assert_eq!(hits, 2);
        assert_eq!(predictions, 3); // 2 fulfilled + 1 outstanding
    }
}
