//! Error type surfaced by the simulator's public API.

use std::fmt;

/// Errors the simulator can report instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The provided configuration failed [`crate::SimConfig::validate`].
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(reason) => {
                write!(f, "invalid simulation config: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}
