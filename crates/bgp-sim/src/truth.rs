//! Ground truth: what *really* happened in the simulated machine.
//!
//! The paper validated its classifications by review with Argonne
//! administrators. The simulator can do better: every injected fault carries
//! its true nature and its true victim set, so integration tests can measure
//! classification precision/recall instead of eyeballing.
//!
//! Analysis code must never read this — it is for validation and experiment
//! reporting only.

use bgp_model::{Location, Timestamp};
use joblog::ExecId;
use raslog::ErrCode;
use std::collections::{HashMap, HashSet};

/// Identifier of a true fault occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultId(pub u64);

/// The true nature of a fault occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultNature {
    /// Hardware or system-software failure — the system's fault.
    SystemFailure,
    /// Introduced by the user's code or operation — the application's fault.
    ApplicationError,
    /// Reported at FATAL severity but harmless in practice (the paper's
    /// `BULK_POWER_FATAL` / `_bgp_err_torus_fatal_sum` category).
    Transient,
}

/// One true fault occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct TrueFault {
    /// Unique id, in occurrence order.
    pub id: FaultId,
    /// The root occurrence this one descends from. Equal to `id` for root
    /// faults; chain occurrences (the same unrepaired fault re-reported by a
    /// rescheduled job, or a buggy resubmission failing again) point to the
    /// first occurrence. Job-related filtering, done right, collapses every
    /// chain to its root.
    pub root: FaultId,
    /// When the fault fired.
    pub time: Timestamp,
    /// Where it fired.
    pub location: Location,
    /// The error code it is reported under.
    pub errcode: ErrCode,
    /// True nature.
    pub nature: FaultNature,
    /// Whether the fault leaves the hardware broken until repair.
    pub persistent: bool,
    /// Jobs this occurrence interrupted (empty for idle-location faults and
    /// transients).
    pub interrupted_jobs: Vec<u64>,
    /// Was the location idle (no job running there) when the fault fired?
    pub idle_location: bool,
}

impl TrueFault {
    /// Is this a chain occurrence (job-related redundancy)?
    pub fn is_chain(&self) -> bool {
        self.root != self.id
    }
}

/// Everything true about one simulation run.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// All fault occurrences, in time order.
    pub faults: Vec<TrueFault>,
    /// For each interrupted job: the fault occurrence that killed it.
    pub job_cause: HashMap<u64, FaultId>,
    /// Executables that were buggy at any point during the run.
    pub buggy_execs: HashSet<ExecId>,
    /// True nature of every error code that fired at least once.
    pub code_nature: HashMap<ErrCode, FaultNature>,
}

impl GroundTruth {
    /// Faults of a given nature.
    pub fn of_nature(&self, nature: FaultNature) -> impl Iterator<Item = &TrueFault> {
        self.faults.iter().filter(move |f| f.nature == nature)
    }

    /// Number of root (non-chain) faults.
    pub fn root_faults(&self) -> usize {
        self.faults.iter().filter(|f| !f.is_chain()).count()
    }

    /// Number of chain occurrences (job-related redundancy).
    pub fn chain_faults(&self) -> usize {
        self.faults.iter().filter(|f| f.is_chain()).count()
    }

    /// Total job interruptions (sum over fault victim lists).
    pub fn total_interruptions(&self) -> usize {
        self.job_cause.len()
    }

    /// Look up a fault by id.
    pub fn fault(&self, id: FaultId) -> Option<&TrueFault> {
        // Ids are assigned densely in occurrence order.
        self.faults.get(id.0 as usize).filter(|f| f.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(id: u64, root: u64) -> TrueFault {
        TrueFault {
            id: FaultId(id),
            root: FaultId(root),
            time: Timestamp::from_unix(id as i64 * 100),
            location: "R00-M0".parse().unwrap(),
            errcode: raslog::Catalog::standard()
                .lookup("_bgp_err_kernel_panic")
                .unwrap(),
            nature: FaultNature::SystemFailure,
            persistent: false,
            interrupted_jobs: vec![],
            idle_location: true,
        }
    }

    #[test]
    fn chain_accounting() {
        let mut gt = GroundTruth {
            faults: vec![fault(0, 0), fault(1, 0), fault(2, 2)],
            ..Default::default()
        };
        gt.job_cause.insert(77, FaultId(1));
        assert_eq!(gt.root_faults(), 2);
        assert_eq!(gt.chain_faults(), 1);
        assert!(gt.faults[1].is_chain());
        assert!(!gt.faults[0].is_chain());
        assert_eq!(gt.total_interruptions(), 1);
        assert_eq!(gt.fault(FaultId(2)).unwrap().id, FaultId(2));
        assert!(gt.fault(FaultId(9)).is_none());
        assert_eq!(gt.of_nature(FaultNature::SystemFailure).count(), 3);
        assert_eq!(gt.of_nature(FaultNature::Transient).count(), 0);
    }
}
