//! The discrete-event simulation engine.
//!
//! A single binary-heap event loop advances the machine through the study
//! window: planned arrivals start jobs through the scheduler; a Weibull
//! renewal process injects root system faults (idle- or busy-targeted);
//! persistent faults leave midplanes broken until repair, so rescheduled
//! jobs keep dying there (job-related redundancy chains); buggy executables
//! raise application errors early in their runs and get resubmitted; every
//! true event is emitted as a redundant RAS storm. The engine finishes by
//! overlaying background noise, assigning RECIDs, and packaging the paired
//! logs plus ground truth.

use crate::config::SimConfig;
use crate::emission::{emit_background, emit_storm, StormShape};
use crate::faults::FaultModel;
use crate::scheduler::Scheduler;
use crate::truth::{FaultId, FaultNature, GroundTruth, TrueFault};
use crate::workload::Workload;
use bgp_model::{Duration, Location, MidplaneId, Partition, Timestamp};
use bgp_stats::sample::{exponential, lognormal, weibull};
use joblog::{ExitStatus, JobLog, JobRecord};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use raslog::{ErrCode, RasLog, RasRecord};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// The paired logs plus ground truth produced by one run.
#[derive(Debug)]
pub struct SimOutput {
    /// The RAS log (FATAL storms + background volume), RECIDs assigned.
    pub ras: RasLog,
    /// The job accounting log.
    pub jobs: JobLog,
    /// What really happened.
    pub truth: GroundTruth,
    /// The configuration that produced this output.
    pub config: SimConfig,
}

/// Exit code conventions the simulated control system uses.
const EXIT_SYSTEM_KILL: u16 = 143;
const EXIT_APP_CRASH: u16 = 139;

/// Sentinel used in [`TrueFault::root`] while constructing a fault that is
/// its own root; [`Simulation::new_fault`] replaces it with the real id.
const ROOT_SELF: FaultId = FaultId(u64::MAX);

#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// A submission enters the queue (planned or dynamic resubmission).
    Arrival { exec_idx: u32 },
    /// Natural completion of a job (validated against current state).
    JobEnd { job_id: u64 },
    /// Scheduled interruption of a job.
    JobKill { job_id: u64, cause: KillCause },
    /// Next root system fault from the renewal process.
    RootFault,
    /// Next transient FATAL alarm.
    TransientFault,
    /// Weekly maintenance window opens over one rack row.
    MaintenanceStart { row: u8 },
    /// Maintenance window closes.
    MaintenanceEnd,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum KillCause {
    /// Placed on hardware broken by an unrepaired persistent fault.
    Broken {
        root: FaultId,
        code: ErrCode,
        midplane: MidplaneId,
    },
    /// The executable's own bug fired.
    AppError { code: ErrCode },
}

#[derive(Debug, Clone)]
struct RunningJob {
    job_id: u64,
    exec_idx: u32,
    partition: Partition,
    queue_time: Timestamp,
    start_time: Timestamp,
    natural_end: Timestamp,
    /// The scheduled kill, if any — used to validate kill events.
    kill_at: Option<Timestamp>,
}

#[derive(Debug, Clone, Copy)]
struct BrokenState {
    root: FaultId,
    code: ErrCode,
    until: Timestamp,
}

/// The simulator. Construct with [`Simulation::new`], run with
/// [`Simulation::run`].
pub struct Simulation {
    cfg: SimConfig,
    rng: SmallRng,
    faults: FaultModel,
    workload: Workload,
    scheduler: Scheduler,
    heap: BinaryHeap<Reverse<(Timestamp, u64, EventBox)>>,
    seq: u64,
    now: Timestamp,
    queue: VecDeque<u32>,                      // exec indices waiting
    queue_times: HashMap<u32, Vec<Timestamp>>, // FIFO of queue times per exec
    running: HashMap<u64, RunningJob>,
    broken: HashMap<usize, BrokenState>,
    buggy_now: Vec<bool>,
    next_job_id: u64,
    records: Vec<RasRecord>,
    job_records: Vec<JobRecord>,
    boots: Vec<(Timestamp, Partition)>,
    truth: GroundTruth,
    /// Cumulative wide-job (≥ 32 midplanes) busy seconds per midplane —
    /// fault intensity couples to this, the paper's Observation-5 mechanism.
    wide_busy_secs: [i64; 80],
    /// Chain kills per persistent root fault — administrators notice after
    /// the second victim and expedite the repair, which is what caps the
    /// Figure-7 category-1 curve at k = 2.
    chain_kills: HashMap<FaultId, u32>,
}

/// Wrapper giving events a total order inside the heap (order value is the
/// sequence number; the enum itself never needs comparing).
#[derive(Debug, Clone, PartialEq, Eq)]
struct EventBox(Event);

impl PartialOrd for EventBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventBox {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl Simulation {
    /// Build a simulator for `cfg`, rejecting configurations that fail
    /// [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> Result<Simulation, crate::SimError> {
        cfg.validate().map_err(crate::SimError::InvalidConfig)?;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let faults = FaultModel::standard();
        let workload = Workload::generate(&cfg, &faults, &mut rng);
        let buggy_now = workload.execs.iter().map(|e| e.buggy).collect();
        let mut sim = Simulation {
            now: cfg.start,
            scheduler: Scheduler::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            queue: VecDeque::new(),
            queue_times: HashMap::new(),
            running: HashMap::new(),
            broken: HashMap::new(),
            buggy_now,
            next_job_id: 1,
            records: Vec::new(),
            job_records: Vec::new(),
            boots: Vec::new(),
            truth: GroundTruth::default(),
            wide_busy_secs: [0; 80],
            chain_kills: HashMap::new(),
            rng,
            faults,
            workload,
            cfg,
        };
        sim.prime();
        Ok(sim)
    }

    fn push(&mut self, time: Timestamp, event: Event) {
        self.seq += 1;
        self.heap.push(Reverse((time, self.seq, EventBox(event))));
    }

    /// Seed the heap: planned arrivals, the fault processes, maintenance.
    fn prime(&mut self) {
        let arrivals: Vec<(Timestamp, u32)> = self
            .workload
            .arrivals
            .iter()
            .map(|a| (a.queue_time, a.exec_idx))
            .collect();
        for (t, exec_idx) in arrivals {
            self.push(t, Event::Arrival { exec_idx });
        }
        let first_fault = self.sample_fault_gap();
        self.push(self.cfg.start + first_fault, Event::RootFault);
        let first_transient = Duration::seconds(exponential(
            &mut self.rng,
            1.0 / self.cfg.transient_mean_interarrival_secs,
        ) as i64);
        self.push(self.cfg.start + first_transient, Event::TransientFault);
        if self.cfg.maintenance_secs > 0 {
            let mut week = 0u32;
            let mut t = self.cfg.start + Duration::days(3);
            while t < self.cfg.end() {
                self.push(
                    t,
                    Event::MaintenanceStart {
                        row: (week % 5) as u8,
                    },
                );
                self.push(
                    t + Duration::seconds(self.cfg.maintenance_secs),
                    Event::MaintenanceEnd,
                );
                week += 1;
                t += Duration::days(7);
            }
        }
    }

    fn sample_fault_gap(&mut self) -> Duration {
        let shape = self.cfg.system_fault_shape;
        // Choose the Weibull scale so the *mean* matches the configured mean
        // interarrival: mean = scale · Γ(1 + 1/shape).
        let scale = self.cfg.system_fault_mean_interarrival_secs
            / bgp_stats::special::gamma(1.0 + 1.0 / shape);
        Duration::seconds(weibull(&mut self.rng, shape, scale).max(1.0) as i64)
    }

    /// Run to the end of the window and package the output.
    pub fn run(mut self) -> SimOutput {
        let end = self.cfg.end();
        while let Some(Reverse((time, _, EventBox(event)))) = self.heap.pop() {
            if time >= end {
                break;
            }
            self.now = time;
            self.handle(event);
        }
        self.finish()
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Arrival { exec_idx } => {
                self.queue.push_back(exec_idx);
                self.queue_times.entry(exec_idx).or_default().push(self.now);
                self.try_schedule();
            }
            Event::JobEnd { job_id } => self.on_job_end(job_id),
            Event::JobKill { job_id, cause } => self.on_job_kill(job_id, cause),
            Event::RootFault => self.on_root_fault(),
            Event::TransientFault => self.on_transient_fault(),
            Event::MaintenanceStart { row } => {
                let lo = u32::from(row) * 16;
                let midplanes = (lo..lo + 16).map(|i| MidplaneId::from_index_wrapping(i as u8));
                self.scheduler.begin_maintenance(midplanes);
            }
            Event::MaintenanceEnd => {
                self.scheduler.end_maintenance();
                self.try_schedule();
            }
        }
    }

    // ---------------- scheduling ----------------

    fn try_schedule(&mut self) {
        // FCFS with generous skip-ahead (Cobalt-ish backfill behaviour): an
        // unplaceable wide job must not head-of-line-block the narrow jobs
        // behind it.
        let mut scanned = 0usize;
        let mut i = 0usize;
        // Fault-aware mode: the scheduler is told which midplanes are
        // currently broken and routes around them.
        let avoid = if self.cfg.fault_aware_scheduler {
            Partition::from_midplanes(
                self.broken
                    .iter()
                    .filter(|(_, b)| b.until > self.now)
                    .map(|(&i, _)| MidplaneId::from_index_wrapping(i as u8)),
            )
        } else {
            Partition::empty()
        };
        while i < self.queue.len() && scanned < 512 {
            let exec_idx = self.queue[i];
            scanned += 1;
            let profile = self.workload.profile(exec_idx).clone();
            let placed = self.scheduler.find_partition_avoiding(
                profile.size(),
                profile.exec,
                self.cfg.same_partition_prob,
                &mut self.rng,
                avoid,
            );
            match placed {
                Some(partition) => {
                    self.queue.remove(i);
                    self.start_job(exec_idx, partition);
                    // Stay at position i: the next entry slid into it.
                }
                None => i += 1,
            }
        }
    }

    fn start_job(&mut self, exec_idx: u32, partition: Partition) {
        let profile = self.workload.profile(exec_idx).clone();
        let queue_time = self
            .queue_times
            .get_mut(&exec_idx)
            .and_then(|v| {
                if v.is_empty() {
                    None
                } else {
                    Some(v.remove(0))
                }
            })
            .unwrap_or(self.now);
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        let runtime = self.workload.sample_runtime(exec_idx, &mut self.rng);
        let start_time = self.now;
        let natural_end = start_time + Duration::seconds(runtime);

        // Scheduled interruption: broken hardware dominates, else the
        // executable's own bug.
        let mut kill: Option<(Timestamp, KillCause)> = None;
        for m in partition.midplanes() {
            if let Some(b) = self.broken.get(&m.index()) {
                if b.until > self.now {
                    let exposure =
                        30.0 + exponential(&mut self.rng, 1.0 / self.cfg.broken_exposure_mean_secs);
                    let t = start_time + Duration::seconds(exposure as i64);
                    if t < natural_end {
                        kill = Some((
                            t,
                            KillCause::Broken {
                                root: b.root,
                                code: b.code,
                                midplane: m,
                            },
                        ));
                    }
                    break;
                }
            }
        }
        // Hard bugs fire more often per run than easy ones; combined with
        // fix-probability selection this steepens the Figure-7 category-2
        // curve.
        let fail_prob = self.cfg.buggy_run_fail_prob * (0.58 + 0.7 * profile.difficulty);
        if kill.is_none()
            && self.buggy_now[exec_idx as usize]
            && self.rng.random::<f64>() < fail_prob
        {
            // A failing buggy run crashes before its natural end — early in
            // absolute terms (log-normal around the configured median) and,
            // for short jobs, within the run itself.
            let early = lognormal(
                &mut self.rng,
                self.cfg.app_fail_median_secs.ln(),
                self.cfg.app_fail_sigma,
            );
            let within = runtime as f64 * (0.1 + 0.85 * self.rng.random::<f64>());
            let fail_after = early.min(within).max(5.0);
            let t = (start_time + Duration::seconds(fail_after as i64))
                .min(natural_end - Duration::seconds(1));
            if t > start_time {
                if let Some(code) = profile.app_code {
                    kill = Some((t, KillCause::AppError { code }));
                }
            }
        }

        self.scheduler.place(partition, job_id, profile.exec);
        self.boots.push((start_time, partition));
        self.running.insert(
            job_id,
            RunningJob {
                job_id,
                exec_idx,
                partition,
                queue_time,
                start_time,
                natural_end,
                kill_at: kill.as_ref().map(|(t, _)| *t),
            },
        );
        match kill {
            Some((t, cause)) => self.push(t, Event::JobKill { job_id, cause }),
            None => self.push(natural_end, Event::JobEnd { job_id }),
        }
    }

    fn finalize_job(&mut self, job: &RunningJob, end_time: Timestamp, exit: ExitStatus) {
        if job.partition.len() >= 32 {
            let secs = (end_time - job.start_time).as_secs();
            for m in job.partition.midplanes() {
                self.wide_busy_secs[m.index()] += secs;
            }
        }
        let profile = self.workload.profile(job.exec_idx);
        self.job_records.push(JobRecord {
            job_id: job.job_id,
            exec: profile.exec,
            user: profile.user,
            project: profile.project,
            queue_time: job.queue_time,
            start_time: job.start_time,
            end_time,
            partition: job.partition,
            exit,
        });
        self.scheduler.release(job.partition);
    }

    fn on_job_end(&mut self, job_id: u64) {
        let Some(job) = self.running.get(&job_id).cloned() else {
            return; // superseded
        };
        if job.kill_at.is_some() || job.natural_end != self.now {
            return; // a kill was scheduled instead, or the event is stale
        }
        self.running.remove(&job_id);
        self.finalize_job(&job, self.now, ExitStatus::Completed);
        self.try_schedule();
    }

    // ---------------- interruptions ----------------

    fn on_job_kill(&mut self, job_id: u64, cause: KillCause) {
        let Some(job) = self.running.get(&job_id).cloned() else {
            return;
        };
        if job.kill_at != Some(self.now) {
            return; // stale
        }
        self.running.remove(&job_id);

        match cause {
            KillCause::Broken {
                root,
                code,
                midplane,
            } => {
                self.finalize_job(&job, self.now, ExitStatus::Failed(EXIT_SYSTEM_KILL));
                // A chain occurrence: same root, re-reported now.
                let id = self.new_fault(TrueFault {
                    id: ROOT_SELF, // assigned by new_fault
                    root,
                    time: self.now,
                    location: Location::Midplane(midplane),
                    errcode: code,
                    nature: FaultNature::SystemFailure,
                    persistent: true,
                    interrupted_jobs: vec![job_id],
                    idle_location: false,
                });
                self.truth.job_cause.insert(job_id, id);
                self.storm(code, midplane, Some(job.partition));
                // Repeated victims draw administrator attention: expedite
                // the repair after the second chain kill.
                let kills = self.chain_kills.entry(root).or_insert(0);
                *kills += 1;
                if *kills >= 2 {
                    // Faster than the typical resubmit cycle, so the third
                    // attempt usually finds the hardware fixed.
                    let expedited = self.now
                        + Duration::seconds(
                            (120.0 + exponential(&mut self.rng, 1.0 / 600.0)) as i64,
                        );
                    if let Some(b) = self.broken.get_mut(&midplane.index()) {
                        if b.root == root {
                            b.until = b.until.min(expedited);
                        }
                    }
                }
                self.maybe_resubmit(job.exec_idx);
            }
            KillCause::AppError { code } => {
                self.finalize_job(&job, self.now, ExitStatus::Failed(EXIT_APP_CRASH));
                // xtask-allow(no-panic): a running job's partition is non-empty by scheduler construction; no fallback location would be truthful
                #[allow(clippy::expect_used)]
                let epicenter = job.partition.first().expect("non-empty partition");
                let id = self.new_fault(TrueFault {
                    id: ROOT_SELF,
                    root: ROOT_SELF,
                    time: self.now,
                    location: Location::Midplane(epicenter),
                    errcode: code,
                    nature: FaultNature::ApplicationError,
                    persistent: false,
                    interrupted_jobs: vec![job_id],
                    idle_location: false,
                });
                self.truth.job_cause.insert(job_id, id);
                self.storm(code, epicenter, Some(job.partition));

                // Shared-file-system propagation to co-running jobs.
                if self.faults.is_fs_propagating(code) {
                    let mut victims: Vec<RunningJob> = self.running.values().cloned().collect();
                    victims.sort_by_key(|v| v.job_id); // deterministic order
                    victims.truncate(8);
                    let mut propagated = 0;
                    for v in victims {
                        if propagated >= 2 {
                            break;
                        }
                        if self.rng.random::<f64>() < self.cfg.fs_propagation_prob {
                            propagated += 1;
                            self.running.remove(&v.job_id);
                            self.finalize_job(&v, self.now, ExitStatus::Failed(EXIT_APP_CRASH));
                            self.truth.job_cause.insert(v.job_id, id);
                            // Extend the victim list of the fault we created.
                            if let Some(f) = self.truth.faults.iter_mut().find(|f| f.id == id) {
                                f.interrupted_jobs.push(v.job_id);
                            }
                            // xtask-allow(no-panic): same invariant — running jobs occupy a non-empty partition
                            #[allow(clippy::expect_used)]
                            let vm = v.partition.first().expect("non-empty");
                            self.storm(code, vm, Some(v.partition));
                            self.maybe_resubmit(v.exec_idx);
                        }
                    }
                }

                // Bug-fixing dynamics: easy bugs get fixed after a failure,
                // hard ones survive (selection effect → Figure 7 cat. 2).
                let difficulty = self.workload.profile(job.exec_idx).difficulty;
                let p_fix = 0.15 + 0.7 * (1.0 - difficulty);
                if self.rng.random::<f64>() < p_fix {
                    self.buggy_now[job.exec_idx as usize] = false;
                }
                self.maybe_resubmit(job.exec_idx);
            }
        }
        self.try_schedule();
    }

    fn maybe_resubmit(&mut self, exec_idx: u32) {
        if self.rng.random::<f64>() < self.cfg.resubmit_prob {
            let delay = 60.0 + exponential(&mut self.rng, 1.0 / self.cfg.resubmit_delay_mean_secs);
            let t = self.now + Duration::seconds(delay as i64);
            if t < self.cfg.end() {
                self.push(t, Event::Arrival { exec_idx });
            }
        }
    }

    // ---------------- fault processes ----------------

    fn on_root_fault(&mut self) {
        let gap = self.sample_fault_gap();
        let next = self.now + gap;
        self.push(next, Event::RootFault);

        let roll: f64 = self.rng.random::<f64>();
        if roll < self.cfg.stress_fault_fraction {
            // Stress-induced degradation: the fault strikes hardware in
            // proportion to its accumulated wide-job occupancy, busy or not
            // (Observation 5's mechanism — wide jobs wear the middle band).
            let weights: Vec<f64> = (0..80u8)
                .map(|i| self.wide_weight(MidplaneId::from_index_wrapping(i)))
                .collect();
            let m = MidplaneId::from_index_wrapping(bgp_stats::sample::categorical(
                &mut self.rng,
                &weights,
            ) as u8);
            match self.scheduler.slot(m) {
                crate::scheduler::SlotState::Busy(job_id) => self.busy_fault_at(m, job_id),
                _ => self.idle_fault_at(m),
            }
        } else if self.rng.random::<f64>() < self.cfg.idle_fault_fraction {
            self.idle_root_fault();
        } else {
            self.busy_root_fault();
        }
    }

    /// Fault-intensity weight of a midplane: 1 plus a term proportional to
    /// its share of the machine's accumulated wide-job occupancy. This is
    /// the generative counterpart of Observation 5: hardware that hosts wide
    /// jobs sees more stress (full-bandwidth torus traffic, more link/cable
    /// involvement, more complex boots) and fails more.
    fn wide_weight(&self, m: MidplaneId) -> f64 {
        let total: i64 = self.wide_busy_secs.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / 80.0;
        1.0 + 20.0 * self.wide_busy_secs[m.index()] as f64 / mean.max(1.0)
    }

    fn idle_root_fault(&mut self) {
        let idle = self.scheduler.idle_midplanes();
        if idle.is_empty() {
            return self.busy_root_fault();
        }
        let weights: Vec<f64> = idle.iter().map(|&m| self.wide_weight(m)).collect();
        let m = idle[bgp_stats::sample::categorical(&mut self.rng, &weights)];
        self.idle_fault_at(m);
    }

    fn idle_fault_at(&mut self, m: MidplaneId) {
        let code = self.faults.sample_idle_code(&mut self.rng);
        let persistent = self.faults.is_persistent_capable(code)
            && self.rng.random::<f64>() < self.cfg.persistent_fault_prob;
        let id = self.new_fault(TrueFault {
            id: ROOT_SELF,
            root: ROOT_SELF,
            time: self.now,
            location: Location::Midplane(m),
            errcode: code,
            nature: FaultNature::SystemFailure,
            persistent,
            interrupted_jobs: vec![],
            idle_location: true,
        });
        if persistent {
            self.break_midplane(m, id, code);
        }
        self.storm(code, m, None);
    }

    fn busy_root_fault(&mut self) {
        let busy = self.scheduler.busy_midplanes();
        if busy.is_empty() {
            return self.idle_root_fault();
        }
        // Weight midplanes by current *and* accumulated wide-job occupancy:
        // faults cluster where wide jobs run (Observation 5's mechanism).
        let weights: Vec<f64> = busy
            .iter()
            .map(|&(m, job_id)| {
                let wide_now = self
                    .running
                    .get(&job_id)
                    .is_some_and(|j| j.partition.len() >= 32);
                self.wide_weight(m) * if wide_now { 8.0 } else { 1.0 }
            })
            .collect();
        let pick = bgp_stats::sample::categorical(&mut self.rng, &weights);
        let (m, victim_id) = busy[pick];
        self.busy_fault_at(m, victim_id);
    }

    fn busy_fault_at(&mut self, m: MidplaneId, victim_id: u64) {
        let code = self.faults.sample_system_code(&mut self.rng);
        let persistent = self.faults.is_persistent_capable(code)
            && self.rng.random::<f64>() < self.cfg.persistent_fault_prob;

        let Some(victim) = self.running.get(&victim_id).cloned() else {
            return;
        };
        self.running.remove(&victim_id);
        self.finalize_job(&victim, self.now, ExitStatus::Failed(EXIT_SYSTEM_KILL));
        let id = self.new_fault(TrueFault {
            id: ROOT_SELF,
            root: ROOT_SELF,
            time: self.now,
            location: Location::Midplane(m),
            errcode: code,
            nature: FaultNature::SystemFailure,
            persistent,
            interrupted_jobs: vec![victim_id],
            idle_location: false,
        });
        self.truth.job_cause.insert(victim_id, id);
        if persistent {
            self.break_midplane(m, id, code);
        }
        self.storm(code, m, Some(victim.partition));
        self.maybe_resubmit(victim.exec_idx);
        self.try_schedule();
    }

    fn on_transient_fault(&mut self) {
        let gap = Duration::seconds(exponential(
            &mut self.rng,
            1.0 / self.cfg.transient_mean_interarrival_secs,
        ) as i64);
        self.push(self.now + gap, Event::TransientFault);
        // Half the alarms fire under running jobs (the case-3 signature that
        // lets co-analysis mark these codes non-fatal-in-practice).
        let busy = self.scheduler.busy_midplanes();
        let m = if !busy.is_empty() && self.rng.random::<f64>() < 0.5 {
            busy[self.rng.random_range(0..busy.len())].0
        } else {
            MidplaneId::from_index_wrapping(self.rng.random_range(0..80))
        };
        let code = self.faults.sample_transient_code(&mut self.rng);
        let idle = !matches!(self.scheduler.slot(m), crate::scheduler::SlotState::Busy(_));
        self.new_fault(TrueFault {
            id: ROOT_SELF,
            root: ROOT_SELF,
            time: self.now,
            location: Location::Midplane(m),
            errcode: code,
            nature: FaultNature::Transient,
            persistent: false,
            interrupted_jobs: vec![],
            idle_location: idle,
        });
        self.storm(code, m, None);
    }

    fn break_midplane(&mut self, m: MidplaneId, root: FaultId, code: ErrCode) {
        // The component was dying for hours: emit its correctable-error
        // precursor trail (timestamps before now; the final sort fixes
        // ordering).
        crate::emission::emit_precursors(
            &mut self.records,
            &mut self.rng,
            self.now,
            m,
            self.cfg.precursor_mean_count,
        );
        let repair = lognormal(
            &mut self.rng,
            self.cfg.repair_median_secs.ln(),
            self.cfg.repair_sigma,
        )
        .min(72.0 * 3600.0);
        self.broken.insert(
            m.index(),
            BrokenState {
                root,
                code,
                until: self.now + Duration::seconds(repair as i64),
            },
        );
    }

    /// Append a fault to the truth record, assigning its id (and root, if it
    /// is itself a root).
    fn new_fault(&mut self, mut fault: TrueFault) -> FaultId {
        let id = FaultId(self.truth.faults.len() as u64);
        fault.id = id;
        if fault.root == ROOT_SELF {
            fault.root = id;
        }
        self.truth
            .code_nature
            .entry(fault.errcode)
            .or_insert(self.faults.nature_of(fault.errcode));
        self.truth.faults.push(fault);
        id
    }

    fn storm(&mut self, code: ErrCode, epicenter: MidplaneId, partition: Option<Partition>) {
        let shape = StormShape {
            temporal_mean: self.cfg.storm_temporal_mean,
            spatial_mean: self.cfg.storm_spatial_mean,
        };
        emit_storm(
            &mut self.records,
            &mut self.rng,
            shape,
            &self.faults,
            self.now,
            code,
            epicenter,
            partition,
        );
    }

    // ---------------- wrap-up ----------------

    fn finish(mut self) -> SimOutput {
        let end = self.cfg.end();
        // Truncate still-running jobs at the window end.
        let leftovers: Vec<RunningJob> = self.running.values().cloned().collect();
        for job in leftovers {
            let end_time = job.natural_end.min(end);
            self.finalize_job(&job, end_time, ExitStatus::Completed);
        }
        self.running.clear();

        // Record the buggy-executable truth.
        for e in &self.workload.execs {
            if e.buggy {
                self.truth.buggy_execs.insert(e.exec);
            }
        }

        // Background volume, then the global sort and RECID assignment.
        emit_background(
            &mut self.records,
            &mut self.rng,
            &self.boots,
            (self.cfg.start, end),
            self.cfg.noise_scale,
        );
        self.records.sort_by_key(|r| r.event_time);
        for (i, r) in self.records.iter_mut().enumerate() {
            r.recid = i as u64 + 1;
        }

        SimOutput {
            ras: RasLog::from_records(self.records),
            jobs: JobLog::from_jobs(self.job_records),
            truth: self.truth,
            config: self.cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::FaultNature;

    fn run_small(seed: u64) -> SimOutput {
        Simulation::new(SimConfig::small_test(seed))
            .expect("valid config")
            .run()
    }

    #[test]
    fn produces_jobs_and_records() {
        let out = run_small(1);
        assert!(out.jobs.len() > 200, "jobs: {}", out.jobs.len());
        assert!(out.ras.len() > 1_000, "records: {}", out.ras.len());
        assert!(out.ras.fatal().count() > 100);
        assert!(!out.truth.faults.is_empty());
    }

    #[test]
    fn job_times_are_consistent() {
        let out = run_small(2);
        for j in out.jobs.jobs() {
            assert!(j.queue_time <= j.start_time, "job {}", j.job_id);
            assert!(j.start_time <= j.end_time, "job {}", j.job_id);
            assert!(j.end_time <= out.config.end());
            assert!(crate::workload::JOB_SIZES.contains(&j.size_midplanes()));
        }
    }

    #[test]
    fn no_overlapping_jobs_on_a_midplane() {
        let out = run_small(3);
        // For every midplane, job intervals must not overlap.
        for m in bgp_model::MidplaneId::all() {
            let mut intervals: Vec<(i64, i64)> = out
                .jobs
                .jobs()
                .iter()
                .filter(|j| j.partition.contains(m))
                .map(|j| (j.start_time.as_unix(), j.end_time.as_unix()))
                .collect();
            intervals.sort_unstable();
            for pair in intervals.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].0,
                    "overlap on {m}: {:?} vs {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn interrupted_jobs_have_causes_and_failed_exits() {
        let out = run_small(4);
        assert!(
            !out.truth.job_cause.is_empty(),
            "no interruptions in a 12-day window"
        );
        for (&job_id, &fault_id) in &out.truth.job_cause {
            let job = out.jobs.by_job_id(job_id).expect("interrupted job logged");
            assert!(
                matches!(job.exit, ExitStatus::Failed(_)),
                "job {job_id} should have failed exit"
            );
            let fault = out.truth.fault(fault_id).expect("cause exists");
            assert!(fault.interrupted_jobs.contains(&job_id));
            // The fault fired while the job ran and the job ends then.
            assert_eq!(fault.time, job.end_time);
            assert!(job.partition.covers_location(fault.location));
        }
    }

    #[test]
    fn idle_faults_have_no_victims() {
        let out = run_small(5);
        let idle_faults: Vec<_> = out
            .truth
            .faults
            .iter()
            .filter(|f| f.idle_location)
            .collect();
        assert!(!idle_faults.is_empty());
        for f in idle_faults {
            assert!(f.interrupted_jobs.is_empty());
        }
    }

    #[test]
    fn chains_share_roots_and_codes() {
        // Chains are rare in tiny windows; scan seeds until one appears.
        for seed in 0..12 {
            let out = run_small(seed);
            let chains: Vec<_> = out.truth.faults.iter().filter(|f| f.is_chain()).collect();
            if chains.is_empty() {
                continue;
            }
            for c in &chains {
                let root = out.truth.fault(c.root).expect("root exists");
                assert!(!root.is_chain(), "root of a chain must be a root");
                assert_eq!(root.errcode, c.errcode, "chains re-report the root code");
                assert!(c.time > root.time);
                assert_eq!(c.location.midplane(), root.location.midplane());
            }
            return;
        }
        panic!("no chain occurrences in 12 seeds");
    }

    #[test]
    fn transients_never_interrupt() {
        let out = run_small(6);
        let transients: Vec<_> = out.truth.of_nature(FaultNature::Transient).collect();
        assert!(!transients.is_empty());
        for f in transients {
            assert!(f.interrupted_jobs.is_empty());
        }
        // And some transients fired on busy hardware (the case-3 signature).
        assert!(
            out.truth
                .of_nature(FaultNature::Transient)
                .any(|f| !f.idle_location),
            "expected busy-location transients"
        );
    }

    #[test]
    fn app_errors_mostly_early() {
        let mut early = 0usize;
        let mut total = 0usize;
        for seed in 0..6 {
            let out = run_small(seed);
            for f in out.truth.of_nature(FaultNature::ApplicationError) {
                for &job_id in &f.interrupted_jobs {
                    if let Some(j) = out.jobs.by_job_id(job_id) {
                        total += 1;
                        if j.runtime().as_secs() < 3_600 {
                            early += 1;
                        }
                    }
                }
            }
        }
        assert!(total > 10, "too few app interruptions to judge: {total}");
        let frac = early as f64 / total as f64;
        assert!(
            frac > 0.55,
            "only {frac:.2} of app interruptions within the first hour"
        );
    }

    #[test]
    fn recids_sequential_and_sorted() {
        let out = run_small(7);
        let recs = out.ras.records();
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.recid, i as u64 + 1);
        }
        for pair in recs.windows(2) {
            assert!(pair[0].event_time <= pair[1].event_time);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_small(11);
        let b = run_small(11);
        assert_eq!(a.ras.len(), b.ras.len());
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.truth.faults, b.truth.faults);
        assert_eq!(a.ras.records(), b.ras.records());
    }

    #[test]
    fn fault_aware_scheduler_reduces_chains() {
        // The Section VII what-if: with a failure feed, the scheduler stops
        // placing jobs on broken midplanes, so job-related redundancy
        // chains (and their interruptions) shrink. Aggregate across seeds —
        // single small windows are noisy.
        let mut chains_blind = 0usize;
        let mut chains_aware = 0usize;
        let mut int_blind = 0usize;
        let mut int_aware = 0usize;
        for seed in 0..6 {
            let blind = Simulation::new(SimConfig::small_test(seed))
                .expect("valid config")
                .run();
            let mut cfg = SimConfig::small_test(seed);
            cfg.fault_aware_scheduler = true;
            let aware = Simulation::new(cfg).expect("valid config").run();
            chains_blind += blind.truth.chain_faults();
            chains_aware += aware.truth.chain_faults();
            int_blind += blind.truth.total_interruptions();
            int_aware += aware.truth.total_interruptions();
        }
        assert!(
            chains_aware < chains_blind,
            "chains: aware {chains_aware} vs blind {chains_blind}"
        );
        assert!(
            int_aware <= int_blind,
            "interruptions: aware {int_aware} vs blind {int_blind}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_small(1);
        let b = run_small(2);
        assert_ne!(a.ras.len(), b.ras.len());
    }
}
