//! The fault model: which error codes exist in which behavioural groups,
//! how root faults choose codes and locations, and which codes travel
//! together (causal companions).
//!
//! This module holds the **ground-truth semantics** of the synthetic error
//! codes — what the analysis side has to rediscover. The group sizes mirror
//! the paper's Section IV findings: 8 application-error types, 2
//! fatal-labeled-but-transient types, 23 interruption-capable system types
//! observed on busy hardware, and a 49-type long tail that only ever fires on
//! idle hardware.

use crate::truth::FaultNature;
use rand::{Rng, RngExt};
use raslog::{Catalog, ErrCode};
use std::collections::HashMap;

/// The 8 application-error codes (reported from KERNEL, like the real log).
pub const APP_ERROR_CODES: [&str; 8] = [
    "_bgp_err_app_invalid_mem_addr",
    "_bgp_err_app_out_of_memory",
    "_bgp_err_fs_operation_error",
    "_bgp_err_collective_op_error",
    "CiodHungProxy",
    "bg_code_script_error",
    "_bgp_err_app_alignment_trap",
    "_bgp_err_mpi_abort",
];

/// The application-error codes that propagate through the shared file system
/// to co-running jobs (the paper's two spatially-propagating types).
pub const FS_PROPAGATING_CODES: [&str; 2] = ["CiodHungProxy", "bg_code_script_error"];

/// The 2 fatal-labeled transient codes (Observation 1).
pub const TRANSIENT_CODES: [&str; 2] = ["BULK_POWER_FATAL", "_bgp_err_torus_fatal_sum"];

/// The 23 interruption-capable system-failure codes with their relative
/// occurrence weights. The first four are the paper's named
/// repeat-interrupter types (L1 parity, DDR controller, fs configuration,
/// link card) and are the persistent-capable ones; L1 parity is the most
/// common, matching the paper's "28 jobs in 92 hours" chain.
pub const SYSTEM_BUSY_CODES: [(&str, f64); 23] = [
    ("_bgp_err_cns_ras_storm_fatal", 10.0),
    ("_bgp_err_ddr_controller", 6.0),
    ("_bgp_err_fs_config", 5.0),
    ("_bgp_err_linkcard_failure", 4.0),
    ("_bgp_err_kernel_panic", 6.0),
    ("_bgp_err_torus_sender_fifo", 3.0),
    ("_bgp_err_torus_receiver_parity", 3.0),
    ("_bgp_err_collective_net_hw", 2.5),
    ("_bgp_err_ionode_crash", 4.0),
    ("_bgp_err_gpfs_mount_failure", 3.0),
    ("_bgp_err_node_ecc_uncorrectable", 3.0),
    ("_bgp_err_l2_cache_failure", 1.5),
    ("_bgp_err_l3_edram_failure", 1.5),
    ("_bgp_err_fpu_unavailable", 1.0),
    ("_bgp_err_nodecard_power", 2.0),
    ("_bgp_err_servicecard_comm", 1.5),
    ("DetectedClockCardErrors", 1.5),
    ("_bgp_err_mmcs_boot_failure", 2.0),
    ("_bgp_err_mmcs_db_connection", 1.0),
    ("_bgp_err_mc_timeout", 1.0),
    ("_bgp_err_baremetal_svc", 0.8),
    ("_bgp_err_io_collective_sync", 1.2),
    ("_bgp_err_eth_10g_link_down", 1.5),
];

/// Codes whose faults leave the midplane broken until repair (when the
/// persistence coin lands heads): the paper's four repeat-interrupter types.
pub const PERSISTENT_CAPABLE_CODES: [&str; 4] = [
    "_bgp_err_cns_ras_storm_fatal",
    "_bgp_err_ddr_controller",
    "_bgp_err_fs_config",
    "_bgp_err_linkcard_failure",
];

/// Causal companion codes: when the key fires, the companions are emitted in
/// the same storm (different ERRCODE, so temporal-spatial filtering cannot
/// collapse them — that is the causality-related filter's job).
pub const COMPANIONS: [(&str, &str); 6] = [
    ("_bgp_err_cns_ras_storm_fatal", "_bgp_err_kernel_panic"),
    ("_bgp_err_ddr_controller", "_bgp_err_node_ecc_uncorrectable"),
    ("_bgp_err_ionode_crash", "_bgp_err_gpfs_mount_failure"),
    ("_bgp_err_ionode_crash", "_bgp_err_eth_10g_link_down"),
    ("_bgp_err_linkcard_failure", "_bgp_err_torus_sender_fifo"),
    ("_bgp_err_fs_config", "_bgp_err_gpfs_mount_failure"),
];

/// The resolved fault model (names resolved to catalogue codes once).
#[derive(Debug, Clone)]
pub struct FaultModel {
    /// Application-error codes, parallel to a weight vector.
    pub app_codes: Vec<ErrCode>,
    /// Weights for choosing an app code for a buggy executable.
    pub app_weights: Vec<f64>,
    /// Codes that propagate via the shared file system.
    pub fs_propagating: Vec<ErrCode>,
    /// Transient FATAL codes.
    pub transient_codes: Vec<ErrCode>,
    /// Interruption-capable system codes.
    pub system_codes: Vec<ErrCode>,
    /// Weights, parallel to `system_codes`.
    pub system_weights: Vec<f64>,
    /// Persistent-capable subset of `system_codes`.
    pub persistent_capable: Vec<ErrCode>,
    /// The 49-type idle-only long tail.
    pub idle_codes: Vec<ErrCode>,
    /// Companion map for causal storms.
    pub companions: HashMap<ErrCode, Vec<ErrCode>>,
}

impl FaultModel {
    /// Resolve the standard model against [`Catalog::standard`].
    pub fn standard() -> FaultModel {
        let cat = Catalog::standard();
        #[allow(clippy::panic)]
        let resolve = |name: &str| {
            cat.lookup(name)
                // xtask-allow(no-panic): every name in the static tables is proven to exist in the catalog by the errcode-catalog lint; dropping entries would desynchronise the parallel weight arrays
                .unwrap_or_else(|| panic!("fault model references unknown code {name}"))
        };
        let app_codes: Vec<ErrCode> = APP_ERROR_CODES.iter().map(|n| resolve(n)).collect();
        // Invalid memory access and OOM dominate real application aborts;
        // the fs-wide types are rarer.
        let app_weights = vec![3.0, 2.5, 1.5, 1.0, 0.8, 0.7, 1.0, 2.0];
        let system_codes: Vec<ErrCode> =
            SYSTEM_BUSY_CODES.iter().map(|&(n, _)| resolve(n)).collect();
        let system_weights: Vec<f64> = SYSTEM_BUSY_CODES.iter().map(|&(_, w)| w).collect();
        // The idle-only tail is everything FATAL that is in no other group.
        let mut other: Vec<ErrCode> = app_codes.clone();
        other.extend(TRANSIENT_CODES.iter().map(|n| resolve(n)));
        other.extend(system_codes.iter().copied());
        let idle_codes: Vec<ErrCode> = cat.fatal_codes().filter(|c| !other.contains(c)).collect();
        let mut companions: HashMap<ErrCode, Vec<ErrCode>> = HashMap::new();
        for (key, companion) in COMPANIONS {
            companions
                .entry(resolve(key))
                .or_default()
                .push(resolve(companion));
        }
        FaultModel {
            app_codes,
            app_weights,
            fs_propagating: FS_PROPAGATING_CODES.iter().map(|n| resolve(n)).collect(),
            transient_codes: TRANSIENT_CODES.iter().map(|n| resolve(n)).collect(),
            system_codes,
            system_weights,
            persistent_capable: PERSISTENT_CAPABLE_CODES
                .iter()
                .map(|n| resolve(n))
                .collect(),
            idle_codes,
            companions,
        }
    }

    /// Sample an application-error code for a buggy executable.
    pub fn sample_app_code<R: Rng>(&self, rng: &mut R) -> ErrCode {
        self.app_codes[bgp_stats::sample::categorical(rng, &self.app_weights)]
    }

    /// Sample a busy-location system code.
    pub fn sample_system_code<R: Rng>(&self, rng: &mut R) -> ErrCode {
        self.system_codes[bgp_stats::sample::categorical(rng, &self.system_weights)]
    }

    /// Sample an idle-location code: mostly the long tail, sometimes a
    /// regular system code striking unoccupied hardware (so that system
    /// codes exhibit the paper's case-2 "fired with nobody there" pattern).
    pub fn sample_idle_code<R: Rng>(&self, rng: &mut R) -> ErrCode {
        if rng.random::<f64>() < 0.7 {
            self.idle_codes[rng.random_range(0..self.idle_codes.len())]
        } else {
            self.sample_system_code(rng)
        }
    }

    /// Sample a transient code.
    pub fn sample_transient_code<R: Rng>(&self, rng: &mut R) -> ErrCode {
        self.transient_codes[rng.random_range(0..self.transient_codes.len())]
    }

    /// Can this code leave hardware broken until repair?
    pub fn is_persistent_capable(&self, code: ErrCode) -> bool {
        self.persistent_capable.contains(&code)
    }

    /// Does this code propagate through the shared file system?
    pub fn is_fs_propagating(&self, code: ErrCode) -> bool {
        self.fs_propagating.contains(&code)
    }

    /// The true nature of a code under this model.
    pub fn nature_of(&self, code: ErrCode) -> FaultNature {
        if self.app_codes.contains(&code) {
            FaultNature::ApplicationError
        } else if self.transient_codes.contains(&code) {
            FaultNature::Transient
        } else {
            FaultNature::SystemFailure
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn group_sizes_match_paper() {
        let m = FaultModel::standard();
        assert_eq!(m.app_codes.len(), 8);
        assert_eq!(m.transient_codes.len(), 2);
        assert_eq!(m.system_codes.len(), 23);
        assert_eq!(m.idle_codes.len(), 49);
        assert_eq!(
            m.app_codes.len() + m.transient_codes.len() + m.system_codes.len() + m.idle_codes.len(),
            82
        );
        assert_eq!(m.app_weights.len(), m.app_codes.len());
        assert_eq!(m.system_weights.len(), m.system_codes.len());
    }

    #[test]
    fn groups_are_disjoint() {
        let m = FaultModel::standard();
        let mut all: Vec<ErrCode> = m
            .app_codes
            .iter()
            .chain(&m.transient_codes)
            .chain(&m.system_codes)
            .chain(&m.idle_codes)
            .copied()
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "code groups overlap");
    }

    #[test]
    fn natures() {
        let m = FaultModel::standard();
        let cat = Catalog::standard();
        assert_eq!(
            m.nature_of(cat.lookup("CiodHungProxy").unwrap()),
            FaultNature::ApplicationError
        );
        assert_eq!(
            m.nature_of(cat.lookup("BULK_POWER_FATAL").unwrap()),
            FaultNature::Transient
        );
        assert_eq!(
            m.nature_of(cat.lookup("_bgp_err_ddr_controller").unwrap()),
            FaultNature::SystemFailure
        );
        assert_eq!(
            m.nature_of(cat.lookup("_bgp_err_diag_netbist").unwrap()),
            FaultNature::SystemFailure
        );
    }

    #[test]
    fn persistence_and_propagation_flags() {
        let m = FaultModel::standard();
        let cat = Catalog::standard();
        assert!(m.is_persistent_capable(cat.lookup("_bgp_err_cns_ras_storm_fatal").unwrap()));
        assert!(!m.is_persistent_capable(cat.lookup("_bgp_err_kernel_panic").unwrap()));
        assert!(m.is_fs_propagating(cat.lookup("CiodHungProxy").unwrap()));
        assert!(!m.is_fs_propagating(cat.lookup("_bgp_err_mpi_abort").unwrap()));
    }

    #[test]
    fn sampling_respects_groups() {
        let m = FaultModel::standard();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            assert!(m.app_codes.contains(&m.sample_app_code(&mut rng)));
            assert!(m.system_codes.contains(&m.sample_system_code(&mut rng)));
            assert!(m
                .transient_codes
                .contains(&m.sample_transient_code(&mut rng)));
            let idle = m.sample_idle_code(&mut rng);
            assert!(
                m.idle_codes.contains(&idle) || m.system_codes.contains(&idle),
                "idle sample from wrong group"
            );
        }
    }

    #[test]
    fn companion_map_resolves() {
        let m = FaultModel::standard();
        let cat = Catalog::standard();
        let l1 = cat.lookup("_bgp_err_cns_ras_storm_fatal").unwrap();
        assert!(!m.companions[&l1].is_empty());
        let io = cat.lookup("_bgp_err_ionode_crash").unwrap();
        assert_eq!(m.companions[&io].len(), 2);
    }
}
