//! A Cobalt-like partition scheduler.
//!
//! Reproduces the placement behaviour the paper attributes to Intrepid
//! (Section V-B): narrow jobs are steered to the edge midplanes (racks R0x
//! heads and the R32–R39 tail, i.e. midplane indices 0–3 and 64–79), wide
//! jobs (≥ 32 midplanes) to the reserved middle band (indices 32–63), and a
//! resubmitted job returns to its previous partition when possible (the
//! paper observed 57.4 %).
//!
//! Crucially, the scheduler has **no fault knowledge**: a midplane left
//! broken by an unrepaired persistent fault is still allocatable. That is
//! the mechanism behind job-related redundancy (Observation 3).

use bgp_model::{topology::NUM_MIDPLANES, MidplaneId, Partition};
use joblog::ExecId;
use rand::{Rng, RngExt};
use std::collections::HashMap;

/// Occupancy state of one midplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Available for placement.
    Free,
    /// Running the given job.
    Busy(u64),
    /// Drained for maintenance.
    Maintenance,
}

/// The scheduler: machine occupancy plus placement policy.
#[derive(Debug, Clone)]
pub struct Scheduler {
    slots: [SlotState; NUM_MIDPLANES as usize],
    /// Last partition each executable ran on (for the same-partition
    /// resubmission preference).
    last_partition: HashMap<ExecId, Partition>,
    /// Precomputed anchor preference regions per size class (outer order =
    /// preference, inner = interchangeable anchors within one region).
    anchors: HashMap<u32, Vec<Vec<u8>>>,
}

impl Scheduler {
    /// A scheduler for an empty Intrepid.
    pub fn new() -> Scheduler {
        let mut anchors = HashMap::new();
        for &size in &crate::workload::JOB_SIZES {
            anchors.insert(size, anchor_preference(size));
        }
        Scheduler {
            slots: [SlotState::Free; NUM_MIDPLANES as usize],
            last_partition: HashMap::new(),
            anchors,
        }
    }

    /// Occupancy of one midplane.
    pub fn slot(&self, m: MidplaneId) -> SlotState {
        self.slots[m.index()]
    }

    /// Try to find a partition of `size` midplanes for `exec`.
    ///
    /// With probability `same_partition_prob`, a resubmission first tries the
    /// executable's previous partition (if wholly free). Otherwise anchors
    /// are scanned in policy preference order.
    pub fn find_partition<R: Rng>(
        &self,
        size: u32,
        exec: ExecId,
        same_partition_prob: f64,
        rng: &mut R,
    ) -> Option<Partition> {
        self.find_partition_avoiding(size, exec, same_partition_prob, rng, Partition::empty())
    }

    /// [`Scheduler::find_partition`] with a set of midplanes to avoid — the
    /// fault-aware variant (the paper's Section VII: a scheduler subscribed
    /// to failure information can stop feeding jobs to broken hardware).
    pub fn find_partition_avoiding<R: Rng>(
        &self,
        size: u32,
        exec: ExecId,
        same_partition_prob: f64,
        rng: &mut R,
        avoid: Partition,
    ) -> Option<Partition> {
        let usable = |p: Partition| self.all_free(p) && !p.overlaps(avoid);
        if let Some(&prev) = self.last_partition.get(&exec) {
            if prev.len() == size && rng.random::<f64>() < same_partition_prob && usable(prev) {
                return Some(prev);
            }
        }
        // Regions are scanned in preference order; anchors *within* a
        // region are interchangeable, so scanning starts at a random
        // rotation — placements spread across the preferred region instead
        // of hammering its first anchor (Cobalt balances similarly).
        for region in &self.anchors[&size] {
            let n = region.len();
            let rot = if n > 1 { rng.random_range(0..n) } else { 0 };
            for k in 0..n {
                let anchor = region[(k + rot) % n];
                let Ok(p) = Partition::contiguous(anchor, size) else {
                    continue; // anchor table entries are in range; skip rather than die
                };
                if usable(p) {
                    return Some(p);
                }
            }
        }
        None
    }

    fn all_free(&self, p: Partition) -> bool {
        p.midplanes()
            .all(|m| self.slots[m.index()] == SlotState::Free)
    }

    /// Mark a partition as running `job_id` and remember it for `exec`.
    pub fn place(&mut self, p: Partition, job_id: u64, exec: ExecId) {
        for m in p.midplanes() {
            debug_assert_eq!(self.slots[m.index()], SlotState::Free);
            self.slots[m.index()] = SlotState::Busy(job_id);
        }
        self.last_partition.insert(exec, p);
    }

    /// Release a partition (job ended).
    pub fn release(&mut self, p: Partition) {
        for m in p.midplanes() {
            self.slots[m.index()] = SlotState::Free;
        }
    }

    /// Drain a set of midplanes for maintenance. Busy midplanes are left
    /// running (real drains wait for jobs; we simply skip them).
    pub fn begin_maintenance(&mut self, midplanes: impl Iterator<Item = MidplaneId>) {
        for m in midplanes {
            if self.slots[m.index()] == SlotState::Free {
                self.slots[m.index()] = SlotState::Maintenance;
            }
        }
    }

    /// Return all maintenance midplanes to service.
    pub fn end_maintenance(&mut self) {
        for s in &mut self.slots {
            if *s == SlotState::Maintenance {
                *s = SlotState::Free;
            }
        }
    }

    /// Midplanes currently idle (free or drained) — fault targets with no
    /// job to interrupt.
    pub fn idle_midplanes(&self) -> Vec<MidplaneId> {
        (0..NUM_MIDPLANES)
            .filter(|&i| !matches!(self.slots[i as usize], SlotState::Busy(_)))
            .map(MidplaneId::from_index_wrapping)
            .collect()
    }

    /// `(midplane, job_id)` pairs currently busy.
    pub fn busy_midplanes(&self) -> Vec<(MidplaneId, u64)> {
        (0..NUM_MIDPLANES)
            .filter_map(|i| match self.slots[i as usize] {
                SlotState::Busy(j) => Some((MidplaneId::from_index_wrapping(i), j)),
                _ => None,
            })
            .collect()
    }

    /// Fraction of midplanes busy.
    pub fn utilization(&self) -> f64 {
        let busy = self
            .slots
            .iter()
            .filter(|s| matches!(s, SlotState::Busy(_)))
            .count();
        busy as f64 / f64::from(NUM_MIDPLANES)
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// The placement-policy anchor regions for a given size, in preference
/// order.
///
/// * narrow (1–2): tail edge (64–79), head edge (0–3), then inward;
/// * small/medium (4–16): tail edge, head block (0–31), then the middle;
/// * wide (≥ 32): the middle band (32–63) first, then whatever fits.
fn anchor_preference(size: u32) -> Vec<Vec<u8>> {
    let n = u32::from(NUM_MIDPLANES);
    let step = match size {
        1 => 1u32,
        2 => 2,
        4 | 8 | 16 => size,
        _ => 8,
    };
    let fits = |a: u32| a + size <= n;
    let range = |lo: u32, hi: u32| -> Vec<u8> {
        let mut out = Vec::new();
        let mut a = lo.div_ceil(step) * step;
        while a < hi {
            if fits(a) && a + size <= hi {
                out.push(a as u8);
            }
            a += step;
        }
        out
    };
    let regions: Vec<Vec<u8>> = match size {
        1 | 2 => vec![range(64, 80), range(0, 4), range(4, 32), range(32, 64)],
        4 | 8 | 16 => vec![range(64, 80), range(0, 32), range(32, 64)],
        32 => vec![range(32, 80), range(0, 32)],
        48 => vec![vec![24, 32], range(0, 80)],
        64 => vec![vec![8, 16, 0]],
        80 => vec![vec![0]],
        _ => vec![range(0, 80)],
    };
    regions.into_iter().filter(|r| !r.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    #[test]
    fn narrow_jobs_prefer_tail_edge() {
        let s = Scheduler::new();
        let p = s.find_partition(1, ExecId(1), 0.0, &mut rng()).unwrap();
        assert!(p.first().unwrap().index() >= 64, "placed at {p}");
        let p = s.find_partition(2, ExecId(1), 0.0, &mut rng()).unwrap();
        assert!(p.first().unwrap().index() >= 64);
    }

    #[test]
    fn wide_jobs_prefer_middle_band() {
        let s = Scheduler::new();
        let p = s.find_partition(32, ExecId(1), 0.0, &mut rng()).unwrap();
        let lo = p.first().unwrap().index();
        assert!((32..64).contains(&lo), "32-midplane job anchored at {lo}");
        let p = s.find_partition(80, ExecId(1), 0.0, &mut rng()).unwrap();
        assert_eq!(p.len(), 80);
    }

    #[test]
    fn placement_excludes_busy_and_maintenance() {
        let mut s = Scheduler::new();
        // Fill the whole tail edge and head edge.
        let tail = Partition::contiguous(64, 16).unwrap();
        s.place(tail, 1, ExecId(9));
        let head = Partition::contiguous(0, 4).unwrap();
        s.place(head, 2, ExecId(8));
        let p = s.find_partition(1, ExecId(3), 0.0, &mut rng()).unwrap();
        let idx = p.first().unwrap().index();
        assert!((4..64).contains(&idx), "fell back inward, got {idx}");
        // Draining the rest of the head block forces further inward.
        s.begin_maintenance(Partition::contiguous(4, 28).unwrap().midplanes());
        let p = s.find_partition(1, ExecId(3), 0.0, &mut rng()).unwrap();
        assert!(p.first().unwrap().index() >= 32);
        s.end_maintenance();
        let p = s.find_partition(1, ExecId(3), 0.0, &mut rng()).unwrap();
        assert!((4..32).contains(&p.first().unwrap().index()));
    }

    #[test]
    fn release_frees_slots() {
        let mut s = Scheduler::new();
        let p = s.find_partition(4, ExecId(1), 0.0, &mut rng()).unwrap();
        s.place(p, 7, ExecId(1));
        assert!((s.utilization() - 4.0 / 80.0).abs() < 1e-12);
        assert_eq!(s.busy_midplanes().len(), 4);
        s.release(p);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.idle_midplanes().len(), 80);
    }

    #[test]
    fn same_partition_preference() {
        let mut s = Scheduler::new();
        let mut r = rng();
        let p1 = s.find_partition(2, ExecId(5), 0.0, &mut r).unwrap();
        s.place(p1, 1, ExecId(5));
        s.release(p1);
        // With probability 1 the resubmission reuses the exact partition.
        let p2 = s.find_partition(2, ExecId(5), 1.0, &mut r).unwrap();
        assert_eq!(p1, p2);
        // With probability 0 it still finds *a* partition (possibly the same
        // one, since preference order is deterministic) — just must be valid.
        let p3 = s.find_partition(2, ExecId(5), 0.0, &mut r).unwrap();
        assert_eq!(p3.len(), 2);
        // If the previous partition is busy, preference cannot apply.
        s.place(p1, 2, ExecId(6));
        let p4 = s.find_partition(2, ExecId(5), 1.0, &mut r).unwrap();
        assert_ne!(p4, p1);
    }

    #[test]
    fn machine_full_returns_none() {
        let mut s = Scheduler::new();
        s.place(Partition::contiguous(0, 80).unwrap(), 1, ExecId(1));
        assert!(s.find_partition(1, ExecId(2), 0.0, &mut rng()).is_none());
        assert!(s.busy_midplanes().len() == 80);
        assert!(s.idle_midplanes().is_empty());
    }

    #[test]
    fn anchor_tables_are_valid() {
        for &size in &crate::workload::JOB_SIZES {
            let regions = anchor_preference(size);
            assert!(!regions.is_empty(), "no anchors for {size}");
            for region in &regions {
                assert!(!region.is_empty());
                for &a in region {
                    assert!(
                        u32::from(a) + size <= 80,
                        "anchor {a} overflows for size {size}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_size_placeable_on_empty_machine() {
        let s = Scheduler::new();
        let mut r = rng();
        for &size in &crate::workload::JOB_SIZES {
            let p = s.find_partition(size, ExecId(0), 0.0, &mut r);
            assert!(p.is_some(), "size {size} unplaceable on empty machine");
            assert_eq!(p.unwrap().len(), size);
        }
    }
}
