//! Workload generation: executables, users, projects, and the arrival plan.
//!
//! Calibrated to the paper's published marginals:
//!
//! * the joint (job size × runtime bucket) distribution is Table VI's job
//!   counts, so the denominators of the vulnerability matrix match by
//!   construction;
//! * 9,664 distinct executables / 68,794 jobs ⇒ a heavy-tailed submissions-
//!   per-executable law with P(resubmitted) ≈ 0.574 (5,547 / 9,664);
//! * 236 users with Zipf activity, each charged to one of 91 projects;
//! * ~1 % of executables are buggy, concentrated (Observation 12) in a small
//!   "suspicious user" population.

use crate::config::SimConfig;
use crate::faults::FaultModel;
use bgp_model::Timestamp;
use bgp_stats::sample::{categorical, lognormal, Zipf};
use joblog::{ExecId, ProjectId, UserId};
use rand::{Rng, RngExt};
use raslog::ErrCode;

/// Table VI of the paper: jobs per (size, runtime-bucket) cell. Row order is
/// [`JOB_SIZES`]; column order is the bucket order of
/// [`bgp_stats::hist::TABLE_VI_TIME_EDGES`].
pub const TABLE_VI_JOB_COUNTS: [[u32; 4]; 9] = [
    [12_282, 7_300, 17_339, 9_492], // 1 midplane
    [1_146, 2_601, 6_052, 2_112],   // 2
    [881, 901, 1_026, 2_014],       // 4
    [611, 563, 636, 748],           // 8
    [288, 685, 466, 415],           // 16
    [20, 362, 195, 79],             // 32
    [3, 1, 1, 1],                   // 48 (paper has 3/1/0/0; zeros nudged so
    //                                  every legal size stays sampleable)
    [12, 147, 143, 39], // 64
    [11, 33, 27, 2],    // 80
];

/// Legal job sizes in midplanes, parallel to [`TABLE_VI_JOB_COUNTS`] rows.
pub const JOB_SIZES: [u32; 9] = [1, 2, 4, 8, 16, 32, 48, 64, 80];

/// Runtime-bucket boundaries in seconds: bucket `i` spans
/// `[RUNTIME_EDGES[i], RUNTIME_EDGES[i+1])`; the last bucket's upper bound is
/// the practical maximum (the paper's longest job is 113.5 h).
pub const RUNTIME_EDGES: [f64; 5] = [10.0, 400.0, 1_600.0, 6_400.0, 408_600.0];

/// Relative submission intensity per hour of day (UTC): a broad working-day
/// plateau with a night trough — the classic supercomputing-center diurnal
/// curve.
pub const DIURNAL_WEIGHT: [f64; 24] = [
    0.35, 0.30, 0.25, 0.25, 0.25, 0.30, // 00–05
    0.45, 0.60, 0.80, 0.95, 1.00, 1.00, // 06–11
    0.95, 1.00, 1.00, 0.95, 0.90, 0.80, // 12–17
    0.70, 0.60, 0.55, 0.50, 0.45, 0.40, // 18–23
];

/// Everything fixed about one distinct executable.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecProfile {
    /// The executable id.
    pub exec: ExecId,
    /// Owning user.
    pub user: UserId,
    /// Charged project.
    pub project: ProjectId,
    /// Size class index into [`JOB_SIZES`].
    pub size_class: usize,
    /// Runtime bucket index (0–3).
    pub bucket: usize,
    /// Is the executable buggy (can raise application errors)?
    pub buggy: bool,
    /// Bug difficulty in \[0, 1\]: hard bugs survive more fix attempts.
    pub difficulty: f64,
    /// The application error code this executable fails with, if buggy.
    pub app_code: Option<ErrCode>,
}

impl ExecProfile {
    /// Requested midplanes.
    pub fn size(&self) -> u32 {
        JOB_SIZES[self.size_class]
    }
}

/// One planned submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Index into [`Workload::execs`].
    pub exec_idx: u32,
    /// When the submission enters the queue.
    pub queue_time: Timestamp,
}

/// The generated workload: executable population plus the arrival plan.
#[derive(Debug, Clone)]
pub struct Workload {
    /// All distinct executables.
    pub execs: Vec<ExecProfile>,
    /// Planned submissions, sorted by queue time. (Resubmissions after
    /// interruptions are generated *dynamically* by the engine on top of
    /// this plan.)
    pub arrivals: Vec<Arrival>,
}

impl Workload {
    /// Generate a workload for `cfg`.
    pub fn generate<R: Rng>(cfg: &SimConfig, faults: &FaultModel, rng: &mut R) -> Workload {
        // Flatten Table VI into sampling weights over (size, bucket) cells.
        let mut cell_weights = Vec::with_capacity(36);
        for row in TABLE_VI_JOB_COUNTS {
            for count in row {
                cell_weights.push(f64::from(count));
            }
        }

        let user_zipf = Zipf::new(cfg.num_users as usize, 0.9);
        // Each user belongs to one project; project popularity is also
        // skewed.
        let project_zipf = Zipf::new(cfg.num_projects as usize, 0.8);
        let user_project: Vec<ProjectId> = (0..cfg.num_users)
            .map(|_| ProjectId(project_zipf.sample(rng) as u32))
            .collect();

        // Decide which executables are buggy and who owns them: a share goes
        // to the suspicious-user pool, the rest anywhere.
        let n_execs = cfg.num_execs as usize;
        let n_buggy = ((n_execs as f64) * cfg.buggy_exec_fraction).round() as usize;

        let mut execs = Vec::with_capacity(n_execs);
        for i in 0..n_execs {
            let cell = categorical(rng, &cell_weights);
            let (size_class, bucket) = (cell / 4, cell % 4);
            let buggy = i < n_buggy; // ownership assigned below
            let user = if buggy && rng.random::<f64>() < cfg.suspicious_user_share {
                UserId(rng.random_range(0..cfg.num_suspicious_users))
            } else {
                UserId(user_zipf.sample(rng) as u32)
            };
            let difficulty: f64 = rng.random::<f64>();
            execs.push(ExecProfile {
                exec: ExecId(i as u32),
                user,
                project: user_project[user.0 as usize],
                size_class,
                bucket,
                buggy,
                difficulty,
                app_code: if buggy {
                    Some(faults.sample_app_code(rng))
                } else {
                    None
                },
            });
        }

        // Submissions per executable: P(n = 1) ≈ 0.426 (paper: 4,117 of
        // 9,664 submitted once); the resubmitted rest follows a log-normal
        // with mean ≈ 11.7 so the grand total lands near 68,794 at full
        // scale.
        let window = cfg.window_secs();
        let mut arrivals = Vec::new();
        for (idx, _exec) in execs.iter().enumerate() {
            let n_subs = if rng.random::<f64>() < 0.426 {
                1usize
            } else {
                lognormal(rng, 7.0f64.ln(), 1.0).round().clamp(2.0, 2_000.0) as usize
            };
            // Submissions land inside the executable's "campaign": a random
            // sub-window of the study period, thinned by the diurnal cycle
            // (users submit during the working day far more than at 4 am).
            let w_start = rng.random_range(0..window.max(1));
            let remaining = (window - w_start).max(1);
            let w_len = (bgp_stats::sample::exponential(rng, 4.0 / window as f64) as i64 + 86_400)
                .min(remaining);
            for _ in 0..n_subs {
                let mut t = w_start + rng.random_range(0..w_len.max(1));
                // Accept-reject against the hour-of-day weight; bounded
                // retries keep generation O(1) per submission.
                for _ in 0..8 {
                    let hour = ((t % 86_400) / 3_600) as usize;
                    if rng.random::<f64>() < DIURNAL_WEIGHT[hour] {
                        break;
                    }
                    t = w_start + rng.random_range(0..w_len.max(1));
                }
                arrivals.push(Arrival {
                    exec_idx: idx as u32,
                    queue_time: cfg.start + bgp_model::Duration::seconds(t),
                });
            }
        }
        arrivals.sort_by_key(|a| (a.queue_time, a.exec_idx));
        Workload { execs, arrivals }
    }

    /// Sample an intended runtime (seconds) for a submission of `exec_idx`:
    /// log-uniform within the executable's Table VI bucket. The open-ended
    /// last bucket concentrates below ~7 hours with a rare long tail out to
    /// the paper's 113.5-hour maximum (a uniform spread over the whole range
    /// would swamp the machine with multi-day jobs the real trace does not
    /// have).
    pub fn sample_runtime<R: Rng>(&self, exec_idx: u32, rng: &mut R) -> i64 {
        let bucket = self.execs[exec_idx as usize].bucket;
        let (lo, hi) = if bucket == 3 {
            if rng.random::<f64>() < 0.02 {
                (25_000.0, RUNTIME_EDGES[4])
            } else {
                (RUNTIME_EDGES[3], 25_000.0)
            }
        } else {
            (RUNTIME_EDGES[bucket], RUNTIME_EDGES[bucket + 1])
        };
        let (llo, lhi) = (lo.ln(), hi.ln());
        let r: f64 = rng.random::<f64>();
        (llo + (lhi - llo) * r).exp().round().max(1.0) as i64
    }

    /// The profile for an arrival.
    pub fn profile(&self, exec_idx: u32) -> &ExecProfile {
        &self.execs[exec_idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn workload(seed: u64) -> (SimConfig, Workload) {
        let cfg = SimConfig::intrepid_2009(seed);
        let faults = FaultModel::standard();
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = Workload::generate(&cfg, &faults, &mut rng);
        (cfg, w)
    }

    #[test]
    fn population_sizes() {
        let (cfg, w) = workload(1);
        assert_eq!(w.execs.len(), cfg.num_execs as usize);
        // Total submissions near the paper's 68,794 (within 25 %: the
        // submissions law is heavy-tailed, so individual runs wander).
        let n = w.arrivals.len() as f64;
        assert!(
            (40_000.0..110_000.0).contains(&n),
            "total submissions {n} far from calibration"
        );
        // Resubmission fraction near 0.574.
        let mut subs = std::collections::HashMap::new();
        for a in &w.arrivals {
            *subs.entry(a.exec_idx).or_insert(0usize) += 1;
        }
        let resub = subs.values().filter(|&&c| c > 1).count() as f64 / subs.len() as f64;
        assert!(
            (0.50..0.65).contains(&resub),
            "resubmitted fraction {resub}"
        );
    }

    #[test]
    fn size_distribution_tracks_table_vi() {
        let (_, w) = workload(2);
        let total: u32 = TABLE_VI_JOB_COUNTS.iter().flatten().sum();
        let narrow_expected =
            f64::from(TABLE_VI_JOB_COUNTS[0].iter().sum::<u32>()) / f64::from(total);
        let narrow = w.execs.iter().filter(|e| e.size() == 1).count() as f64 / w.execs.len() as f64;
        assert!(
            (narrow - narrow_expected).abs() < 0.05,
            "1-midplane share {narrow} vs Table VI {narrow_expected}"
        );
        // Wide executables exist but are rare.
        let wide = w.execs.iter().filter(|e| e.size() >= 32).count();
        assert!(wide > 0);
        assert!((wide as f64) < 0.05 * w.execs.len() as f64);
    }

    #[test]
    fn arrivals_sorted_and_in_window() {
        let (cfg, w) = workload(3);
        for pair in w.arrivals.windows(2) {
            assert!(pair[0].queue_time <= pair[1].queue_time);
        }
        for a in &w.arrivals {
            assert!(a.queue_time >= cfg.start);
            assert!(a.queue_time < cfg.end());
        }
    }

    #[test]
    fn buggy_execs_have_app_codes_and_suspicious_bias() {
        let (cfg, w) = workload(4);
        let buggy: Vec<&ExecProfile> = w.execs.iter().filter(|e| e.buggy).collect();
        let expected = (cfg.num_execs as f64 * cfg.buggy_exec_fraction).round() as usize;
        assert_eq!(buggy.len(), expected);
        for e in &buggy {
            assert!(e.app_code.is_some());
            assert!((0.0..=1.0).contains(&e.difficulty));
        }
        for e in w.execs.iter().filter(|e| !e.buggy) {
            assert!(e.app_code.is_none());
        }
        // A clear majority of buggy executables belong to the suspicious
        // user pool.
        let suspicious = buggy
            .iter()
            .filter(|e| e.user.0 < cfg.num_suspicious_users)
            .count() as f64;
        assert!(
            suspicious / buggy.len() as f64 > 0.4,
            "suspicious share {}",
            suspicious / buggy.len() as f64
        );
    }

    #[test]
    fn runtimes_fall_in_bucket() {
        let (_, w) = workload(5);
        let mut rng = SmallRng::seed_from_u64(99);
        for idx in 0..(w.execs.len() as u32).min(500) {
            let bucket = w.execs[idx as usize].bucket;
            for _ in 0..3 {
                let rt = w.sample_runtime(idx, &mut rng) as f64;
                assert!(
                    rt >= RUNTIME_EDGES[bucket] * 0.99 && rt <= RUNTIME_EDGES[bucket + 1] * 1.01,
                    "runtime {rt} outside bucket {bucket}"
                );
            }
        }
    }

    #[test]
    fn arrivals_follow_the_diurnal_cycle() {
        let (_, w) = workload(8);
        let mut day = 0usize; // 08:00–19:59
        let mut night = 0usize; // 00:00–05:59
        for a in &w.arrivals {
            let hour = (a.queue_time.as_unix().rem_euclid(86_400)) / 3_600;
            match hour {
                8..=19 => day += 1,
                0..=5 => night += 1,
                _ => {}
            }
        }
        // 12 daytime hours vs 6 night hours; with flat arrivals the ratio
        // would be ~2. The diurnal thinning should push it well above 3.
        let ratio = day as f64 / night.max(1) as f64;
        assert!(ratio > 3.0, "day/night arrival ratio {ratio:.2}");
    }

    #[test]
    fn projects_consistent_per_user() {
        let (_, w) = workload(6);
        let mut seen: std::collections::HashMap<UserId, ProjectId> = Default::default();
        for e in &w.execs {
            let p = seen.entry(e.user).or_insert(e.project);
            assert_eq!(*p, e.project, "user {:?} charged to two projects", e.user);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (_, w1) = workload(7);
        let (_, w2) = workload(7);
        assert_eq!(w1.execs, w2.execs);
        assert_eq!(w1.arrivals, w2.arrivals);
    }
}
