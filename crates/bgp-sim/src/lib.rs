//! # `bgp_sim` — a discrete-event simulator of the Intrepid Blue Gene/P
//!
//! The paper analyzes 237 days of real Intrepid logs; those logs are not
//! redistributable with this repository, so this crate builds the closest
//! synthetic equivalent: a discrete-event simulation of the whole machine —
//! Cobalt-like scheduling, a calibrated workload, hardware/software fault
//! processes, and CMCS-style RAS emission with realistic redundancy — that
//! produces a **paired RAS log and job log in the paper's schemas**, plus the
//! ground truth the paper could only approximate by asking administrators.
//!
//! The generative model is built so the phenomena the paper reports *emerge*
//! rather than being painted on:
//!
//! * **Job-related redundancy** emerges because the scheduler has no fault
//!   knowledge: it keeps placing queued jobs onto a midplane whose persistent
//!   fault has not been repaired, and each doomed job re-reports the same
//!   error code (Observation 3, Figure 7 category 1).
//! * **Decreasing-hazard interarrivals** (Weibull shape < 1, Tables IV/V)
//!   come from the bursty root-fault renewal process plus those chains.
//! * **The wide-job/failure-rate correlation** (Figure 4, Observation 5)
//!   comes from fault intensity coupling to wide-job occupancy, while
//!   placement policy routes wide jobs to the middle midplanes.
//! * **Early application errors** (Observation 11) come from buggy
//!   executables whose failures are drawn from a short-time distribution,
//!   and the **monotone resubmission risk** (Figure 7 category 2) from a
//!   selection effect: easy bugs get fixed, hard bugs keep coming back.
//!
//! Entry point: [`Simulation::run`], returning a [`SimOutput`] with the
//! [`raslog::RasLog`], the [`joblog::JobLog`], and the [`truth::GroundTruth`].
//!
//! ```
//! use bgp_sim::{SimConfig, Simulation};
//!
//! let cfg = SimConfig::small_test(42);
//! let out = Simulation::new(cfg).expect("valid config").run();
//! assert!(out.jobs.len() > 100);
//! assert!(out.ras.fatal().count() > 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is the NaN-rejecting validation idiom (true for NaN where
// `x <= 0.0` is not).
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod config;
pub mod emission;
pub mod engine;
pub mod error;
pub mod faults;
pub mod scheduler;
pub mod truth;
pub mod workload;

pub use config::SimConfig;
pub use engine::{SimOutput, Simulation};
pub use error::SimError;
pub use truth::{FaultId, FaultNature, GroundTruth, TrueFault};
