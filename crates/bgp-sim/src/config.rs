//! Simulation configuration and the calibrated presets.

use bgp_model::Timestamp;

/// All knobs of the simulator.
///
/// The defaults (via [`SimConfig::intrepid_2009`]) are calibrated so the
/// co-analysis pipeline reproduces the *shape* of the paper's published
/// aggregates on the full 237-day window; see `DESIGN.md` §4 for the target
/// list. [`SimConfig::small_test`] is the same model at ~1/20 duration for
/// fast tests.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Master seed; every random stream in the run derives from it.
    pub seed: u64,
    /// Simulation start (the paper's window starts 2009-01-05).
    pub start: Timestamp,
    /// Days to simulate (the paper's window is 237 days).
    pub days: u32,

    // ---- workload ----
    /// Distinct executables over the whole window (paper: 9,664 over 237 d).
    pub num_execs: u32,
    /// Users (paper: 236).
    pub num_users: u32,
    /// Projects (paper: 91).
    pub num_projects: u32,
    /// Fraction of executables that are buggy (drive application errors).
    pub buggy_exec_fraction: f64,
    /// Probability a run of a (still-)buggy executable actually fails.
    pub buggy_run_fail_prob: f64,
    /// Fraction of buggy executables concentrated in the small "suspicious
    /// user" population (Observation 12).
    pub suspicious_user_share: f64,
    /// Number of "suspicious" users (paper: 16).
    pub num_suspicious_users: u32,

    // ---- scheduling ----
    /// Probability a resubmitted job is placed on its previous partition when
    /// that partition is free (paper: 57.4 % observed).
    pub same_partition_prob: f64,
    /// Probability the user resubmits after an interruption.
    pub resubmit_prob: f64,
    /// Mean delay before a resubmission enters the queue, seconds.
    pub resubmit_delay_mean_secs: f64,

    // ---- fault processes ----
    /// Mean interarrival of root system faults, seconds (Weibull renewal).
    pub system_fault_mean_interarrival_secs: f64,
    /// Weibull shape of the root fault renewal process (< 1 ⇒ bursty).
    pub system_fault_shape: f64,
    /// Probability a root system fault targets idle hardware (drained or
    /// simply unoccupied midplanes) — drives Observation 7's 45 %.
    pub idle_fault_fraction: f64,
    /// Probability a root system fault is *stress-induced*: its location is
    /// drawn in proportion to accumulated wide-job occupancy regardless of
    /// current business — the generative mechanism behind Observation 5.
    pub stress_fault_fraction: f64,
    /// Probability a busy-location system fault is persistent (leaves the
    /// midplane broken until repair).
    pub persistent_fault_prob: f64,
    /// Median repair time for persistent faults, seconds.
    pub repair_median_secs: f64,
    /// Log-normal sigma of repair times.
    pub repair_sigma: f64,
    /// Mean interarrival of transient FATAL alarms (`BULK_POWER_FATAL` etc.).
    pub transient_mean_interarrival_secs: f64,
    /// Mean delay from placing a job on broken hardware to its interruption.
    pub broken_exposure_mean_secs: f64,
    /// Median time-to-failure of a buggy run, seconds (log-normal; most
    /// application errors surface within the first hour — Observation 11).
    pub app_fail_median_secs: f64,
    /// Log-normal sigma of buggy-run failure times.
    pub app_fail_sigma: f64,
    /// Probability an fs-wide application error (CiodHungProxy /
    /// bg_code_script_error) also interrupts each co-running job it can
    /// propagate to (capped at 2 extra victims).
    pub fs_propagation_prob: f64,

    // ---- maintenance ----
    /// Length of the weekly maintenance window, seconds (0 disables).
    pub maintenance_secs: i64,

    // ---- what-if levers (Section VII of the paper) ----
    /// Fault-aware scheduling: the scheduler subscribes to failure
    /// information (the paper's CiFTS/FTB recommendation) and refuses to
    /// place jobs on midplanes with an unrepaired persistent fault. Off by
    /// default — the real Intrepid scheduler had no such feed, and the
    /// job-related redundancy the paper measures depends on that.
    pub fault_aware_scheduler: bool,

    // ---- RAS emission ----
    /// Scale factor on background (non-FATAL) record volume. 1.0 ≈ the
    /// paper's ~2 M records over 237 days; tests use much less.
    pub noise_scale: f64,
    /// Mean number of temporal duplicate records per true event.
    pub storm_temporal_mean: f64,
    /// Mean number of distinct node-level locations reporting per true event.
    pub storm_spatial_mean: f64,
    /// Mean number of precursor WARNING records (correctable ECC, single
    /// symbol) emitted at the fault's midplane in the hours before a
    /// persistent hardware fault — degrading DRAM corrects a lot before it
    /// kills. 0 disables precursors.
    pub precursor_mean_count: f64,
}

impl SimConfig {
    /// The full-scale calibrated preset: 237 days of Intrepid starting
    /// 2009-01-05, matching the paper's Table I population sizes.
    pub fn intrepid_2009(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            start: Timestamp::from_civil(2009, 1, 5, 0, 0, 0),
            days: 237,
            num_execs: 9_664,
            num_users: 236,
            num_projects: 91,
            buggy_exec_fraction: 0.0065,
            buggy_run_fail_prob: 0.6,
            suspicious_user_share: 0.6,
            num_suspicious_users: 16,
            same_partition_prob: 0.574,
            resubmit_prob: 0.8,
            resubmit_delay_mean_secs: 900.0,
            system_fault_mean_interarrival_secs: 70_000.0, // ≈ 292 roots / 237 d
            system_fault_shape: 0.45,
            idle_fault_fraction: 0.78,
            stress_fault_fraction: 0.65,
            persistent_fault_prob: 0.45,
            repair_median_secs: 2.0 * 3600.0,
            repair_sigma: 0.9,
            transient_mean_interarrival_secs: 100_000.0, // ≈ 205 / 237 d
            broken_exposure_mean_secs: 600.0,
            app_fail_median_secs: 900.0,
            app_fail_sigma: 1.2,
            fs_propagation_prob: 0.5,
            maintenance_secs: 8 * 3600,
            fault_aware_scheduler: false,
            noise_scale: 1.0,
            storm_temporal_mean: 6.0,
            storm_spatial_mean: 7.0,
            precursor_mean_count: 25.0,
        }
    }

    /// A fast preset for unit/integration tests: 12 days, proportionally
    /// fewer executables, background noise dialed down 100×.
    pub fn small_test(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::intrepid_2009(seed);
        cfg.days = 12;
        cfg.num_execs = 500;
        cfg.noise_scale = 0.01;
        // Keep fault counts usable in a short window.
        cfg.system_fault_mean_interarrival_secs = 20_000.0;
        cfg.transient_mean_interarrival_secs = 60_000.0;
        cfg
    }

    /// End of the simulated window.
    pub fn end(&self) -> Timestamp {
        self.start + bgp_model::Duration::days(i64::from(self.days))
    }

    /// Total window length in seconds.
    pub fn window_secs(&self) -> i64 {
        i64::from(self.days) * 86_400
    }

    /// Validate parameter sanity (probabilities in range, positive scales).
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("buggy_exec_fraction", self.buggy_exec_fraction),
            ("buggy_run_fail_prob", self.buggy_run_fail_prob),
            ("suspicious_user_share", self.suspicious_user_share),
            ("same_partition_prob", self.same_partition_prob),
            ("resubmit_prob", self.resubmit_prob),
            ("idle_fault_fraction", self.idle_fault_fraction),
            ("stress_fault_fraction", self.stress_fault_fraction),
            ("persistent_fault_prob", self.persistent_fault_prob),
            ("fs_propagation_prob", self.fs_propagation_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} not in [0, 1]"));
            }
        }
        let positives = [
            ("days", f64::from(self.days)),
            ("num_execs", f64::from(self.num_execs)),
            ("num_users", f64::from(self.num_users)),
            ("num_projects", f64::from(self.num_projects)),
            (
                "system_fault_mean_interarrival_secs",
                self.system_fault_mean_interarrival_secs,
            ),
            ("system_fault_shape", self.system_fault_shape),
            ("repair_median_secs", self.repair_median_secs),
            (
                "transient_mean_interarrival_secs",
                self.transient_mean_interarrival_secs,
            ),
            ("broken_exposure_mean_secs", self.broken_exposure_mean_secs),
            ("app_fail_median_secs", self.app_fail_median_secs),
            ("storm_temporal_mean", self.storm_temporal_mean),
            ("storm_spatial_mean", self.storm_spatial_mean),
        ];
        for (name, v) in positives {
            if !(v > 0.0) {
                return Err(format!("{name} = {v} must be > 0"));
            }
        }
        if self.noise_scale < 0.0 {
            return Err(format!("noise_scale = {} must be >= 0", self.noise_scale));
        }
        if self.precursor_mean_count < 0.0 {
            return Err(format!(
                "precursor_mean_count = {} must be >= 0",
                self.precursor_mean_count
            ));
        }
        if self.num_suspicious_users > self.num_users {
            return Err("num_suspicious_users exceeds num_users".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::intrepid_2009(1).validate().unwrap();
        SimConfig::small_test(1).validate().unwrap();
    }

    #[test]
    fn full_preset_matches_paper_populations() {
        let cfg = SimConfig::intrepid_2009(1);
        assert_eq!(cfg.days, 237);
        assert_eq!(cfg.num_execs, 9_664);
        assert_eq!(cfg.num_users, 236);
        assert_eq!(cfg.num_projects, 91);
        assert_eq!(cfg.start.to_string(), "2009-01-05-00.00.00");
        assert_eq!(cfg.end().to_string(), "2009-08-30-00.00.00");
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut cfg = SimConfig::small_test(1);
        cfg.resubmit_prob = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::small_test(1);
        cfg.repair_median_secs = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::small_test(1);
        cfg.noise_scale = -1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::small_test(1);
        cfg.num_suspicious_users = 9999;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn window_arithmetic() {
        let cfg = SimConfig::small_test(1);
        assert_eq!(cfg.window_secs(), 12 * 86_400);
        assert_eq!((cfg.end() - cfg.start).as_secs(), cfg.window_secs());
    }
}
