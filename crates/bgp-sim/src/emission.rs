//! RAS emission: turning true events into realistic record storms, plus the
//! background (non-FATAL) record volume.
//!
//! Real CMCS logs are massively redundant — the paper compresses 33,370
//! FATAL records into 549 events (98.35 %). The redundancy has three shapes,
//! all reproduced here:
//!
//! * **temporal**: the same condition re-reported from the same place every
//!   few seconds until the condition clears;
//! * **spatial**: a parallel job's interrupt is reported from *every*
//!   midplane of its partition, and node-level faults from several node
//!   cards;
//! * **causal**: companion error codes fired by the same root cause within
//!   seconds (a different ERRCODE, so temporal-spatial filtering cannot
//!   merge them — the paper needs causality-related filtering \[7\]).

use crate::faults::FaultModel;
use bgp_model::{ComputeNodeId, Location, MidplaneId, NodeCardId, Partition, Timestamp};
use bgp_stats::sample::{exponential, poisson};
use rand::{Rng, RngExt};
use raslog::{Catalog, Component, ErrCode, RasRecord};

/// Storm-shape parameters (taken from [`crate::SimConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct StormShape {
    /// Mean temporal duplicates per true event.
    pub temporal_mean: f64,
    /// Mean distinct reporting locations per true event.
    pub spatial_mean: f64,
}

/// Pick a plausible detailed location for a record of `code` within
/// midplane `m`: node-level for kernel codes, card-level for card codes,
/// I/O-node-level for CIOD codes, etc.
pub fn detail_location<R: Rng>(rng: &mut R, m: MidplaneId, code: ErrCode) -> Location {
    let info = Catalog::standard().info(code);
    match info.component {
        Component::Card => match info.subcomponent {
            "PALOMINO_B" => Location::BulkPower(m.rack()),
            "PALOMINO_L" => Location::LinkCard {
                midplane: m,
                index: rng.random_range(0..4),
            },
            "PALOMINO_N" => {
                let card = NodeCardId::new_wrapping(m, rng.random_range(0..16));
                Location::NodeCard(card)
            }
            _ => Location::ServiceCard(m),
        },
        Component::Kernel if info.subcomponent == "CIOD" => Location::IoNode {
            midplane: m,
            index: rng.random_range(0..8),
        },
        Component::Kernel | Component::Diags => {
            let card = NodeCardId::new_wrapping(m, rng.random_range(0..16));
            let node = ComputeNodeId::new_wrapping(card, rng.random_range(0..32));
            Location::ComputeNode(node)
        }
        // Control-system codes report at midplane granularity.
        _ => Location::Midplane(m),
    }
}

/// Emit the storm of records for one true event.
///
/// `partition` is the interrupted job's allocation, if any: each of its
/// midplanes re-reports the event (parallel-job fan-out). Records are pushed
/// with `recid = 0`; the engine assigns final RECIDs after the global sort.
#[allow(clippy::too_many_arguments)] // a storm genuinely has this many axes
pub fn emit_storm<R: Rng>(
    out: &mut Vec<RasRecord>,
    rng: &mut R,
    shape: StormShape,
    faults: &FaultModel,
    time: Timestamp,
    code: ErrCode,
    epicenter: MidplaneId,
    partition: Option<Partition>,
) {
    emit_code_storm(out, rng, shape, time, code, epicenter, partition);
    // Link cards carry the inter-midplane torus cabling: a failing link is
    // seen from both ends, so a torus neighbour logs a few (non-FATAL)
    // CRC-retry records too.
    if Catalog::standard().info(code).subcomponent == "PALOMINO_L" {
        let neighbors = bgp_model::torus::midplane_neighbors(epicenter);
        let echo = Catalog::standard().lookup("_bgp_err_link_crc_retry");
        if let (false, Some(echo)) = (neighbors.is_empty(), echo) {
            let other = neighbors[rng.random_range(0..neighbors.len())];
            let reduced = StormShape {
                temporal_mean: 2.0,
                spatial_mean: 1.0,
            };
            let lag = bgp_model::Duration::seconds(rng.random_range(2..20));
            emit_code_storm(out, rng, reduced, time + lag, echo, other, None);
        }
    }
    // Causal companions: a reduced storm of each companion code at the same
    // epicenter, a few seconds later.
    if let Some(companions) = faults.companions.get(&code) {
        let reduced = StormShape {
            temporal_mean: (shape.temporal_mean / 2.0).max(1.0),
            spatial_mean: (shape.spatial_mean / 2.0).max(1.0),
        };
        for &companion in companions {
            let lag = bgp_model::Duration::seconds(rng.random_range(1..30));
            emit_code_storm(out, rng, reduced, time + lag, companion, epicenter, None);
        }
    }
}

/// The single-code part of a storm.
fn emit_code_storm<R: Rng>(
    out: &mut Vec<RasRecord>,
    rng: &mut R,
    shape: StormShape,
    time: Timestamp,
    code: ErrCode,
    epicenter: MidplaneId,
    partition: Option<Partition>,
) {
    // Reporting locations: detail locations inside the epicenter midplane...
    let n_loc = (1 + poisson(rng, (shape.spatial_mean - 1.0).max(0.0)) as usize).min(16);
    let mut locations: Vec<Location> = (0..n_loc)
        .map(|_| detail_location(rng, epicenter, code))
        .collect();
    // ...plus one report from every midplane of the interrupted partition
    // (capped: even an 80-midplane job doesn't report from everywhere).
    if let Some(p) = partition {
        for m in p.midplanes().take(32) {
            if m != epicenter {
                locations.push(detail_location(rng, m, code));
            }
        }
    }
    for loc in locations {
        // Temporal repeats at this location, spread over ~a minute so a
        // sensible temporal-filter threshold collapses them.
        let n_t = (1 + poisson(rng, (shape.temporal_mean - 1.0).max(0.0)) as usize).min(60);
        let mut t = time;
        for _ in 0..n_t {
            out.push(RasRecord::new(0, t, loc, code));
            t += bgp_model::Duration::seconds(1 + exponential(rng, 1.0 / 12.0) as i64);
        }
    }
}

/// Emit the precursor signature of a failing hardware component: a burst of
/// correctable-ECC / single-symbol WARNING records at the midplane over the
/// hours before the fatal fault. Timestamps are *before* `fault_time` —
/// records are globally sorted after the run, so retroactive emission is
/// fine.
pub fn emit_precursors<R: Rng>(
    out: &mut Vec<RasRecord>,
    rng: &mut R,
    fault_time: Timestamp,
    midplane: MidplaneId,
    mean_count: f64,
) {
    if mean_count <= 0.0 {
        return;
    }
    let cat = Catalog::standard();
    let (Some(ecc), Some(symbol)) = (
        cat.lookup("_bgp_warn_ecc_corrected"),
        cat.lookup("_bgp_warn_single_symbol_error"),
    ) else {
        return; // catalog consistency is enforced by the errcode-catalog lint
    };
    let codes = [ecc, symbol];
    let n = (1 + poisson(rng, (mean_count - 1.0).max(0.0))) as usize;
    // Correctable-error rate accelerates toward the failure: draw lead
    // times from an exponential so most precursors crowd the final hour,
    // with a tail reaching back ~6 hours.
    for _ in 0..n.min(200) {
        let lead = 60.0 + exponential(rng, 1.0 / 4_000.0);
        let t = fault_time - bgp_model::Duration::seconds(lead.min(6.0 * 3600.0) as i64);
        let code = codes[rng.random_range(0..codes.len())];
        out.push(RasRecord::new(
            0,
            t,
            detail_location(rng, midplane, code),
            code,
        ));
    }
}

/// Generate the background record volume for the whole run: partition-boot
/// INFO records for every job start ("reboot before execution") and a
/// Poisson stream of warnings/infos across the machine.
///
/// `job_boots` is `(start_time, partition)` per job. `window` is the whole
/// simulated interval. At `noise_scale = 1.0` this produces on the order of
/// the paper's two million records over 237 days.
pub fn emit_background<R: Rng>(
    out: &mut Vec<RasRecord>,
    rng: &mut R,
    job_boots: &[(Timestamp, Partition)],
    window: (Timestamp, Timestamp),
    noise_scale: f64,
) {
    let cat = Catalog::standard();
    let (Some(boot_code), Some(progress_code)) = (
        cat.lookup("_bgp_info_partition_boot"),
        cat.lookup("_bgp_info_boot_progress"),
    ) else {
        return; // catalog consistency is enforced by the errcode-catalog lint
    };
    // Reboot-before-execution: every midplane of the partition boots and
    // reports, shortly before the job's start.
    for &(start, partition) in job_boots {
        for m in partition.midplanes() {
            let lead = rng.random_range(5..90);
            out.push(RasRecord::new(
                0,
                start - bgp_model::Duration::seconds(lead),
                Location::Midplane(m),
                boot_code,
            ));
            out.push(RasRecord::new(
                0,
                start - bgp_model::Duration::seconds(lead / 2),
                detail_location(rng, m, progress_code),
                progress_code,
            ));
        }
    }
    // Ambient noise: correctable ECC, environmental polls, fan warnings...
    // Names zip with their weights so a missing catalog entry (impossible —
    // the errcode-catalog lint checks these literals) drops the pair, never
    // desynchronising code from weight.
    let named_weights = [
        ("_bgp_warn_ecc_corrected", 30.0),
        ("_bgp_warn_single_symbol_error", 12.0),
        ("_bgp_warn_torus_retransmit", 10.0),
        ("_bgp_warn_temp_high", 3.0),
        ("_bgp_err_redundant_psu_loss", 0.5),
        ("_bgp_err_link_crc_retry", 4.0),
        ("_bgp_err_io_retry_exhausted", 1.0),
        ("_bgp_warn_fan_speed", 2.0),
        ("_bgp_info_env_poll", 8.0),
        ("_bgp_err_spare_bit_steer", 0.5),
        ("_bgp_info_recovery_progress", 1.0),
        ("_bgp_info_job_start", 6.0),
    ];
    let (ambient, weights): (Vec<ErrCode>, Vec<f64>) = named_weights
        .iter()
        .filter_map(|&(n, w)| cat.lookup(n).map(|c| (c, w)))
        .unzip();
    if ambient.is_empty() {
        return;
    }
    // Full scale ≈ 1.6 M ambient records over the paper's 237-day window.
    let secs = (window.1 - window.0).as_secs().max(1);
    let rate = 0.08 * noise_scale;
    let mut t = window.0;
    loop {
        t += bgp_model::Duration::seconds((exponential(rng, rate) as i64).max(1));
        if t >= window.1 {
            break;
        }
        let code = ambient[bgp_stats::sample::categorical(rng, &weights)];
        let m = MidplaneId::from_index_wrapping(rng.random_range(0..80));
        out.push(RasRecord::new(0, t, detail_location(rng, m, code), code));
    }
    let _ = secs;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mp(s: &str) -> MidplaneId {
        s.parse().unwrap()
    }

    fn shape() -> StormShape {
        StormShape {
            temporal_mean: 7.0,
            spatial_mean: 8.0,
        }
    }

    #[test]
    fn storm_has_redundancy() {
        let mut rng = SmallRng::seed_from_u64(1);
        let faults = FaultModel::standard();
        let code = Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap();
        let mut out = Vec::new();
        emit_storm(
            &mut out,
            &mut rng,
            shape(),
            &faults,
            Timestamp::from_unix(10_000),
            code,
            mp("R10-M0"),
            None,
        );
        assert!(out.len() > 10, "storm too small: {}", out.len());
        // All records near the event time, at the epicenter midplane.
        for r in &out {
            assert!(r.event_time >= Timestamp::from_unix(10_000));
            assert!(r.event_time < Timestamp::from_unix(10_000 + 3600));
            assert_eq!(r.location.midplane(), Some(mp("R10-M0")));
        }
    }

    #[test]
    fn interrupted_partition_fans_out() {
        let mut rng = SmallRng::seed_from_u64(2);
        let faults = FaultModel::standard();
        let code = Catalog::standard()
            .lookup("_bgp_err_ddr_controller")
            .unwrap();
        let p = Partition::contiguous(32, 8).unwrap();
        let mut out = Vec::new();
        emit_storm(
            &mut out,
            &mut rng,
            shape(),
            &faults,
            Timestamp::from_unix(0),
            code,
            mp("R16-M0"), // index 32
            Some(p),
        );
        let midplanes: std::collections::HashSet<_> = out
            .iter()
            .filter(|r| r.errcode == code)
            .filter_map(|r| r.location.midplane())
            .collect();
        assert!(
            midplanes.len() >= 8,
            "expected fan-out across the partition, got {}",
            midplanes.len()
        );
    }

    #[test]
    fn companions_emitted_for_mapped_codes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let faults = FaultModel::standard();
        let cat = Catalog::standard();
        let l1 = cat.lookup("_bgp_err_cns_ras_storm_fatal").unwrap();
        let panic = cat.lookup("_bgp_err_kernel_panic").unwrap();
        let mut out = Vec::new();
        emit_storm(
            &mut out,
            &mut rng,
            shape(),
            &faults,
            Timestamp::from_unix(0),
            l1,
            mp("R00-M0"),
            None,
        );
        assert!(out.iter().any(|r| r.errcode == panic), "companion missing");
        assert!(out.iter().any(|r| r.errcode == l1));
    }

    #[test]
    fn link_card_faults_echo_on_a_torus_neighbor() {
        let mut rng = SmallRng::seed_from_u64(8);
        let faults = FaultModel::standard();
        let cat = Catalog::standard();
        let link = cat.lookup("_bgp_err_linkcard_failure").unwrap();
        let crc = cat.lookup("_bgp_err_link_crc_retry").unwrap();
        let epicenter = mp("R10-M0");
        let mut out = Vec::new();
        emit_storm(
            &mut out,
            &mut rng,
            shape(),
            &faults,
            Timestamp::from_unix(0),
            link,
            epicenter,
            None,
        );
        let echo: Vec<_> = out.iter().filter(|r| r.errcode == crc).collect();
        assert!(!echo.is_empty(), "no neighbour echo");
        // The echo is non-FATAL and lands on a torus neighbour, not the
        // epicenter.
        let neighbors = bgp_model::torus::midplane_neighbors(epicenter);
        for r in echo {
            assert!(!r.is_fatal());
            let m = r.location.midplane().unwrap();
            assert!(neighbors.contains(&m), "echo at non-neighbour {m}");
        }
    }

    #[test]
    fn detail_locations_match_component() {
        let mut rng = SmallRng::seed_from_u64(4);
        let cat = Catalog::standard();
        let m = mp("R05-M1");
        // Card / bulk power codes land on card locations.
        let bulk = cat.lookup("BULK_POWER_FATAL").unwrap();
        assert!(matches!(
            detail_location(&mut rng, m, bulk),
            Location::BulkPower(_)
        ));
        let link = cat.lookup("_bgp_err_linkcard_failure").unwrap();
        assert!(matches!(
            detail_location(&mut rng, m, link),
            Location::LinkCard { .. }
        ));
        // CIOD codes land on I/O nodes.
        let ciod = cat.lookup("CiodHungProxy").unwrap();
        assert!(matches!(
            detail_location(&mut rng, m, ciod),
            Location::IoNode { .. }
        ));
        // Kernel codes land on compute nodes.
        let panic = cat.lookup("_bgp_err_kernel_panic").unwrap();
        assert!(matches!(
            detail_location(&mut rng, m, panic),
            Location::ComputeNode(_)
        ));
        // Control system codes at midplane granularity.
        let mmcs = cat.lookup("_bgp_err_mmcs_boot_failure").unwrap();
        assert!(matches!(
            detail_location(&mut rng, m, mmcs),
            Location::Midplane(_)
        ));
        // All detail locations stay within the midplane (or its rack).
        for code in cat.codes() {
            let loc = detail_location(&mut rng, m, code);
            assert_eq!(loc.rack(), m.rack());
        }
    }

    #[test]
    fn background_volume_scales() {
        let mut rng = SmallRng::seed_from_u64(5);
        let window = (Timestamp::from_unix(0), Timestamp::from_unix(200_000));
        let boots = vec![(
            Timestamp::from_unix(1_000),
            Partition::contiguous(0, 4).unwrap(),
        )];
        let mut small = Vec::new();
        emit_background(&mut small, &mut rng, &boots, window, 0.01);
        let mut big = Vec::new();
        emit_background(&mut big, &mut rng, &boots, window, 0.5);
        assert!(big.len() > small.len() * 5);
        // Boot records present regardless of scale: 2 per midplane.
        let boot_code = Catalog::standard()
            .lookup("_bgp_info_partition_boot")
            .unwrap();
        assert_eq!(small.iter().filter(|r| r.errcode == boot_code).count(), 4);
        // Nothing fatal in the background.
        assert!(small.iter().all(|r| !r.is_fatal()));
        assert!(big.iter().all(|r| !r.is_fatal()));
    }
}
