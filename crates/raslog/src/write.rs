//! Serializing records to the pipe-separated log format.
//!
//! The on-disk format mirrors the fields of the paper's Table II, one record
//! per line:
//!
//! ```text
//! RECID|MSG_ID|COMPONENT|SUBCOMPONENT|ERRCODE|SEVERITY|EVENT_TIME|LOCATION|MESSAGE
//! ```

use crate::catalog::Catalog;
use crate::record::RasRecord;
use std::io::{self, Write};

/// Format a single record as a log line (no trailing newline).
pub fn format_record(r: &RasRecord) -> String {
    let info = Catalog::standard().info(r.errcode);
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}",
        r.recid,
        info.msg_id,
        info.component,
        info.subcomponent,
        info.name,
        r.severity,
        r.event_time,
        r.location,
        info.template,
    )
}

/// Write records to `w`, one line each.
pub fn write_log<'a, W: Write, I: IntoIterator<Item = &'a RasRecord>>(
    w: &mut W,
    records: I,
) -> io::Result<()> {
    for r in records {
        writeln!(w, "{}", format_record(r))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use bgp_model::Timestamp;

    #[test]
    fn formats_all_nine_fields() {
        let code = Catalog::standard()
            .lookup("DetectedClockCardErrors")
            .unwrap();
        let r = RasRecord::new(
            13_718_190,
            Timestamp::from_civil(2008, 4, 14, 15, 8, 12),
            "R-04-M0-S".parse().unwrap(),
            code,
        );
        let line = format_record(&r);
        // Walk the line with the shared `find_byte` scanner — the same
        // splitter `parse_line_bytes` uses — instead of materializing a
        // `Vec<&str>` via `split('|').collect()`.
        let mut fields: [&str; 9] = [""; 9];
        let mut count = 0usize;
        let mut rest = line.as_str();
        while count < 9 {
            match bgp_model::bytes::find_byte(b'|', rest.as_bytes()) {
                Some(i) if count < 8 => {
                    fields[count] = &rest[..i];
                    rest = &rest[i + 1..];
                }
                _ => {
                    fields[count] = rest;
                    count += 1;
                    break;
                }
            }
            count += 1;
        }
        assert_eq!(count, 9);
        assert_eq!(fields[0], "13718190");
        assert_eq!(fields[2], "CARD");
        assert_eq!(fields[3], "PALOMINO_S");
        assert_eq!(fields[4], "DetectedClockCardErrors");
        assert_eq!(fields[5], "FATAL");
        assert_eq!(fields[6], "2008-04-14-15.08.12");
        assert_eq!(fields[7], "R04-M0-S");
        assert!(fields[8].contains("Clock card"));
    }

    #[test]
    fn write_log_emits_one_line_per_record() {
        let code = Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap();
        let records: Vec<RasRecord> = (0..3)
            .map(|i| {
                RasRecord::new(
                    i,
                    Timestamp::from_unix(i as i64),
                    "R00-M0".parse().unwrap(),
                    code,
                )
            })
            .collect();
        let mut buf = Vec::new();
        write_log(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
    }
}
