//! The indexed in-memory RAS log container.

use crate::catalog::ErrCode;
use crate::record::RasRecord;
use crate::severity::Severity;
use bgp_model::{topology, MidplaneId, Timestamp};
use std::collections::HashMap;

/// An immutable, time-sorted RAS log with a per-midplane index.
///
/// Sorted order is `(event_time, recid)`. The per-midplane posting lists map
/// each (populated) midplane to the indices of records whose location touches
/// it; rack-scoped records (bulk power, clock card) are posted under both
/// midplanes of their rack. Posting lists inherit the global time order, so
/// both global and per-midplane window queries are binary searches.
#[derive(Debug, Clone, Default)]
pub struct RasLog {
    records: Vec<RasRecord>,
    by_midplane: Vec<Vec<u32>>,
}

impl RasLog {
    /// Build a log from records (any order; they will be sorted).
    pub fn from_records(mut records: Vec<RasRecord>) -> RasLog {
        records.sort_by_key(|r| (r.event_time, r.recid));
        let mut by_midplane = vec![Vec::new(); usize::from(topology::NUM_MIDPLANES)];
        for (i, r) in records.iter().enumerate() {
            for m in r.location.touched_midplanes() {
                by_midplane[m.index()].push(i as u32);
            }
        }
        RasLog {
            records,
            by_midplane,
        }
    }

    /// All records in time order.
    pub fn records(&self) -> &[RasRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// First and last event times, if non-empty.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        Some((
            self.records.first()?.event_time,
            self.records.last()?.event_time,
        ))
    }

    /// Records with the given severity.
    pub fn with_severity(&self, s: Severity) -> impl Iterator<Item = &RasRecord> {
        self.records.iter().filter(move |r| r.severity == s)
    }

    /// FATAL-severity records (the co-analysis input).
    pub fn fatal(&self) -> impl Iterator<Item = &RasRecord> {
        self.with_severity(Severity::Fatal)
    }

    /// A new log containing only the FATAL records.
    pub fn fatal_only(&self) -> RasLog {
        RasLog::from_records(self.fatal().copied().collect())
    }

    /// Records with `t0 <= event_time < t1`, as a slice (global time order).
    pub fn in_window(&self, t0: Timestamp, t1: Timestamp) -> &[RasRecord] {
        let lo = self.records.partition_point(|r| r.event_time < t0);
        let hi = self.records.partition_point(|r| r.event_time < t1);
        &self.records[lo..hi]
    }

    /// Records touching midplane `m`, in time order.
    pub fn at_midplane(&self, m: MidplaneId) -> impl Iterator<Item = &RasRecord> {
        self.by_midplane[m.index()]
            .iter()
            .map(move |&i| &self.records[i as usize])
    }

    /// Records touching midplane `m` with `t0 <= event_time < t1`.
    pub fn at_midplane_in_window(
        &self,
        m: MidplaneId,
        t0: Timestamp,
        t1: Timestamp,
    ) -> impl Iterator<Item = &RasRecord> {
        let posting = &self.by_midplane[m.index()];
        let lo = posting.partition_point(|&i| self.records[i as usize].event_time < t0);
        let hi = posting.partition_point(|&i| self.records[i as usize].event_time < t1);
        posting[lo..hi]
            .iter()
            .map(move |&i| &self.records[i as usize])
    }

    /// Count of records per error code.
    pub fn count_by_errcode(&self) -> HashMap<ErrCode, usize> {
        let mut out = HashMap::new();
        for r in &self.records {
            *out.entry(r.errcode).or_insert(0) += 1;
        }
        out
    }

    /// Number of distinct FATAL error codes present.
    pub fn distinct_fatal_codes(&self) -> usize {
        let mut codes: Vec<ErrCode> = self.fatal().map(|r| r.errcode).collect();
        codes.sort_unstable();
        codes.dedup();
        codes.len()
    }

    /// A new log with only the records satisfying `pred`.
    pub fn filtered<F: FnMut(&RasRecord) -> bool>(&self, mut pred: F) -> RasLog {
        RasLog::from_records(self.records.iter().filter(|r| pred(r)).copied().collect())
    }

    /// Interarrival times (seconds, as f64) of successive records, skipping
    /// non-positive gaps (simultaneous records).
    ///
    /// This is the sample the paper fits Weibull/exponential models to
    /// (Section V-A).
    pub fn interarrival_secs(&self) -> Vec<f64> {
        self.records
            .windows(2)
            .map(|w| (w[1].event_time - w[0].event_time).as_secs() as f64)
            .filter(|&dt| dt > 0.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use bgp_model::Location;

    fn code(name: &str) -> ErrCode {
        Catalog::standard().lookup(name).unwrap()
    }

    fn rec(recid: u64, t: i64, loc: &str, name: &str) -> RasRecord {
        RasRecord::new(
            recid,
            Timestamp::from_unix(t),
            loc.parse::<Location>().unwrap(),
            code(name),
        )
    }

    fn sample_log() -> RasLog {
        RasLog::from_records(vec![
            rec(3, 300, "R00-M0-N01-J05", "_bgp_err_kernel_panic"),
            rec(1, 100, "R00-M0", "_bgp_err_ddr_controller"),
            rec(2, 200, "R00-B", "BULK_POWER_FATAL"),
            rec(4, 400, "R01-M1", "_bgp_warn_ecc_corrected"),
            rec(5, 500, "R00-M1", "_bgp_err_kernel_panic"),
        ])
    }

    #[test]
    fn sorted_by_time() {
        let log = sample_log();
        let times: Vec<i64> = log
            .records()
            .iter()
            .map(|r| r.event_time.as_unix())
            .collect();
        assert_eq!(times, vec![100, 200, 300, 400, 500]);
        assert_eq!(
            log.time_span(),
            Some((Timestamp::from_unix(100), Timestamp::from_unix(500)))
        );
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
        assert!(RasLog::default().is_empty());
        assert_eq!(RasLog::default().time_span(), None);
    }

    #[test]
    fn window_queries() {
        let log = sample_log();
        assert_eq!(
            log.in_window(Timestamp::from_unix(150), Timestamp::from_unix(400))
                .len(),
            2
        );
        // Half-open: excludes t1.
        assert_eq!(
            log.in_window(Timestamp::from_unix(100), Timestamp::from_unix(100))
                .len(),
            0
        );
        assert_eq!(
            log.in_window(Timestamp::from_unix(0), Timestamp::from_unix(1000))
                .len(),
            5
        );
    }

    #[test]
    fn midplane_index_includes_rack_scoped() {
        let log = sample_log();
        let m0: MidplaneId = "R00-M0".parse().unwrap();
        let m1: MidplaneId = "R00-M1".parse().unwrap();
        // R00-M0 sees: midplane record, node record, and the rack-scoped bulk
        // power record.
        let at_m0: Vec<u64> = log.at_midplane(m0).map(|r| r.recid).collect();
        assert_eq!(at_m0, vec![1, 2, 3]);
        // R00-M1 sees the bulk power record and its own kernel panic.
        let at_m1: Vec<u64> = log.at_midplane(m1).map(|r| r.recid).collect();
        assert_eq!(at_m1, vec![2, 5]);
    }

    #[test]
    fn midplane_window_query() {
        let log = sample_log();
        let m0: MidplaneId = "R00-M0".parse().unwrap();
        let hits: Vec<u64> = log
            .at_midplane_in_window(m0, Timestamp::from_unix(150), Timestamp::from_unix(350))
            .map(|r| r.recid)
            .collect();
        assert_eq!(hits, vec![2, 3]);
    }

    #[test]
    fn severity_filters() {
        let log = sample_log();
        assert_eq!(log.fatal().count(), 4);
        assert_eq!(log.with_severity(Severity::Warning).count(), 1);
        let fatal = log.fatal_only();
        assert_eq!(fatal.len(), 4);
        assert_eq!(fatal.distinct_fatal_codes(), 3);
    }

    #[test]
    fn counts_and_filters() {
        let log = sample_log();
        let counts = log.count_by_errcode();
        assert_eq!(counts[&code("_bgp_err_kernel_panic")], 2);
        assert_eq!(counts[&code("BULK_POWER_FATAL")], 1);
        let only_panics = log.filtered(|r| r.errcode == code("_bgp_err_kernel_panic"));
        assert_eq!(only_panics.len(), 2);
    }

    #[test]
    fn interarrivals() {
        let log = sample_log();
        assert_eq!(log.interarrival_secs(), vec![100.0; 4]);
        // Simultaneous records produce no zero gaps.
        let log = RasLog::from_records(vec![
            rec(1, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(2, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(3, 200, "R00-M0", "_bgp_err_kernel_panic"),
        ]);
        assert_eq!(log.interarrival_secs(), vec![100.0]);
    }
}
