//! Parsing the pipe-separated log format (tolerant, streaming).
//!
//! Real RAS logs are dirty: truncated lines, unknown codes from firmware
//! updates, clock skew. The parser therefore reports structured errors per
//! line and the streaming [`RasReader`] lets the caller decide whether to
//! skip or abort.

use crate::catalog::{Catalog, ErrCode};
use crate::record::RasRecord;
use crate::severity::Severity;
use bgp_model::{Location, Timestamp};
use std::fmt;
use std::io::BufRead;

/// A parse failure for one line.
#[derive(Debug, Clone, PartialEq)]
pub struct RasParseError {
    /// 1-based line number, when known (0 for standalone parses).
    pub line: u64,
    /// What went wrong.
    pub kind: RasParseErrorKind,
}

/// The ways a line can be malformed.
#[derive(Debug, Clone, PartialEq)]
pub enum RasParseErrorKind {
    /// Fewer than the nine `|`-separated fields.
    WrongFieldCount(
        /// Number of fields found.
        usize,
    ),
    /// RECID was not an integer.
    BadRecId(String),
    /// ERRCODE not present in the catalogue.
    UnknownErrCode(String),
    /// SEVERITY token unrecognized.
    BadSeverity(String),
    /// EVENT_TIME malformed.
    BadTimestamp(String),
    /// LOCATION malformed.
    BadLocation(String),
}

impl fmt::Display for RasParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            RasParseErrorKind::WrongFieldCount(n) => {
                write!(f, "expected 9 fields, found {n}")
            }
            RasParseErrorKind::BadRecId(s) => write!(f, "bad RECID {s:?}"),
            RasParseErrorKind::UnknownErrCode(s) => write!(f, "unknown ERRCODE {s:?}"),
            RasParseErrorKind::BadSeverity(s) => write!(f, "bad SEVERITY {s:?}"),
            RasParseErrorKind::BadTimestamp(s) => write!(f, "bad EVENT_TIME {s:?}"),
            RasParseErrorKind::BadLocation(s) => write!(f, "bad LOCATION {s:?}"),
        }
    }
}

impl std::error::Error for RasParseError {}

/// Parse one log line into a record.
///
/// The MSG_ID / COMPONENT / SUBCOMPONENT / MESSAGE fields are validated for
/// presence but their *content* is taken from the catalogue (the ERRCODE is
/// authoritative), so logs written by other tools with slightly different
/// message text still parse.
pub fn parse_line(line: &str) -> Result<RasRecord, RasParseError> {
    let err = |kind| RasParseError { line: 0, kind };
    // MESSAGE may itself contain '|'; limit the split to 9 parts.
    let fields: Vec<&str> = line.splitn(9, '|').collect();
    if fields.len() != 9 {
        return Err(err(RasParseErrorKind::WrongFieldCount(fields.len())));
    }
    let recid: u64 = fields[0]
        .trim()
        .parse()
        .map_err(|_| err(RasParseErrorKind::BadRecId(fields[0].to_owned())))?;
    let errcode: ErrCode = Catalog::standard()
        .lookup(fields[4].trim())
        .ok_or_else(|| err(RasParseErrorKind::UnknownErrCode(fields[4].to_owned())))?;
    let severity: Severity = fields[5]
        .trim()
        .parse()
        .map_err(|_| err(RasParseErrorKind::BadSeverity(fields[5].to_owned())))?;
    let event_time: Timestamp = Timestamp::parse(fields[6].trim())
        .map_err(|_| err(RasParseErrorKind::BadTimestamp(fields[6].to_owned())))?;
    let location: Location = fields[7]
        .trim()
        .parse()
        .map_err(|_| err(RasParseErrorKind::BadLocation(fields[7].to_owned())))?;
    Ok(RasRecord {
        recid,
        event_time,
        location,
        errcode,
        severity,
    })
}

/// Streaming reader: yields one `Result` per non-empty line.
///
/// ```
/// use raslog::RasReader;
///
/// let text = "\
/// 1|KERN_0014|KERNEL|CNS|_bgp_err_kernel_panic|FATAL|2009-03-01-12.30.00|R12-M1-N07-J03|panic
/// not a record
/// ";
/// let (records, errors) = RasReader::new(text.as_bytes()).read_tolerant();
/// assert_eq!(records.len(), 1);
/// assert_eq!(errors.len(), 1);
/// assert_eq!(errors[0].line, 2);
/// ```
pub struct RasReader<R> {
    inner: R,
    line_no: u64,
    buf: String,
}

impl<R: BufRead> RasReader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R) -> Self {
        RasReader {
            inner,
            line_no: 0,
            buf: String::new(),
        }
    }

    /// Read everything, skipping malformed lines; returns the records and the
    /// errors encountered.
    pub fn read_tolerant(self) -> (Vec<RasRecord>, Vec<RasParseError>) {
        let mut records = Vec::new();
        let mut errors = Vec::new();
        for item in self {
            match item {
                Ok(r) => records.push(r),
                Err(e) => errors.push(e),
            }
        }
        (records, errors)
    }

    /// Read everything, failing on the first malformed line.
    pub fn read_strict(self) -> Result<Vec<RasRecord>, RasParseError> {
        self.collect()
    }
}

impl<R: BufRead> Iterator for RasReader<R> {
    type Item = Result<RasRecord, RasParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.inner.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    self.line_no += 1;
                    let line = self.buf.trim_end_matches(['\n', '\r']);
                    if line.is_empty() {
                        continue;
                    }
                    return Some(parse_line(line).map_err(|mut e| {
                        e.line = self.line_no;
                        e
                    }));
                }
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::format_record;
    use proptest::prelude::*;

    fn sample_record() -> RasRecord {
        RasRecord::new(
            42,
            Timestamp::from_civil(2009, 3, 1, 12, 30, 0),
            "R12-M1-N07-J03".parse().unwrap(),
            Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap(),
        )
    }

    #[test]
    fn round_trip_single() {
        let r = sample_record();
        let parsed = parse_line(&format_record(&r)).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn message_with_pipes_survives() {
        let r = sample_record();
        let line = format!("{}| extra | pipes", format_record(&r));
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn malformed_lines_rejected_with_kind() {
        use RasParseErrorKind as K;
        type Check = fn(&RasParseErrorKind) -> bool;
        let good = format_record(&sample_record());
        let cases: Vec<(String, Check)> = vec![
            ("a|b|c".to_owned(), |k| matches!(k, K::WrongFieldCount(3))),
            (good.replacen("42", "xx", 1), |k| {
                matches!(k, K::BadRecId(_))
            }),
            (good.replace("_bgp_err_kernel_panic", "mystery_code"), |k| {
                matches!(k, K::UnknownErrCode(_))
            }),
            (good.replace("FATAL", "SUPERFATAL"), |k| {
                matches!(k, K::BadSeverity(_))
            }),
            (good.replace("2009-03-01-12.30.00", "yesterday"), |k| {
                matches!(k, K::BadTimestamp(_))
            }),
            (good.replace("R12-M1-N07-J03", "R99-Z9"), |k| {
                matches!(k, K::BadLocation(_))
            }),
        ];
        for (line, check) in cases {
            let e = parse_line(&line).unwrap_err();
            assert!(check(&e.kind), "line {line:?} gave {e:?}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn reader_streams_and_numbers_lines() {
        let r = sample_record();
        let text = format!(
            "{}\n\nnot a record\n{}\n",
            format_record(&r),
            format_record(&r)
        );
        let reader = RasReader::new(text.as_bytes());
        let (records, errors) = reader.read_tolerant();
        assert_eq!(records.len(), 2);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].line, 3); // blank line counted, bad line is #3
    }

    #[test]
    fn strict_mode_fails_fast() {
        let text = "garbage\n";
        let reader = RasReader::new(text.as_bytes());
        assert!(reader.read_strict().is_err());
        let r = sample_record();
        let text = format!("{}\n", format_record(&r));
        let reader = RasReader::new(text.as_bytes());
        assert_eq!(reader.read_strict().unwrap().len(), 1);
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary_records(
            recid in 0u64..u64::MAX / 2,
            secs in 0i64..2_000_000_000,
            code_idx in 0usize..Catalog::standard().len(),
            mp in 0u8..80,
        ) {
            let code = ErrCode(code_idx as u16);
            let loc = Location::Midplane(bgp_model::MidplaneId::from_index(mp).unwrap());
            let r = RasRecord::new(recid, Timestamp::from_unix(secs), loc, code);
            let parsed = parse_line(&format_record(&r)).unwrap();
            prop_assert_eq!(parsed, r);
        }
    }
}
