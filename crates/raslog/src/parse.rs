//! Parsing the pipe-separated log format (tolerant, streaming).
//!
//! Real RAS logs are dirty: truncated lines, unknown codes from firmware
//! updates, clock skew. The parser therefore reports structured errors per
//! line and the streaming [`RasReader`] lets the caller decide whether to
//! skip or abort.

use crate::catalog::{Catalog, ErrCode};
use crate::record::RasRecord;
use crate::severity::Severity;
use bgp_model::{Location, Timestamp};
use std::fmt;
use std::io::BufRead;

/// A parse failure for one line.
#[derive(Debug, Clone, PartialEq)]
pub struct RasParseError {
    /// 1-based line number, when known (0 for standalone parses).
    pub line: u64,
    /// What went wrong.
    pub kind: RasParseErrorKind,
}

/// The ways a line can be malformed.
#[derive(Debug, Clone, PartialEq)]
pub enum RasParseErrorKind {
    /// Fewer than the nine `|`-separated fields.
    WrongFieldCount(
        /// Number of fields found.
        usize,
    ),
    /// RECID was not an integer.
    BadRecId(String),
    /// ERRCODE not present in the catalogue.
    UnknownErrCode(String),
    /// SEVERITY token unrecognized.
    BadSeverity(String),
    /// EVENT_TIME malformed.
    BadTimestamp(String),
    /// LOCATION malformed.
    BadLocation(String),
    /// The underlying reader failed mid-stream (the log is truncated from
    /// this line on, not merely malformed).
    Io(String),
}

impl fmt::Display for RasParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            RasParseErrorKind::WrongFieldCount(n) => {
                write!(f, "expected 9 fields, found {n}")
            }
            RasParseErrorKind::BadRecId(s) => write!(f, "bad RECID {s:?}"),
            RasParseErrorKind::UnknownErrCode(s) => write!(f, "unknown ERRCODE {s:?}"),
            RasParseErrorKind::BadSeverity(s) => write!(f, "bad SEVERITY {s:?}"),
            RasParseErrorKind::BadTimestamp(s) => write!(f, "bad EVENT_TIME {s:?}"),
            RasParseErrorKind::BadLocation(s) => write!(f, "bad LOCATION {s:?}"),
            RasParseErrorKind::Io(s) => write!(f, "I/O error: {s}"),
        }
    }
}

impl std::error::Error for RasParseError {}

/// Parse one log line into a record.
///
/// The MSG_ID / COMPONENT / SUBCOMPONENT / MESSAGE fields are validated for
/// presence but their *content* is taken from the catalogue (the ERRCODE is
/// authoritative), so logs written by other tools with slightly different
/// message text still parse.
pub fn parse_line(line: &str) -> Result<RasRecord, RasParseError> {
    parse_line_bytes(line.as_bytes())
}

/// Parse one log line given as raw bytes — the allocation-free hot path used
/// by the parallel ingestion layer (`crate::ingest`).
///
/// For any valid-UTF-8 line this behaves *identically* to [`parse_line`]
/// (same record or same error kind and payload). The line as a whole is never
/// UTF-8-validated: only the five fields that are actually parsed are
/// transcoded, so a multi-gigabyte MESSAGE column costs nothing. A parsed
/// field containing invalid UTF-8 reports the same error kind as an
/// unparseable value, with a lossy payload.
pub fn parse_line_bytes(line: &[u8]) -> Result<RasRecord, RasParseError> {
    let err = |kind| RasParseError { line: 0, kind };
    // MESSAGE may itself contain '|'; limit the split to 9 parts
    // (`splitn(9, '|')` semantics, without materializing a Vec).
    let mut fields: [&[u8]; 9] = [b""; 9];
    let mut count = 0usize;
    let mut rest = line;
    loop {
        if count == 8 {
            fields[8] = rest;
            count = 9;
            break;
        }
        match bgp_model::bytes::find_byte(b'|', rest) {
            Some(i) => {
                fields[count] = &rest[..i];
                rest = &rest[i + 1..];
                count += 1;
            }
            None => {
                fields[count] = rest;
                count += 1;
                break;
            }
        }
    }
    if count != 9 {
        return Err(err(RasParseErrorKind::WrongFieldCount(count)));
    }
    // Error payloads carry the raw (untrimmed) field, like the &str parser.
    let lossy = |f: &[u8]| String::from_utf8_lossy(f).into_owned();
    fn text(f: &[u8]) -> Option<&str> {
        std::str::from_utf8(f).ok().map(str::trim)
    }
    let recid: u64 = match text(fields[0]).and_then(|s| s.parse().ok()) {
        Some(v) => v,
        None => return Err(err(RasParseErrorKind::BadRecId(lossy(fields[0])))),
    };
    let errcode: ErrCode = match text(fields[4]).and_then(|s| Catalog::standard().lookup(s)) {
        Some(c) => c,
        None => return Err(err(RasParseErrorKind::UnknownErrCode(lossy(fields[4])))),
    };
    let severity: Severity = match text(fields[5]).and_then(|s| s.parse().ok()) {
        Some(s) => s,
        None => return Err(err(RasParseErrorKind::BadSeverity(lossy(fields[5])))),
    };
    let event_time: Timestamp = match text(fields[6]).and_then(|s| Timestamp::parse(s).ok()) {
        Some(t) => t,
        None => return Err(err(RasParseErrorKind::BadTimestamp(lossy(fields[6])))),
    };
    let location: Location = match text(fields[7]).and_then(|s| s.parse().ok()) {
        Some(l) => l,
        None => return Err(err(RasParseErrorKind::BadLocation(lossy(fields[7])))),
    };
    Ok(RasRecord {
        recid,
        event_time,
        location,
        errcode,
        severity,
    })
}

/// Streaming reader: yields one `Result` per non-empty line.
///
/// ```
/// use raslog::RasReader;
///
/// let text = "\
/// 1|KERN_0014|KERNEL|CNS|_bgp_err_kernel_panic|FATAL|2009-03-01-12.30.00|R12-M1-N07-J03|panic
/// not a record
/// ";
/// let (records, errors) = RasReader::new(text.as_bytes()).read_tolerant();
/// assert_eq!(records.len(), 1);
/// assert_eq!(errors.len(), 1);
/// assert_eq!(errors[0].line, 2);
/// ```
pub struct RasReader<R> {
    inner: R,
    line_no: u64,
    buf: String,
    failed: bool,
}

impl<R: BufRead> RasReader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R) -> Self {
        RasReader {
            inner,
            line_no: 0,
            buf: String::new(),
            failed: false,
        }
    }

    /// Read everything, skipping malformed lines; returns the records and the
    /// errors encountered.
    pub fn read_tolerant(self) -> (Vec<RasRecord>, Vec<RasParseError>) {
        let mut records = Vec::new();
        let mut errors = Vec::new();
        for item in self {
            match item {
                Ok(r) => records.push(r),
                Err(e) => errors.push(e),
            }
        }
        (records, errors)
    }

    /// Read everything, failing on the first malformed line.
    pub fn read_strict(self) -> Result<Vec<RasRecord>, RasParseError> {
        self.collect()
    }
}

impl<R: BufRead> Iterator for RasReader<R> {
    type Item = Result<RasRecord, RasParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            self.buf.clear();
            match self.inner.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    self.line_no += 1;
                    let line = self.buf.trim_end_matches(['\n', '\r']);
                    if line.is_empty() {
                        continue;
                    }
                    return Some(parse_line(line).map_err(|mut e| {
                        e.line = self.line_no;
                        e
                    }));
                }
                Err(e) => {
                    // Surface the failure once (the log is truncated here),
                    // then fuse: a persistent error must not loop forever.
                    self.failed = true;
                    self.line_no += 1;
                    return Some(Err(RasParseError {
                        line: self.line_no,
                        kind: RasParseErrorKind::Io(e.to_string()),
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::format_record;
    use proptest::prelude::*;

    fn sample_record() -> RasRecord {
        RasRecord::new(
            42,
            Timestamp::from_civil(2009, 3, 1, 12, 30, 0),
            "R12-M1-N07-J03".parse().unwrap(),
            Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap(),
        )
    }

    #[test]
    fn round_trip_single() {
        let r = sample_record();
        let parsed = parse_line(&format_record(&r)).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn message_with_pipes_survives() {
        let r = sample_record();
        let line = format!("{}| extra | pipes", format_record(&r));
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn malformed_lines_rejected_with_kind() {
        use RasParseErrorKind as K;
        type Check = fn(&RasParseErrorKind) -> bool;
        let good = format_record(&sample_record());
        let cases: Vec<(String, Check)> = vec![
            ("a|b|c".to_owned(), |k| matches!(k, K::WrongFieldCount(3))),
            (good.replacen("42", "xx", 1), |k| {
                matches!(k, K::BadRecId(_))
            }),
            (good.replace("_bgp_err_kernel_panic", "mystery_code"), |k| {
                matches!(k, K::UnknownErrCode(_))
            }),
            (good.replace("FATAL", "SUPERFATAL"), |k| {
                matches!(k, K::BadSeverity(_))
            }),
            (good.replace("2009-03-01-12.30.00", "yesterday"), |k| {
                matches!(k, K::BadTimestamp(_))
            }),
            (good.replace("R12-M1-N07-J03", "R99-Z9"), |k| {
                matches!(k, K::BadLocation(_))
            }),
        ];
        for (line, check) in cases {
            let e = parse_line(&line).unwrap_err();
            assert!(check(&e.kind), "line {line:?} gave {e:?}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn reader_streams_and_numbers_lines() {
        let r = sample_record();
        let text = format!(
            "{}\n\nnot a record\n{}\n",
            format_record(&r),
            format_record(&r)
        );
        let reader = RasReader::new(text.as_bytes());
        let (records, errors) = reader.read_tolerant();
        assert_eq!(records.len(), 2);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].line, 3); // blank line counted, bad line is #3
    }

    struct FailingReader;

    impl std::io::Read for FailingReader {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk on fire"))
        }
    }

    #[test]
    fn io_errors_surface_once_with_line_number() {
        let text = format!("{}\n", format_record(&sample_record()));
        let chained = std::io::Read::chain(text.as_bytes(), FailingReader);
        let (records, errors) = RasReader::new(std::io::BufReader::new(chained)).read_tolerant();
        assert_eq!(records.len(), 1);
        assert_eq!(errors.len(), 1, "I/O error must surface exactly once");
        assert_eq!(errors[0].line, 2);
        assert!(matches!(errors[0].kind, RasParseErrorKind::Io(_)));
        assert!(errors[0].to_string().contains("disk on fire"));
    }

    #[test]
    fn byte_parser_never_validates_message() {
        let good = format_record(&sample_record());
        let mut line = good.clone().into_bytes();
        line.extend_from_slice(b" \xff\xfe binary | junk");
        assert_eq!(parse_line_bytes(&line).unwrap(), sample_record());
        // ...but a parsed field with invalid UTF-8 errors like a bad value.
        let mut bad = good.into_bytes();
        bad[0] = 0xff; // first byte of RECID
        assert!(matches!(
            parse_line_bytes(&bad).unwrap_err().kind,
            RasParseErrorKind::BadRecId(_)
        ));
    }

    #[test]
    fn strict_mode_fails_fast() {
        let text = "garbage\n";
        let reader = RasReader::new(text.as_bytes());
        assert!(reader.read_strict().is_err());
        let r = sample_record();
        let text = format!("{}\n", format_record(&r));
        let reader = RasReader::new(text.as_bytes());
        assert_eq!(reader.read_strict().unwrap().len(), 1);
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary_records(
            recid in 0u64..u64::MAX / 2,
            secs in 0i64..2_000_000_000,
            code_idx in 0usize..Catalog::standard().len(),
            mp in 0u8..80,
        ) {
            let code = ErrCode(code_idx as u16);
            let loc = Location::Midplane(bgp_model::MidplaneId::from_index(mp).unwrap());
            let r = RasRecord::new(recid, Timestamp::from_unix(secs), loc, code);
            let parsed = parse_line(&format_record(&r)).unwrap();
            prop_assert_eq!(parsed, r);
        }
    }
}
