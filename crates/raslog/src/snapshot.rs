//! Columnar `.bgpsnap` codec for parsed RAS logs.
//!
//! After the shared 32-byte header ([`bgp_model::snapshot`]), records are
//! stored as little-endian column arrays of length `count`, in this order:
//!
//! | column | width | encoding |
//! |---|---|---|
//! | `recid` | 8 | `u64` |
//! | `event_time` | 8 | unix seconds, `i64` |
//! | `location` | 4 | `[tag, a, b, c]` (see [`encode_location`]) |
//! | `errcode` | 2 | catalogue index, `u16` |
//! | `severity` | 1 | [`Severity`] discriminant |
//!
//! Decoding re-validates every record against the machine model and the
//! catalogue, so a corrupt payload yields a typed
//! [`SnapshotError::BadRecord`] instead of an impossible record entering
//! analysis.

use crate::catalog::{Catalog, ErrCode};
use crate::record::RasRecord;
use crate::severity::Severity;
use bgp_model::snapshot::{Cursor, SnapshotError, SnapshotHeader, SnapshotKind, HEADER_LEN};
use bgp_model::{topology, ComputeNodeId, Location, MidplaneId, NodeCardId, RackId, Timestamp};

/// On-disk format version. Bump whenever the record columns change shape —
/// the `snapshot-version` xtask lint ties this to [`LAYOUT_FINGERPRINT`].
pub const FORMAT_VERSION: u32 = 1;

/// Fingerprint of the [`RasRecord`] field list (`bgp_model::bytes::fnv1a_64`
/// over `name:type` pairs). `cargo xtask lint` recomputes this from
/// `record.rs`; if it disagrees, the record layout changed and both this
/// constant and [`FORMAT_VERSION`] must be updated together.
pub const LAYOUT_FINGERPRINT: u64 = 0x37f1_fcf3_b1a3_e2e7;

/// Bytes per record across all columns.
const BYTES_PER_RECORD: usize = 8 + 8 + 4 + 2 + 1;

/// Encode a location as `[tag, a, b, c]`.
///
/// Tags 0–8 follow [`Location`]'s variant order; `a` is the dense
/// rack/midplane index, `b` the card index, `c` the node slot (unused
/// positions zero).
fn encode_location(loc: Location) -> [u8; 4] {
    let mp = |m: MidplaneId| m.index() as u8;
    let rk = |r: RackId| r.index() as u8;
    match loc {
        Location::Rack(r) => [0, rk(r), 0, 0],
        Location::Midplane(m) => [1, mp(m), 0, 0],
        Location::NodeCard(nc) => [2, mp(nc.midplane()), nc.card(), 0],
        Location::ComputeNode(cn) => [
            3,
            mp(cn.node_card().midplane()),
            cn.node_card().card(),
            cn.j(),
        ],
        Location::IoNode { midplane, index } => [4, mp(midplane), index, 0],
        Location::LinkCard { midplane, index } => [5, mp(midplane), index, 0],
        Location::ServiceCard(m) => [6, mp(m), 0, 0],
        Location::BulkPower(r) => [7, rk(r), 0, 0],
        Location::ClockCard(r) => [8, rk(r), 0, 0],
    }
}

fn decode_location(b: [u8; 4], index: u64) -> Result<Location, SnapshotError> {
    let bad = |what: String| SnapshotError::BadRecord { index, what };
    let model = |what: &str| bad(format!("location: bad {what}"));
    let [tag, a, c, j] = b;
    let mp = || MidplaneId::from_index(a).map_err(|_| model("midplane index"));
    let rk = || RackId::from_index(a).map_err(|_| model("rack index"));
    let loc = match tag {
        0 => Location::Rack(rk()?),
        1 => Location::Midplane(mp()?),
        2 => Location::NodeCard(NodeCardId::new(mp()?, c).map_err(|_| model("node card"))?),
        3 => {
            let nc = NodeCardId::new(mp()?, c).map_err(|_| model("node card"))?;
            Location::ComputeNode(ComputeNodeId::new(nc, j).map_err(|_| model("node slot"))?)
        }
        4 => {
            if c >= topology::IO_NODES_PER_MIDPLANE {
                return Err(model("I/O node index"));
            }
            Location::IoNode {
                midplane: mp()?,
                index: c,
            }
        }
        5 => {
            if c >= topology::LINK_CARDS_PER_MIDPLANE {
                return Err(model("link card index"));
            }
            Location::LinkCard {
                midplane: mp()?,
                index: c,
            }
        }
        6 => Location::ServiceCard(mp()?),
        7 => Location::BulkPower(rk()?),
        8 => Location::ClockCard(rk()?),
        other => return Err(bad(format!("location: unknown tag {other}"))),
    };
    Ok(loc)
}

/// Serialize parsed records (plus the hash of the source text they came
/// from) into a complete `.bgpsnap` byte buffer.
pub fn encode_snapshot(records: &[RasRecord], source_hash: u64) -> Vec<u8> {
    let header = SnapshotHeader {
        kind: SnapshotKind::Ras,
        version: FORMAT_VERSION,
        count: records.len() as u64,
        source_hash,
    };
    let mut out = Vec::with_capacity(HEADER_LEN + records.len() * BYTES_PER_RECORD);
    header.write_to(&mut out);
    for r in records {
        out.extend_from_slice(&r.recid.to_le_bytes());
    }
    for r in records {
        out.extend_from_slice(&r.event_time.as_unix().to_le_bytes());
    }
    for r in records {
        out.extend_from_slice(&encode_location(r.location));
    }
    for r in records {
        out.extend_from_slice(&r.errcode.0.to_le_bytes());
    }
    for r in records {
        out.push(r.severity as u8);
    }
    out
}

/// Decode a `.bgpsnap` buffer back into records.
///
/// `expected_hash`, when given, is the content hash of the *current* source
/// text; a snapshot written from different text is rejected with
/// [`SnapshotError::HashMismatch`]. Every error is recoverable by re-parsing
/// the source.
pub fn decode_snapshot(
    bytes: &[u8],
    expected_hash: Option<u64>,
) -> Result<Vec<RasRecord>, SnapshotError> {
    let header = SnapshotHeader::parse(bytes, SnapshotKind::Ras)?;
    header.validate(FORMAT_VERSION, expected_hash)?;
    if header.count > bytes.len() as u64 {
        // Each record needs BYTES_PER_RECORD > 1 bytes, so this is already
        // truncated — and it makes the usize arithmetic below safe.
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN.saturating_add(usize::MAX),
            have: bytes.len(),
        });
    }
    let n = header.count as usize;
    let mut cur = Cursor::new(&bytes[HEADER_LEN..]);
    let c_recid = cur.take(n * 8)?;
    let c_time = cur.take(n * 8)?;
    let c_loc = cur.take(n * 4)?;
    let c_code = cur.take(n * 2)?;
    let c_sev = cur.take(n)?;
    cur.finish()?;

    let catalog_len = Catalog::standard().len();
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let idx = i as u64;
        let recid = le_u64(c_recid, i);
        let event_time = Timestamp::from_unix(le_u64(c_time, i) as i64);
        let mut loc = [0u8; 4];
        loc.copy_from_slice(&c_loc[i * 4..i * 4 + 4]);
        let location = decode_location(loc, idx)?;
        let code = u16::from_le_bytes([c_code[i * 2], c_code[i * 2 + 1]]);
        if usize::from(code) >= catalog_len {
            return Err(SnapshotError::BadRecord {
                index: idx,
                what: format!("errcode {code} outside catalogue"),
            });
        }
        let severity =
            *Severity::ALL
                .get(usize::from(c_sev[i]))
                .ok_or_else(|| SnapshotError::BadRecord {
                    index: idx,
                    what: format!("severity byte {}", c_sev[i]),
                })?;
        records.push(RasRecord {
            recid,
            event_time,
            location,
            errcode: ErrCode(code),
            severity,
        });
    }
    Ok(records)
}

fn le_u64(col: &[u8], i: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&col[i * 8..i * 8 + 8]);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn records() -> Vec<RasRecord> {
        let locs = [
            "R00",
            "R23-M1",
            "R23-M1-N04",
            "R23-M1-N04-J12",
            "R23-M1-I3",
            "R23-M1-L2",
            "R23-M1-S",
            "R23-B",
            "R47-K",
        ];
        locs.iter()
            .enumerate()
            .map(|(i, l)| {
                let mut r = RasRecord::new(
                    i as u64,
                    Timestamp::from_unix(1_236_000_000 + i as i64),
                    l.parse().unwrap(),
                    ErrCode((i % Catalog::standard().len()) as u16),
                );
                r.severity = Severity::ALL[i % Severity::ALL.len()];
                r
            })
            .collect()
    }

    #[test]
    fn round_trip_every_location_kind() {
        let recs = records();
        let bytes = encode_snapshot(&recs, 7);
        assert_eq!(bytes.len(), HEADER_LEN + recs.len() * BYTES_PER_RECORD);
        let back = decode_snapshot(&bytes, Some(7)).unwrap();
        assert_eq!(back, recs);
        // Hash validation is optional for tools that only read.
        assert_eq!(decode_snapshot(&bytes, None).unwrap(), recs);
        // Empty logs snapshot too.
        let empty = encode_snapshot(&[], 1);
        assert_eq!(decode_snapshot(&empty, Some(1)).unwrap(), vec![]);
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let recs = records();
        let bytes = encode_snapshot(&recs, 7);
        // Version bump.
        let mut v = bytes.clone();
        v[12] ^= 0xff;
        assert!(matches!(
            decode_snapshot(&v, Some(7)),
            Err(SnapshotError::VersionMismatch { .. })
        ));
        // Truncated payload.
        assert!(matches!(
            decode_snapshot(&bytes[..bytes.len() - 3], Some(7)),
            Err(SnapshotError::Truncated { .. })
        ));
        // Hash mismatch.
        assert!(matches!(
            decode_snapshot(&bytes, Some(8)),
            Err(SnapshotError::HashMismatch { .. })
        ));
        // Trailing bytes.
        let mut t = bytes.clone();
        t.push(0);
        assert!(matches!(
            decode_snapshot(&t, Some(7)),
            Err(SnapshotError::TrailingBytes(1))
        ));
        // Corrupt location tag in the first record.
        let mut c = bytes.clone();
        c[HEADER_LEN + recs.len() * 16] = 99;
        assert!(matches!(
            decode_snapshot(&c, Some(7)),
            Err(SnapshotError::BadRecord { index: 0, .. })
        ));
        // Absurd count field.
        let mut n = bytes;
        n[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&n, Some(7)),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    proptest! {
        #[test]
        fn random_bytes_never_panic(data in collection::vec(0u8..=255, 0..256)) {
            let _ = decode_snapshot(&data, Some(0));
            let mut framed = encode_snapshot(&records(), 0);
            for (i, b) in data.iter().enumerate() {
                if let Some(slot) = framed.get_mut(HEADER_LEN + i) {
                    *slot = *b;
                }
            }
            let _ = decode_snapshot(&framed, Some(0));
        }
    }
}
