//! Log exploration: the Section III-style breakdown of a RAS log by
//! severity, component, code, location, and time.
//!
//! These are the first numbers anyone computes on a fresh RAS log ("how
//! much of this is FATAL? which component talks the most? which midplane
//! is noisiest?") and the inputs to Table I-style reporting.

use crate::catalog::{Catalog, ErrCode};
use crate::component::Component;
use crate::log::RasLog;
use crate::severity::Severity;
use bgp_model::MidplaneId;
use std::collections::HashMap;

/// Aggregate profile of one RAS log.
#[derive(Debug, Clone)]
pub struct LogSummary {
    /// Total records.
    pub total: usize,
    /// Records per severity, indexed by `Severity as usize`.
    pub by_severity: [usize; 6],
    /// Records per component, indexed by `Component as usize`.
    pub by_component: [usize; 7],
    /// FATAL records per component.
    pub fatal_by_component: [usize; 7],
    /// Distinct codes seen / distinct FATAL codes seen.
    pub distinct_codes: usize,
    /// Distinct FATAL codes seen.
    pub distinct_fatal_codes: usize,
    /// Records per day offset from the first record.
    pub per_day: Vec<usize>,
    /// The busiest (most-reporting) midplanes, descending.
    pub noisiest_midplanes: Vec<(MidplaneId, usize)>,
    /// The most frequent FATAL codes, descending.
    pub top_fatal_codes: Vec<(ErrCode, usize)>,
}

impl LogSummary {
    /// Profile a log. `top_k` bounds the two ranking lists.
    pub fn of(log: &RasLog, top_k: usize) -> LogSummary {
        let mut by_severity = [0usize; 6];
        let mut by_component = [0usize; 7];
        let mut fatal_by_component = [0usize; 7];
        let mut per_code: HashMap<ErrCode, usize> = HashMap::new();
        let mut per_midplane: HashMap<MidplaneId, usize> = HashMap::new();
        let origin = log.time_span().map(|(s, _)| s);
        let days = log
            .time_span()
            .map(|(s, e)| (e.days_since(s) + 1).max(1) as usize)
            .unwrap_or(0);
        let mut per_day = vec![0usize; days];
        for r in log.records() {
            by_severity[r.severity as usize] += 1;
            by_component[r.component() as usize] += 1;
            if r.severity == Severity::Fatal {
                fatal_by_component[r.component() as usize] += 1;
            }
            *per_code.entry(r.errcode).or_insert(0) += 1;
            for m in r.location.touched_midplanes() {
                *per_midplane.entry(m).or_insert(0) += 1;
            }
            if let Some(origin) = origin {
                let d = r.event_time.days_since(origin);
                if (0..days as i64).contains(&d) {
                    per_day[d as usize] += 1;
                }
            }
        }
        let cat = Catalog::standard();
        let distinct_codes = per_code.len();
        let mut fatal_codes: Vec<(ErrCode, usize)> = per_code
            .iter()
            .filter(|(c, _)| cat.info(**c).severity == Severity::Fatal)
            .map(|(&c, &n)| (c, n))
            .collect();
        let distinct_fatal_codes = fatal_codes.len();
        fatal_codes.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
        fatal_codes.truncate(top_k);
        let mut noisiest: Vec<(MidplaneId, usize)> = per_midplane.into_iter().collect();
        noisiest.sort_by_key(|&(m, n)| (std::cmp::Reverse(n), m));
        noisiest.truncate(top_k);
        LogSummary {
            total: log.len(),
            by_severity,
            by_component,
            fatal_by_component,
            distinct_codes,
            distinct_fatal_codes,
            per_day,
            noisiest_midplanes: noisiest,
            top_fatal_codes: fatal_codes,
        }
    }

    /// Fraction of FATAL records reported from a component — the paper's
    /// "75 % of fatal events are reported from the KERNEL".
    pub fn fatal_component_share(&self, c: Component) -> f64 {
        let fatal: usize = self.fatal_by_component.iter().sum();
        if fatal == 0 {
            return 0.0;
        }
        self.fatal_by_component[c as usize] as f64 / fatal as f64
    }

    /// Records of a severity.
    pub fn severity_count(&self, s: Severity) -> usize {
        self.by_severity[s as usize]
    }
}

impl std::fmt::Display for LogSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} records over {} days", self.total, self.per_day.len())?;
        write!(f, "severity:")?;
        for s in Severity::ALL {
            let n = self.severity_count(s);
            if n > 0 {
                write!(f, " {}={n}", s.as_str())?;
            }
        }
        writeln!(f)?;
        write!(f, "components (FATAL share):")?;
        for c in Component::ALL {
            let n = self.fatal_by_component[c as usize];
            if n > 0 {
                write!(
                    f,
                    " {}={:.0}%",
                    c.as_str(),
                    100.0 * self.fatal_component_share(c)
                )?;
            }
        }
        writeln!(f)?;
        writeln!(
            f,
            "distinct codes: {} ({} FATAL)",
            self.distinct_codes, self.distinct_fatal_codes
        )?;
        if let Some((m, n)) = self.noisiest_midplanes.first() {
            writeln!(f, "noisiest midplane: {m} ({n} records)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RasRecord;
    use bgp_model::Timestamp;

    fn rec(recid: u64, t: i64, loc: &str, name: &str) -> RasRecord {
        RasRecord::new(
            recid,
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
        )
    }

    fn sample() -> RasLog {
        RasLog::from_records(vec![
            rec(1, 0, "R00-M0", "_bgp_err_kernel_panic"),
            rec(2, 3_600, "R00-M0", "_bgp_err_kernel_panic"),
            rec(3, 86_500, "R01-M1", "_bgp_warn_ecc_corrected"),
            rec(4, 90_000, "R01-M1", "BULK_POWER_FATAL"),
            rec(5, 200_000, "R02-M0", "_bgp_info_env_poll"),
        ])
    }

    #[test]
    fn counts_and_shares() {
        let s = LogSummary::of(&sample(), 3);
        assert_eq!(s.total, 5);
        assert_eq!(s.severity_count(Severity::Fatal), 3);
        assert_eq!(s.severity_count(Severity::Warning), 1);
        assert_eq!(s.severity_count(Severity::Info), 1);
        assert_eq!(s.distinct_codes, 4);
        assert_eq!(s.distinct_fatal_codes, 2);
        // 2 of 3 FATALs from KERNEL, 1 from CARD.
        assert!((s.fatal_component_share(Component::Kernel) - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.fatal_component_share(Component::Card) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.fatal_component_share(Component::Mmcs), 0.0);
    }

    #[test]
    fn per_day_binning() {
        let s = LogSummary::of(&sample(), 3);
        assert_eq!(s.per_day.len(), 3);
        assert_eq!(s.per_day, vec![2, 2, 1]);
    }

    #[test]
    fn rankings() {
        let s = LogSummary::of(&sample(), 2);
        assert_eq!(s.top_fatal_codes.len(), 2);
        assert_eq!(
            s.top_fatal_codes[0].0,
            Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap()
        );
        assert_eq!(s.top_fatal_codes[0].1, 2);
        // R00-M0 saw 2 records; rack-scoped bulk power touches R01-M0 and
        // R01-M1 — R01-M1 also has the ECC warning → 2.
        assert_eq!(s.noisiest_midplanes[0].1, 2);
        assert!(!s.to_string().is_empty());
        assert!(s.to_string().contains("FATAL=3"));
    }

    #[test]
    fn empty_log() {
        let s = LogSummary::of(&RasLog::default(), 3);
        assert_eq!(s.total, 0);
        assert!(s.per_day.is_empty());
        assert_eq!(s.fatal_component_share(Component::Kernel), 0.0);
    }
}
