//! # `raslog` — the Blue Gene/P RAS log substrate
//!
//! The Core Monitoring and Control System (CMCS) of a Blue Gene/P reports
//! every hardware/software event as a *RAS record* (Table II of the paper):
//! RECID, MSG_ID, COMPONENT, SUBCOMPONENT, ERRCODE, SEVERITY, EVENT_TIME,
//! LOCATION, MESSAGE. This crate models those records, the error-code
//! catalogue behind them, a line-oriented serialization, and an indexed
//! in-memory log container.
//!
//! Performance notes (these records number in the millions):
//!
//! * [`RasRecord`] is a compact fixed-size value type (≤ 32 bytes): the
//!   error code is a [`ErrCode`] index into the shared [`Catalog`], and the
//!   free-text MESSAGE is *not stored* — it is materialized from the
//!   catalogue template only when writing.
//! * [`RasLog`] keeps records sorted by time and maintains a per-midplane
//!   posting list, so "events at location ℓ within window w" — the inner
//!   loop of co-analysis matching — is a binary search plus a short scan.
//! * [`ingest`] parses a whole in-memory log on newline-aligned byte chunks
//!   across scoped threads, bit-identical to [`RasReader`]; [`snapshot`]
//!   caches the parsed columns on disk (`.bgpsnap`) so re-runs skip parsing
//!   entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod component;
pub mod ingest;
pub mod log;
pub mod parse;
pub mod record;
pub mod severity;
pub mod snapshot;
pub mod summary;
pub mod write;

pub use catalog::{Catalog, CodeInfo, ErrCode};
pub use component::Component;
pub use ingest::{parse_log_bytes, parse_log_bytes_strict};
pub use log::RasLog;
pub use parse::{parse_line, parse_line_bytes, RasParseError, RasReader};
pub use record::RasRecord;
pub use severity::Severity;
pub use summary::LogSummary;
pub use write::{format_record, write_log};
