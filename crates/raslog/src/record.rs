//! The RAS record value type.

use crate::catalog::{Catalog, ErrCode};
use crate::component::Component;
use crate::severity::Severity;
use bgp_model::{Location, Timestamp};

/// One RAS event record (one line of the log).
///
/// Compact by design: the ERRCODE is a catalogue index and the MESSAGE /
/// MSG_ID / COMPONENT / SUBCOMPONENT strings are all derivable from it, so a
/// record carries only what varies per event. The full Intrepid log holds
/// two million records; at 32 bytes each that is a comfortable 64 MB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasRecord {
    /// Sequence number in the log (RECID), assigned in emission order.
    pub recid: u64,
    /// When the event started (EVENT_TIME).
    pub event_time: Timestamp,
    /// Where the event occurred (LOCATION).
    pub location: Location,
    /// What happened (ERRCODE) — index into [`Catalog::standard`].
    pub errcode: ErrCode,
    /// Reported severity. Usually the catalogue default, but kept per-record
    /// because real CMCS logs occasionally escalate/demote.
    pub severity: Severity,
}

impl RasRecord {
    /// Create a record with the catalogue's default severity for `errcode`.
    pub fn new(recid: u64, event_time: Timestamp, location: Location, errcode: ErrCode) -> Self {
        RasRecord {
            recid,
            event_time,
            location,
            errcode,
            severity: Catalog::standard().info(errcode).severity,
        }
    }

    /// The reporting component (from the catalogue).
    pub fn component(&self) -> Component {
        Catalog::standard().info(self.errcode).component
    }

    /// The subcomponent token (from the catalogue).
    pub fn subcomponent(&self) -> &'static str {
        Catalog::standard().info(self.errcode).subcomponent
    }

    /// The ERRCODE token (from the catalogue).
    pub fn errcode_name(&self) -> &'static str {
        Catalog::standard().info(self.errcode).name
    }

    /// Is this a FATAL-severity record?
    pub fn is_fatal(&self) -> bool {
        self.severity == Severity::Fatal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(name: &str) -> ErrCode {
        Catalog::standard().lookup(name).unwrap()
    }

    #[test]
    fn record_is_compact() {
        // The perf-book discipline: assert hot types don't silently grow.
        assert!(
            std::mem::size_of::<RasRecord>() <= 32,
            "RasRecord grew to {} bytes",
            std::mem::size_of::<RasRecord>()
        );
    }

    #[test]
    fn defaults_come_from_catalog() {
        let r = RasRecord::new(
            7,
            Timestamp::from_unix(1000),
            "R00-M0".parse().unwrap(),
            code("_bgp_err_ddr_controller"),
        );
        assert!(r.is_fatal());
        assert_eq!(r.component(), Component::Kernel);
        assert_eq!(r.subcomponent(), "_bgp_unit_ddr");
        assert_eq!(r.errcode_name(), "_bgp_err_ddr_controller");

        let r = RasRecord::new(
            8,
            Timestamp::from_unix(1001),
            "R00-M0".parse().unwrap(),
            code("_bgp_warn_ecc_corrected"),
        );
        assert!(!r.is_fatal());
        assert_eq!(r.severity, Severity::Warning);
    }
}
