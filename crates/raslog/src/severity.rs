//! RAS severity levels.

use std::fmt;
use std::str::FromStr;

/// CMCS severity levels in increasing order of severity.
///
/// Per the paper: DEBUG/TRACE are for code debugging (absent from the
/// Intrepid log); INFO reports system-software progress; WARNING covers
/// recoverable soft errors (e.g. single-symbol ECC); ERROR is harmful but
/// survivable (e.g. loss of a redundant component); only FATAL presumably
/// crashes the application or system — and the whole point of co-analysis is
/// that "presumably" is often wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Severity {
    /// Code-debugging chatter (not present in production logs).
    Debug = 0,
    /// Fine-grained tracing (not present in production logs).
    Trace = 1,
    /// Progress information (e.g. automatic recovery progress).
    Info = 2,
    /// Recoverable soft error.
    Warning = 3,
    /// Harmful but survivable error.
    Error = 4,
    /// Presumed to crash the application or system.
    Fatal = 5,
}

impl Severity {
    /// All severities, ascending.
    pub const ALL: [Severity; 6] = [
        Severity::Debug,
        Severity::Trace,
        Severity::Info,
        Severity::Warning,
        Severity::Error,
        Severity::Fatal,
    ];

    /// The log-file token for this severity.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "DEBUG",
            Severity::Trace => "TRACE",
            Severity::Info => "INFO",
            Severity::Warning => "WARNING",
            Severity::Error => "ERROR",
            Severity::Fatal => "FATAL",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Severity {
    type Err = UnknownSeverity;

    fn from_str(s: &str) -> Result<Severity, UnknownSeverity> {
        Ok(match s {
            "DEBUG" => Severity::Debug,
            "TRACE" => Severity::Trace,
            "INFO" => Severity::Info,
            "WARNING" | "WARN" => Severity::Warning,
            "ERROR" => Severity::Error,
            "FATAL" => Severity::Fatal,
            _ => return Err(UnknownSeverity(s.to_owned())),
        })
    }
}

/// Error for an unrecognized severity token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSeverity(
    /// The offending token.
    pub String,
);

impl fmt::Display for UnknownSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown severity {:?}", self.0)
    }
}

impl std::error::Error for UnknownSeverity {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_reflects_severity() {
        assert!(Severity::Fatal > Severity::Error);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert!(Severity::Info > Severity::Trace);
        assert!(Severity::Trace > Severity::Debug);
    }

    #[test]
    fn round_trip_all() {
        for s in Severity::ALL {
            assert_eq!(s.as_str().parse::<Severity>().unwrap(), s);
        }
    }

    #[test]
    fn warn_alias_accepted() {
        assert_eq!("WARN".parse::<Severity>().unwrap(), Severity::Warning);
    }

    #[test]
    fn unknown_rejected() {
        let e = "CRITICAL".parse::<Severity>().unwrap_err();
        assert!(e.to_string().contains("CRITICAL"));
    }
}
