//! Parallel, zero-copy ingestion of RAS log text.
//!
//! The streaming [`crate::RasReader`] pays one `read_line` (with UTF-8
//! validation and a `String` copy) per record. At paper scale — two million
//! records — that serial front door dominates end-to-end latency now that the
//! analysis stages run concurrently. This module takes the whole log as one
//! in-memory byte buffer, splits it into newline-aligned chunks
//! ([`bgp_model::bytes::line_chunks`]), and parses the chunks on scoped
//! threads with the allocation-free byte parser
//! ([`crate::parse::parse_line_bytes`]).
//!
//! ## Equivalence contract
//!
//! For valid-UTF-8 input, [`parse_log_bytes`] is *bit-identical* to draining
//! a [`crate::RasReader`] over the same bytes: same records in the same
//! order, same errors with the same global 1-based line numbers (blank lines
//! are counted but skipped, trailing `\r` runs are trimmed, text after the
//! last newline counts as a final line). The integration tests pin this
//! record-for-record and error-for-error. Input with invalid UTF-8 *outside
//! parsed fields* (e.g. binary garbage in MESSAGE) still parses here, whereas
//! the streaming reader reports an I/O error — the only intentional
//! divergence, since rejecting a record for bytes the parser never inspects
//! helps nobody.

use crate::parse::{parse_line_bytes, RasParseError};
use crate::record::RasRecord;
use bgp_model::bytes::{find_byte, line_chunks, map_chunks_parallel};

/// Per-chunk parse output, with chunk-local line numbers.
struct ChunkOut {
    records: Vec<RasRecord>,
    errors: Vec<RasParseError>,
    lines: u64,
}

fn parse_chunk(chunk: &[u8]) -> ChunkOut {
    let mut out = ChunkOut {
        // Records vastly outnumber errors in real logs; size for ~90 bytes
        // per line to keep reallocation off the hot path.
        records: Vec::with_capacity(chunk.len() / 90 + 1),
        errors: Vec::new(),
        lines: 0,
    };
    let mut rest = chunk;
    while !rest.is_empty() {
        let line = match find_byte(b'\n', rest) {
            Some(i) => {
                let line = &rest[..i];
                rest = &rest[i + 1..];
                line
            }
            None => {
                let line = rest;
                rest = &rest[rest.len()..];
                line
            }
        };
        out.lines += 1;
        let mut line = line;
        while let [head @ .., b'\r'] = line {
            line = head;
        }
        if line.is_empty() {
            continue;
        }
        match parse_line_bytes(line) {
            Ok(r) => out.records.push(r),
            Err(mut e) => {
                e.line = out.lines;
                out.errors.push(e);
            }
        }
    }
    out
}

/// Parse a whole RAS log held in memory, tolerantly, on up to `threads`
/// scoped worker threads (`0` and `1` both mean "parse inline").
///
/// Returns the records in input order and the malformed lines with their
/// global 1-based line numbers — exactly what
/// [`crate::RasReader::read_tolerant`] returns for the same bytes.
pub fn parse_log_bytes(data: &[u8], threads: usize) -> (Vec<RasRecord>, Vec<RasParseError>) {
    let chunks = line_chunks(data, threads);
    let parts = map_chunks_parallel(&chunks, |c| parse_chunk(c));
    let total: usize = parts.iter().map(|p| p.records.len()).sum();
    let mut records = Vec::with_capacity(total);
    let mut errors = Vec::new();
    let mut line_offset = 0u64;
    for part in parts {
        for mut e in part.errors {
            e.line += line_offset;
            errors.push(e);
        }
        records.extend(part.records);
        line_offset += part.lines;
    }
    (records, errors)
}

/// Strict variant of [`parse_log_bytes`]: fail on the first malformed line
/// (by global line number), like [`crate::RasReader::read_strict`].
pub fn parse_log_bytes_strict(
    data: &[u8],
    threads: usize,
) -> Result<Vec<RasRecord>, RasParseError> {
    let (records, errors) = parse_log_bytes(data, threads);
    match errors.into_iter().next() {
        None => Ok(records),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::RasReader;
    use crate::write::format_record;
    use crate::Catalog;
    use bgp_model::Timestamp;
    use proptest::prelude::*;

    fn record(recid: u64) -> RasRecord {
        RasRecord::new(
            recid,
            Timestamp::from_unix(1_236_000_000 + recid as i64),
            "R12-M1-N07-J03".parse().unwrap(),
            Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap(),
        )
    }

    fn assert_equivalent(text: &[u8], threads: usize) {
        let (serial_recs, serial_errs) = match std::str::from_utf8(text) {
            Ok(_) => RasReader::new(text).read_tolerant(),
            Err(_) => return, // streaming reader can't represent this input
        };
        let (recs, errs) = parse_log_bytes(text, threads);
        assert_eq!(recs, serial_recs, "records diverge at threads={threads}");
        assert_eq!(errs, serial_errs, "errors diverge at threads={threads}");
    }

    #[test]
    fn matches_serial_reader_across_chunk_counts() {
        let mut text = String::new();
        for i in 0..100 {
            if i % 7 == 0 {
                text.push_str("not a record\n");
            }
            if i % 13 == 0 {
                text.push('\n'); // blank line: counted, skipped
            }
            text.push_str(&format_record(&record(i)));
            text.push('\n');
        }
        text.push_str("truncated final line with no newline");
        for threads in [0, 1, 2, 3, 7, 16] {
            assert_equivalent(text.as_bytes(), threads);
        }
    }

    #[test]
    fn crlf_and_empty_variants() {
        let good = format_record(&record(1));
        for text in [
            format!("{good}\r\n{good}\r\n"),
            format!("{good}\n\r\n{good}"),
            "\n\n\n".to_owned(),
            String::new(),
            format!("{good}\r\r\n"),
        ] {
            for threads in [1, 2, 5] {
                assert_equivalent(text.as_bytes(), threads);
            }
        }
    }

    #[test]
    fn strict_matches_first_error() {
        let good = format_record(&record(1));
        let text = format!("{good}\ngarbage\nmore garbage\n");
        let e = parse_log_bytes_strict(text.as_bytes(), 4).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(
            parse_log_bytes_strict(format!("{good}\n").as_bytes(), 4)
                .unwrap()
                .len(),
            1
        );
    }

    /// One line of input for the boundary proptest.
    fn arb_line() -> impl Strategy<Value = String> {
        prop_oneof![
            (0u64..1000).prop_map(|i| format_record(&record(i))),
            (0u8..1).prop_map(|_| String::new()),
            (0u8..1).prop_map(|_| "garbage with | pipes".to_owned()),
            (0u8..1).prop_map(|_| "\r".to_owned()),
            // Multi-byte UTF-8 in the MESSAGE field.
            (0u64..1000).prop_map(|i| format!("{} — ünïcode ☃", format_record(&record(i)))),
            // Short ASCII noise with embedded pipes.
            collection::vec(0u8..27, 0..12).prop_map(|v| {
                v.iter()
                    .map(|&i| if i == 26 { '|' } else { char::from(b'a' + i) })
                    .collect()
            }),
        ]
    }

    proptest! {
        #[test]
        fn equivalence_over_nasty_boundaries(
            lines in collection::vec(arb_line(), 0..40),
            crlf in 0u8..2,
            final_newline in 0u8..2,
            threads in 1usize..8,
        ) {
            let sep = if crlf == 1 { "\r\n" } else { "\n" };
            let mut text = lines.join(sep);
            if final_newline == 1 && !text.is_empty() {
                text.push_str(sep);
            }
            assert_equivalent(text.as_bytes(), threads);
        }
    }
}
