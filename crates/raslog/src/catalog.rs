//! The error-code catalogue: every ERRCODE the log can contain.
//!
//! The Intrepid RAS log reports FATAL events under **82 distinct ERRCODEs**
//! drawn from six components (Section III-B of the paper). We reproduce a
//! catalogue of the same size and composition: the paper's named codes
//! (`BULK_POWER_FATAL`, `_bgp_err_torus_fatal_sum`,
//! `_bgp_err_cns_ras_storm_fatal`, `CiodHungProxy`, `bg_code_script_error`,
//! the L1-parity / DDR-controller / file-system-configuration / link-card
//! system failures, the invalid-memory / out-of-memory / file-system /
//! collective application errors) plus a realistic long tail, along with a
//! set of non-FATAL background codes (ECC warnings, boot progress, …) that
//! provide the log's bulk volume.
//!
//! A [`ErrCode`] is an index into the catalogue; records store the index, and
//! everything static about a code (component, subcomponent, default
//! severity, MSG_ID, message template) lives here exactly once.
//!
//! Note the catalogue is *descriptive*, not semantic: it says what a code
//! looks like in the log, never whether it is "really" a system failure or an
//! application error — discovering that is the co-analysis' job, and the
//! ground truth lives only in the simulator's fault model.

use crate::component::Component;
use crate::severity::Severity;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// A compact reference to a catalogue entry (the ERRCODE of a record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ErrCode(pub u16);

impl ErrCode {
    /// The dense index of this code in the catalogue.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Catalog::standard().info(*self).name)
    }
}

/// Everything static about one error code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeInfo {
    /// The ERRCODE token as it appears in the log.
    pub name: &'static str,
    /// Reporting component.
    pub component: Component,
    /// Functional area within the component (SUBCOMPONENT field).
    pub subcomponent: &'static str,
    /// Severity this code is reported at.
    pub severity: Severity,
    /// MSG_ID, e.g. `KERN_0807` (component prefix + catalogue ordinal).
    pub msg_id: String,
    /// MESSAGE template written to the log.
    pub template: &'static str,
}

/// The error-code catalogue.
#[derive(Debug)]
pub struct Catalog {
    entries: Vec<CodeInfo>,
    by_name: HashMap<&'static str, ErrCode>,
}

/// `(name, component, subcomponent, severity, message template)` rows for
/// the standard catalogue. FATAL rows first (all 82), then background codes.
type Row = (
    &'static str,
    Component,
    &'static str,
    Severity,
    &'static str,
);

use Component as C;
use Severity as S;

/// The 82 FATAL codes plus 14 background codes, then the synthetic
/// `syslog_*` facility namespace used by the generic syslog adapter.
#[rustfmt::skip]
static TABLE: &[Row] = &[
    // ------ kernel-reported application-side crashes (the co-analysis will
    // have to *discover* these are application errors) ------
    ("_bgp_err_app_invalid_mem_addr", C::Kernel, "CNS", S::Fatal,
     "Kernel detected invalid memory address in application TLB miss handler"),
    ("_bgp_err_app_out_of_memory", C::Kernel, "CNS", S::Fatal,
     "Out of memory in application heap region: brk() beyond persistent limit"),
    ("_bgp_err_fs_operation_error", C::Kernel, "CIOD", S::Fatal,
     "CIOD file system operation failed: invalid request from compute node"),
    ("_bgp_err_collective_op_error", C::Kernel, "MPI", S::Fatal,
     "Collective operation mismatch detected on tree network"),
    ("CiodHungProxy", C::Kernel, "CIOD", S::Fatal,
     "CIOD proxy hung waiting for file system response"),
    ("bg_code_script_error", C::Kernel, "CIOD", S::Fatal,
     "Job control script error in shared file system"),
    ("_bgp_err_app_alignment_trap", C::Kernel, "CNS", S::Fatal,
     "Alignment exception in application code"),
    ("_bgp_err_mpi_abort", C::Kernel, "MPI", S::Fatal,
     "MPI_Abort called by rank on communicator"),
    // ------ fatal-labeled but transient in practice (Observation 1) ------
    ("BULK_POWER_FATAL", C::Card, "PALOMINO_B", S::Fatal,
     "An error was detected in a bulk power module: environmental reading out of range"),
    ("_bgp_err_torus_fatal_sum", C::Kernel, "TORUS", S::Fatal,
     "Torus fatal summary: retransmission threshold crossed, recovered by protocol"),
    // ------ interruption-related system failures ------
    ("_bgp_err_cns_ras_storm_fatal", C::Kernel, "CNS", S::Fatal,
     "L1 data cache parity error: RAS storm from compute node kernel"),
    ("_bgp_err_ddr_controller", C::Kernel, "_bgp_unit_ddr", S::Fatal,
     "DDR controller error: uncorrectable chipkill event"),
    ("_bgp_err_fs_config", C::Kernel, "CIOD", S::Fatal,
     "File system configuration error: mount map inconsistent"),
    ("_bgp_err_linkcard_failure", C::Card, "PALOMINO_L", S::Fatal,
     "Link card failure: optical module loss of signal"),
    ("_bgp_err_kernel_panic", C::Kernel, "CNS", S::Fatal,
     "Compute node kernel panic: unhandled machine check"),
    ("_bgp_err_torus_sender_fifo", C::Kernel, "TORUS", S::Fatal,
     "Torus sender FIFO parity error"),
    ("_bgp_err_torus_receiver_parity", C::Kernel, "TORUS", S::Fatal,
     "Torus receiver header parity error"),
    ("_bgp_err_collective_net_hw", C::Kernel, "COLLECTIVE", S::Fatal,
     "Collective network hardware error: class route corrupt"),
    ("_bgp_err_ionode_crash", C::Kernel, "CIOD", S::Fatal,
     "I/O node crashed: CIOD heartbeat lost"),
    ("_bgp_err_gpfs_mount_failure", C::Kernel, "CIOD", S::Fatal,
     "GPFS mount failure on I/O node"),
    ("_bgp_err_node_ecc_uncorrectable", C::Kernel, "_bgp_unit_ddr", S::Fatal,
     "Uncorrectable ECC error in compute node DRAM"),
    ("_bgp_err_l2_cache_failure", C::Kernel, "CNS", S::Fatal,
     "L2 cache failure: persistent line error"),
    ("_bgp_err_l3_edram_failure", C::Kernel, "CNS", S::Fatal,
     "L3 eDRAM failure: bank disabled"),
    ("_bgp_err_fpu_unavailable", C::Kernel, "CNS", S::Fatal,
     "Double hummer FPU unavailable exception"),
    ("_bgp_err_nodecard_power", C::Card, "PALOMINO_N", S::Fatal,
     "Node card power domain fault"),
    ("_bgp_err_servicecard_comm", C::Card, "PALOMINO_S", S::Fatal,
     "Service card communication failure"),
    ("DetectedClockCardErrors", C::Card, "PALOMINO_S", S::Fatal,
     "An error(s) was detected by the Clock card : Error=Loss of reference input"),
    ("_bgp_err_mmcs_boot_failure", C::Mmcs, "MMCS_SERVER", S::Fatal,
     "Partition boot failed: block initialization error"),
    ("_bgp_err_mmcs_db_connection", C::Mmcs, "DB2", S::Fatal,
     "MMCS lost connection to backend DB2 database"),
    ("_bgp_err_mc_timeout", C::Mc, "MCSERVER", S::Fatal,
     "Machine controller command timeout"),
    ("_bgp_err_baremetal_svc", C::Baremetal, "SVC", S::Fatal,
     "Bare metal service operation failed"),
    ("_bgp_err_io_collective_sync", C::Kernel, "COLLECTIVE", S::Fatal,
     "I/O collective synchronization lost"),
    ("_bgp_err_eth_10g_link_down", C::Kernel, "ETH", S::Fatal,
     "10-Gigabit Ethernet link down on I/O node"),
    // ------ the long tail: codes that (in the Intrepid window) fired only on
    // idle hardware, leaving their impact undetermined (49 codes) ------
    ("_bgp_err_diag_memory_stress", C::Diags, "MEMDIAG", S::Fatal,
     "Diagnostic memory stress test failed"),
    ("_bgp_err_diag_torus_loopback", C::Diags, "NETDIAG", S::Fatal,
     "Diagnostic torus loopback test failed"),
    ("_bgp_err_diag_lane_calibration", C::Diags, "NETDIAG", S::Fatal,
     "Diagnostic SerDes lane calibration failed"),
    ("_bgp_err_diag_clock_jitter", C::Diags, "CLKDIAG", S::Fatal,
     "Diagnostic clock jitter out of tolerance"),
    ("_bgp_err_diag_power_rail", C::Diags, "PWRDIAG", S::Fatal,
     "Diagnostic power rail margin test failed"),
    ("_bgp_err_diag_thermal_sensor", C::Diags, "ENVDIAG", S::Fatal,
     "Diagnostic thermal sensor readout invalid"),
    ("_bgp_err_diag_sram_bist", C::Diags, "MEMDIAG", S::Fatal,
     "Diagnostic SRAM built-in self test failed"),
    ("_bgp_err_diag_eth_phy", C::Diags, "NETDIAG", S::Fatal,
     "Diagnostic Ethernet PHY test failed"),
    ("_bgp_err_card_temp_over", C::Card, "PALOMINO_S", S::Fatal,
     "Card temperature exceeded critical threshold"),
    ("_bgp_err_card_fan_failure", C::Card, "PALOMINO_S", S::Fatal,
     "Fan assembly failure detected"),
    ("_bgp_err_card_voltage_dip", C::Card, "PALOMINO_B", S::Fatal,
     "Bulk power voltage dip below regulation"),
    ("_bgp_err_card_current_spike", C::Card, "PALOMINO_B", S::Fatal,
     "Bulk power current spike detected"),
    ("_bgp_err_card_vpd_read", C::Card, "PALOMINO_S", S::Fatal,
     "Vital product data read failure"),
    ("_bgp_err_card_i2c_bus", C::Card, "PALOMINO_S", S::Fatal,
     "I2C bus error on service card"),
    ("_bgp_err_card_jtag_chain", C::Card, "PALOMINO_S", S::Fatal,
     "JTAG chain integrity error"),
    ("_bgp_err_card_power_seq", C::Card, "PALOMINO_N", S::Fatal,
     "Node card power sequencing fault"),
    ("_bgp_err_mc_heartbeat_lost", C::Mc, "MCSERVER", S::Fatal,
     "Machine controller heartbeat lost"),
    ("_bgp_err_mc_fw_checksum", C::Mc, "MCSERVER", S::Fatal,
     "Firmware image checksum mismatch"),
    ("_bgp_err_mc_cmd_reject", C::Mc, "MCSERVER", S::Fatal,
     "Machine controller rejected malformed command"),
    ("_bgp_err_mc_env_poll", C::Mc, "ENVMON", S::Fatal,
     "Environmental polling failure"),
    ("_bgp_err_mmcs_block_free", C::Mmcs, "MMCS_SERVER", S::Fatal,
     "Block free operation failed"),
    ("_bgp_err_mmcs_console_lost", C::Mmcs, "MMCS_SERVER", S::Fatal,
     "Mailbox console connection lost"),
    ("_bgp_err_mmcs_event_overflow", C::Mmcs, "MMCS_SERVER", S::Fatal,
     "RAS event queue overflow in control system"),
    ("_bgp_err_mmcs_partition_state", C::Mmcs, "MMCS_SERVER", S::Fatal,
     "Partition state machine inconsistency"),
    ("_bgp_err_baremetal_flash", C::Baremetal, "SVC", S::Fatal,
     "Flash update failed on service node"),
    ("_bgp_err_baremetal_netboot", C::Baremetal, "SVC", S::Fatal,
     "Network boot image load failure"),
    ("_bgp_err_baremetal_fw_load", C::Baremetal, "SVC", S::Fatal,
     "Firmware load failure"),
    ("_bgp_err_kernel_rtc_drift", C::Kernel, "CNS", S::Fatal,
     "Real-time clock drift beyond correction limit"),
    ("_bgp_err_kernel_tlb_parity", C::Kernel, "CNS", S::Fatal,
     "TLB parity error"),
    ("_bgp_err_kernel_dcr_timeout", C::Kernel, "CNS", S::Fatal,
     "DCR access timeout"),
    ("_bgp_err_kernel_bic_interrupt", C::Kernel, "CNS", S::Fatal,
     "BIC spurious interrupt storm"),
    ("_bgp_err_kernel_upc_overflow", C::Kernel, "CNS", S::Fatal,
     "Universal performance counter overflow fault"),
    ("_bgp_err_kernel_snoop_filter", C::Kernel, "CNS", S::Fatal,
     "Snoop filter error"),
    ("_bgp_err_kernel_dma_fifo", C::Kernel, "TORUS", S::Fatal,
     "DMA injection FIFO error"),
    ("_bgp_err_kernel_lockbox", C::Kernel, "CNS", S::Fatal,
     "Lockbox allocation failure"),
    ("_bgp_err_kernel_mailbox_timeout", C::Kernel, "CNS", S::Fatal,
     "Mailbox to service node timeout"),
    ("_bgp_err_kernel_barrier_net", C::Kernel, "COLLECTIVE", S::Fatal,
     "Global barrier network error"),
    ("_bgp_err_kernel_global_int", C::Kernel, "COLLECTIVE", S::Fatal,
     "Global interrupt wire stuck"),
    ("_bgp_err_kernel_serdes_retrain", C::Kernel, "TORUS", S::Fatal,
     "SerDes link retrain limit exceeded"),
    ("_bgp_err_diag_ddr_margin", C::Diags, "MEMDIAG", S::Fatal,
     "Diagnostic DDR timing margin test failed"),
    ("_bgp_err_diag_cache_scrub", C::Diags, "MEMDIAG", S::Fatal,
     "Diagnostic cache scrub found persistent error"),
    ("_bgp_err_diag_netbist", C::Diags, "NETDIAG", S::Fatal,
     "Diagnostic network BIST failure"),
    ("_bgp_err_diag_pll_lock", C::Diags, "CLKDIAG", S::Fatal,
     "Diagnostic PLL failed to lock"),
    ("_bgp_err_card_clock_mux", C::Card, "PALOMINO_S", S::Fatal,
     "Clock multiplexer select error"),
    ("_bgp_err_card_optic_module", C::Card, "PALOMINO_L", S::Fatal,
     "Optical module degraded beyond threshold"),
    ("_bgp_err_mc_scan_chain", C::Mc, "MCSERVER", S::Fatal,
     "Scan chain read error"),
    ("_bgp_err_mmcs_rm_sync", C::Mmcs, "MMCS_SERVER", S::Fatal,
     "Resource manager synchronization failure"),
    ("_bgp_err_baremetal_ipmi", C::Baremetal, "SVC", S::Fatal,
     "IPMI transport failure on service node"),
    ("_bgp_err_kernel_envmon_fatal", C::Kernel, "CNS", S::Fatal,
     "Kernel environmental monitor raised fatal alert"),
    // ------ background (non-FATAL) codes: the log's bulk volume ------
    ("_bgp_info_boot_progress", C::Kernel, "CNS", S::Info,
     "Boot progress: kernel initialized"),
    ("_bgp_info_partition_boot", C::Mmcs, "MMCS_SERVER", S::Info,
     "Partition boot initiated (reboot before execution)"),
    ("_bgp_info_job_start", C::Mmcs, "MMCS_SERVER", S::Info,
     "Job launched on partition"),
    ("_bgp_info_recovery_progress", C::Mmcs, "MMCS_SERVER", S::Info,
     "Automatic recovery in progress"),
    ("_bgp_warn_ecc_corrected", C::Kernel, "_bgp_unit_ddr", S::Warning,
     "Correctable ECC event (single symbol)"),
    ("_bgp_warn_single_symbol_error", C::Kernel, "_bgp_unit_ddr", S::Warning,
     "Single symbol error corrected by chipkill"),
    ("_bgp_warn_torus_retransmit", C::Kernel, "TORUS", S::Warning,
     "Torus packet retransmission"),
    ("_bgp_warn_temp_high", C::Card, "PALOMINO_S", S::Warning,
     "Temperature approaching threshold"),
    ("_bgp_err_redundant_psu_loss", C::Card, "PALOMINO_B", S::Error,
     "Loss of redundant power supply; running unprotected"),
    ("_bgp_err_link_crc_retry", C::Kernel, "TORUS", S::Error,
     "Link CRC error retry threshold warning"),
    ("_bgp_err_io_retry_exhausted", C::Kernel, "CIOD", S::Error,
     "I/O retry budget exhausted; degraded mode"),
    ("_bgp_warn_fan_speed", C::Card, "PALOMINO_S", S::Warning,
     "Fan speed outside nominal band"),
    ("_bgp_info_env_poll", C::Mc, "ENVMON", S::Info,
     "Environmental polling cycle complete"),
    ("_bgp_err_spare_bit_steer", C::Kernel, "_bgp_unit_ddr", S::Error,
     "Spare DRAM bit steering activated"),
    // ------ synthetic syslog namespace (bgp-ports syslog adapter) ------
    // One code per RFC 3164 facility, appended AFTER every BG/P code so the
    // dense ErrCode indices of the original catalogue never move (snapshot
    // compatibility). The row severity is only the *default*; the adapter
    // carries the per-message syslog severity on the record itself.
    ("syslog_kern", C::Application, "SYSLOG", S::Info, "syslog facility kern"),
    ("syslog_user", C::Application, "SYSLOG", S::Info, "syslog facility user"),
    ("syslog_mail", C::Application, "SYSLOG", S::Info, "syslog facility mail"),
    ("syslog_daemon", C::Application, "SYSLOG", S::Info, "syslog facility daemon"),
    ("syslog_auth", C::Application, "SYSLOG", S::Info, "syslog facility auth"),
    ("syslog_syslog", C::Application, "SYSLOG", S::Info, "syslog facility syslog"),
    ("syslog_lpr", C::Application, "SYSLOG", S::Info, "syslog facility lpr"),
    ("syslog_news", C::Application, "SYSLOG", S::Info, "syslog facility news"),
    ("syslog_uucp", C::Application, "SYSLOG", S::Info, "syslog facility uucp"),
    ("syslog_cron", C::Application, "SYSLOG", S::Info, "syslog facility cron"),
    ("syslog_authpriv", C::Application, "SYSLOG", S::Info, "syslog facility authpriv"),
    ("syslog_ftp", C::Application, "SYSLOG", S::Info, "syslog facility ftp"),
    ("syslog_ntp", C::Application, "SYSLOG", S::Info, "syslog facility ntp"),
    ("syslog_audit", C::Application, "SYSLOG", S::Info, "syslog facility audit"),
    ("syslog_alert", C::Application, "SYSLOG", S::Info, "syslog facility alert"),
    ("syslog_clock", C::Application, "SYSLOG", S::Info, "syslog facility clock"),
    ("syslog_local0", C::Application, "SYSLOG", S::Info, "syslog facility local0"),
    ("syslog_local1", C::Application, "SYSLOG", S::Info, "syslog facility local1"),
    ("syslog_local2", C::Application, "SYSLOG", S::Info, "syslog facility local2"),
    ("syslog_local3", C::Application, "SYSLOG", S::Info, "syslog facility local3"),
    ("syslog_local4", C::Application, "SYSLOG", S::Info, "syslog facility local4"),
    ("syslog_local5", C::Application, "SYSLOG", S::Info, "syslog facility local5"),
    ("syslog_local6", C::Application, "SYSLOG", S::Info, "syslog facility local6"),
    ("syslog_local7", C::Application, "SYSLOG", S::Info, "syslog facility local7"),
];

impl Catalog {
    /// The standard Intrepid-like catalogue (shared singleton).
    pub fn standard() -> &'static Catalog {
        static INSTANCE: OnceLock<Catalog> = OnceLock::new();
        INSTANCE.get_or_init(|| {
            let entries: Vec<CodeInfo> = TABLE
                .iter()
                .enumerate()
                .map(
                    |(i, &(name, component, subcomponent, severity, template))| CodeInfo {
                        name,
                        component,
                        subcomponent,
                        severity,
                        msg_id: format!("{}_{:04}", component.msg_id_prefix(), i),
                        template,
                    },
                )
                .collect();
            let by_name = entries
                .iter()
                .enumerate()
                .map(|(i, e)| (e.name, ErrCode(i as u16)))
                .collect();
            Catalog { entries, by_name }
        })
    }

    /// Number of codes in the catalogue.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Never true for the standard catalogue.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Static information for a code.
    ///
    /// # Panics
    /// Panics if `code` is out of range for this catalogue (codes are only
    /// minted by [`Catalog::lookup`] / [`Catalog::codes`], so an out-of-range
    /// code is a logic error, not an input error).
    pub fn info(&self, code: ErrCode) -> &CodeInfo {
        &self.entries[code.index()]
    }

    /// Resolve a code by its ERRCODE token.
    pub fn lookup(&self, name: &str) -> Option<ErrCode> {
        self.by_name.get(name).copied()
    }

    /// Iterate over all codes.
    pub fn codes(&self) -> impl Iterator<Item = ErrCode> + '_ {
        (0..self.entries.len()).map(|i| ErrCode(i as u16))
    }

    /// Iterate over the codes reported at FATAL severity.
    pub fn fatal_codes(&self) -> impl Iterator<Item = ErrCode> + '_ {
        self.codes()
            .filter(|&c| self.info(c).severity == Severity::Fatal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_82_fatal_codes() {
        // The paper: "33,370 records with FATAL severity ... reported with 82
        // types of ERRCODE from six types of COMPONENT".
        let cat = Catalog::standard();
        assert_eq!(cat.fatal_codes().count(), 82);
        let components: std::collections::HashSet<Component> =
            cat.fatal_codes().map(|c| cat.info(c).component).collect();
        assert_eq!(components.len(), 6, "fatal codes span six components");
        // No FATAL from the APPLICATION domain (paper, Section IV-B).
        assert!(!components.contains(&Component::Application));
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let cat = Catalog::standard();
        assert!(!cat.is_empty());
        let mut seen = std::collections::HashSet::new();
        for code in cat.codes() {
            let info = cat.info(code);
            assert!(seen.insert(info.name), "duplicate name {}", info.name);
            assert_eq!(cat.lookup(info.name), Some(code));
        }
        assert_eq!(cat.lookup("no_such_code"), None);
        assert_eq!(seen.len(), cat.len());
    }

    #[test]
    fn paper_named_codes_present() {
        let cat = Catalog::standard();
        for name in [
            "BULK_POWER_FATAL",
            "_bgp_err_torus_fatal_sum",
            "_bgp_err_cns_ras_storm_fatal",
            "CiodHungProxy",
            "bg_code_script_error",
            "_bgp_err_ddr_controller",
            "_bgp_err_fs_config",
            "_bgp_err_linkcard_failure",
            "_bgp_err_app_invalid_mem_addr",
            "_bgp_err_app_out_of_memory",
            "DetectedClockCardErrors",
        ] {
            let code = cat.lookup(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(cat.info(code).severity, Severity::Fatal);
        }
    }

    #[test]
    fn msg_ids_match_component_prefix() {
        let cat = Catalog::standard();
        for code in cat.codes() {
            let info = cat.info(code);
            assert!(
                info.msg_id.starts_with(info.component.msg_id_prefix()),
                "{} has msg_id {}",
                info.name,
                info.msg_id
            );
        }
    }

    #[test]
    fn errcode_display_uses_name() {
        let cat = Catalog::standard();
        let code = cat.lookup("BULK_POWER_FATAL").unwrap();
        assert_eq!(code.to_string(), "BULK_POWER_FATAL");
    }

    #[test]
    fn background_codes_not_fatal() {
        let cat = Catalog::standard();
        let code = cat.lookup("_bgp_warn_ecc_corrected").unwrap();
        assert_eq!(cat.info(code).severity, Severity::Warning);
        let code = cat.lookup("_bgp_info_partition_boot").unwrap();
        assert_eq!(cat.info(code).severity, Severity::Info);
    }
}
