//! The COMPONENT field: which software layer reported the event.

use std::fmt;
use std::str::FromStr;

/// The software component that detected and reported a RAS event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Component {
    /// The running job itself. (The paper notes that *no* FATAL event in the
    /// Intrepid log is reported from this domain — which is precisely why the
    /// COMPONENT field cannot separate application errors from system
    /// failures, motivating co-analysis.)
    Application = 0,
    /// The compute/I-O node OS kernel domain (75 % of fatal events).
    Kernel = 1,
    /// The machine controller.
    Mc = 2,
    /// The control system on the service node.
    Mmcs = 3,
    /// Service-related facilities.
    Baremetal = 4,
    /// Card controllers (service cards, link cards, bulk power...).
    Card = 5,
    /// Diagnostic functions on compute or service nodes.
    Diags = 6,
}

impl Component {
    /// All components.
    pub const ALL: [Component; 7] = [
        Component::Application,
        Component::Kernel,
        Component::Mc,
        Component::Mmcs,
        Component::Baremetal,
        Component::Card,
        Component::Diags,
    ];

    /// The log-file token.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::Application => "APPLICATION",
            Component::Kernel => "KERNEL",
            Component::Mc => "MC",
            Component::Mmcs => "MMCS",
            Component::Baremetal => "BAREMETAL",
            Component::Card => "CARD",
            Component::Diags => "DIAGS",
        }
    }

    /// The four-letter MSG_ID prefix used by this component
    /// (e.g. `KERN_0807`, `CARD_0411`).
    pub fn msg_id_prefix(self) -> &'static str {
        match self {
            Component::Application => "APPL",
            Component::Kernel => "KERN",
            Component::Mc => "MCTL",
            Component::Mmcs => "MMCS",
            Component::Baremetal => "BMTL",
            Component::Card => "CARD",
            Component::Diags => "DIAG",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Component {
    type Err = UnknownComponent;

    fn from_str(s: &str) -> Result<Component, UnknownComponent> {
        Ok(match s {
            "APPLICATION" => Component::Application,
            "KERNEL" => Component::Kernel,
            "MC" => Component::Mc,
            "MMCS" => Component::Mmcs,
            "BAREMETAL" => Component::Baremetal,
            "CARD" => Component::Card,
            "DIAGS" => Component::Diags,
            _ => return Err(UnknownComponent(s.to_owned())),
        })
    }
}

/// Error for an unrecognized component token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownComponent(
    /// The offending token.
    pub String,
);

impl fmt::Display for UnknownComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown component {:?}", self.0)
    }
}

impl std::error::Error for UnknownComponent {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all() {
        for c in Component::ALL {
            assert_eq!(c.as_str().parse::<Component>().unwrap(), c);
        }
    }

    #[test]
    fn prefixes_are_four_chars_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Component::ALL {
            assert_eq!(c.msg_id_prefix().len(), 4);
            assert!(seen.insert(c.msg_id_prefix()), "duplicate prefix");
        }
    }

    #[test]
    fn unknown_rejected() {
        assert!("LINUX".parse::<Component>().is_err());
    }
}
