//! A hand-rolled, dependency-free HTTP/1.1 front-end on `std::net`.
//!
//! Deliberately minimal: every response closes the connection, request
//! bodies are ignored, and only the request line is parsed. That is enough
//! for `curl`, Prometheus scrapes, and the integration tests, without
//! pulling a web framework into a log-analysis workspace.
//!
//! Routes:
//!
//! | route       | payload                                              |
//! |-------------|------------------------------------------------------|
//! | `/healthz`  | `ok` (text)                                          |
//! | `/metrics`  | Prometheus text exposition of the metrics registry   |
//! | `/events`   | JSON array of the recent-events ring                 |
//! | `/summary`  | JSON object of the merged stream counters            |
//! | `/analysis` | the full co-analysis report (with `--full-analysis`) |
//! | `/shutdown` | requests graceful shutdown (GET or POST)             |
//!
//! Robustness: request heads are capped at 8 KiB, reads and writes carry
//! timeouts, and a client too slow to take its response is disconnected
//! and counted in `http_slow_disconnects_total`.

use crate::full::FullAnalysis;
use crate::metrics::{Registry, ServeMetrics};
use crate::ring::EventRing;
use crate::server::Shutdown;
use crate::shard::ShardPool;
use crate::source::POLL_SLEEP;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest request head (request line + headers) we accept.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Shared state the front-end serves from.
#[derive(Debug, Clone)]
pub(crate) struct HttpState {
    pub registry: Arc<Registry>,
    pub ring: Arc<EventRing>,
    pub pool: Arc<ShardPool>,
    pub metrics: Arc<ServeMetrics>,
    pub shutdown: Arc<Shutdown>,
    pub full: Option<Arc<FullAnalysis>>,
    pub read_timeout: Duration,
    pub write_timeout: Duration,
}

/// A response ready to serialize.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type,
            body,
        }
    }

    fn plain(status: u16, reason: &'static str, body: &str) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: body.to_owned(),
        }
    }
}

/// Render the `/summary` JSON from the merged shard counters plus the
/// ingest/HTTP side-channel counters.
pub(crate) fn summary_json(state: &HttpState) -> String {
    let c = state.pool.counters();
    let m = &state.metrics;
    format!(
        "{{\"records_in\":{},\"fatal_in\":{},\"merged_temporal\":{},\"merged_spatial\":{},\
         \"events_out\":{},\"warnings\":{},\"rejected_malformed\":{},\"rejected_oversized\":{},\
         \"backpressure_stalls\":{},\"queue_depth\":{},\"shards\":{},\"ring_events\":{},\
         \"ingest_connections\":{},\"http_requests\":{},\"draining\":{}}}",
        c.records_in,
        c.fatal_in,
        c.merged_temporal,
        c.merged_spatial,
        c.events_out,
        c.warnings,
        m.rejected_malformed.get(),
        m.rejected_oversized.get(),
        m.backpressure_stalls.get(),
        m.queue_depth.get(),
        state.pool.shards(),
        state.ring.total_pushed(),
        m.ingest_connections.get(),
        m.http_requests.get(),
        state.shutdown.requested(),
    )
}

/// Parse the request line out of a raw head. `None` means unparsable.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/") {
        return None;
    }
    Some((method, target))
}

fn route(state: &HttpState, method: &str, target: &str) -> Response {
    // Strip any query string; the routes take no parameters.
    let path = target.split('?').next().unwrap_or(target);
    if method != "GET" && !(method == "POST" && path == "/shutdown") {
        return Response::plain(405, "Method Not Allowed", "method not allowed\n");
    }
    match path {
        "/healthz" => Response::ok("text/plain; charset=utf-8", "ok\n".to_owned()),
        "/metrics" => Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            state.registry.render_prometheus(),
        ),
        "/events" => Response::ok("application/json", state.ring.to_json()),
        "/summary" => Response::ok("application/json", summary_json(state)),
        "/analysis" => match &state.full {
            Some(full) => Response::ok("text/plain; charset=utf-8", full.snapshot().render()),
            None => Response::plain(
                404,
                "Not Found",
                "full analysis not enabled (start with --full-analysis --jobs FILE)\n",
            ),
        },
        "/shutdown" => {
            state.shutdown.request();
            Response::ok("text/plain; charset=utf-8", "shutting down\n".to_owned())
        }
        _ => Response::plain(404, "Not Found", "not found\n"),
    }
}

/// Read the request head: until `\r\n\r\n`, EOF, the size cap, or timeout.
fn read_head(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(head);
        }
        if let Some(chunk) = buf.get(..n) {
            head.extend_from_slice(chunk);
        }
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            return Ok(head);
        }
        if head.len() >= MAX_REQUEST_BYTES {
            return Ok(head);
        }
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let headers = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        resp.reason,
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(headers.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// Serve one connection: read the head, route, write, close.
fn handle_http_conn(mut stream: TcpStream, state: &HttpState) {
    let _ = stream.set_read_timeout(Some(state.read_timeout));
    let _ = stream.set_write_timeout(Some(state.write_timeout));
    let started = std::time::Instant::now();
    let head = match read_head(&mut stream) {
        Ok(h) => h,
        Err(_) => {
            // The request never arrived in time: a slow (or silent) client.
            state.metrics.slow_disconnects.inc();
            return;
        }
    };
    state.metrics.http_requests.inc();
    let resp = match std::str::from_utf8(&head).ok().and_then(parse_request_line) {
        Some((method, target)) => route(state, method, target),
        None => Response::plain(400, "Bad Request", "bad request\n"),
    };
    if write_response(&mut stream, &resp).is_err() {
        // The client did not take its response within the write timeout.
        state.metrics.slow_disconnects.inc();
    }
    let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    state.metrics.http_nanos.observe(nanos);
}

/// Run the HTTP accept loop on its own thread until shutdown.
///
/// Connections are served inline — every handler is bounded by the read and
/// write timeouts, so the worst case head-of-line delay is small and the
/// loop stays at one thread.
pub(crate) fn spawn_http_listener(
    listener: TcpListener,
    state: HttpState,
) -> std::io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    std::thread::Builder::new()
        .name("bgp-serve-http".to_owned())
        .spawn(move || loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Accepted non-blocking; the handler needs real timeouts.
                    let _ = stream.set_nonblocking(false);
                    handle_http_conn(stream, &state);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if state.shutdown.requested_final() {
                        break;
                    }
                    std::thread::sleep(POLL_SLEEP);
                }
                Err(_) => std::thread::sleep(POLL_SLEEP),
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_strictly() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(parse_request_line(""), None);
        assert_eq!(parse_request_line("GET /metrics"), None);
        assert_eq!(parse_request_line("GET  HTTP/1.1"), None);
        assert_eq!(parse_request_line("GET /x FTP/1.0"), None);
    }
}
