//! Recording live ingest into a `.bgpcas` cassette (`--record FILE`).
//!
//! Every byte chunk the ingest sources deliver — TCP reads and tail reads
//! alike, in arrival order, *before* framing — is appended to one shared
//! recorder together with the wall-clock gap since the previous chunk. On
//! shutdown the daemon encodes the cassette and writes it out, so a live
//! session can later be replayed deterministically with `--replay` (or fed
//! to `coctl --format cassette`), chunk boundaries and all.
//!
//! This is the one deliberately clock-reading half of the cassette story:
//! the codec itself ([`bgp_ports::cassette`]) and the replayer
//! ([`crate::replay`]) never touch a clock, so they sit inside the
//! determinism lint scope while this module supplies the `delta_nanos`.

use bgp_ports::cassette::{CassetteError, Recorder, StreamKind};
use bgp_ports::LogFormat;
use std::path::Path;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// A thread-safe chunk recorder shared by every ingest source.
#[derive(Debug)]
pub(crate) struct ChunkRecorder {
    state: Mutex<RecState>,
}

#[derive(Debug)]
struct RecState {
    rec: Recorder,
    last: Option<Instant>,
}

impl ChunkRecorder {
    /// A recorder for a RAS stream in `format` (the daemon's line format).
    pub(crate) fn new(format: LogFormat) -> Result<ChunkRecorder, CassetteError> {
        Ok(ChunkRecorder {
            state: Mutex::new(RecState {
                rec: Recorder::new(format, StreamKind::Ras)?,
                last: None,
            }),
        })
    }

    /// Append one delivered chunk, stamping the gap since the previous one.
    pub(crate) fn observe(&self, chunk: &[u8]) {
        let now = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let delta_nanos = state
            .last
            .map_or(0, |last| now.duration_since(last).as_nanos() as u64);
        state.rec.push(delta_nanos, chunk);
        state.last = Some(now);
    }

    /// Encode the cassette and write it to `path`; returns the frame count.
    pub(crate) fn write_to(&self, path: &Path) -> std::io::Result<usize> {
        let (bytes, frames) = {
            let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            (state.rec.cassette().encode(), state.rec.len())
        };
        std::fs::write(path, bytes)?;
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_ports::cassette::Cassette;

    #[test]
    fn observed_chunks_round_trip_through_the_file() {
        let rec = ChunkRecorder::new(LogFormat::Bgp).expect("bgp is recordable");
        rec.observe(b"one|");
        rec.observe(b"two\n");
        rec.observe(b"");
        let dir = std::env::temp_dir().join(format!("bgp-serve-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("out.bgpcas");
        let frames = rec.write_to(&path).expect("write cassette");
        assert_eq!(frames, 3);
        let cas = Cassette::decode(&std::fs::read(&path).expect("read back")).expect("decodes");
        assert_eq!(cas.format, LogFormat::Bgp);
        assert_eq!(cas.kind, StreamKind::Ras);
        assert_eq!(cas.replay_bytes(), b"one|two\n");
        assert_eq!(cas.frames.len(), 3);
        // The first frame is at delta zero; later gaps are whatever the
        // clock said, but monotonically measured (no panic, no negative).
        assert_eq!(cas.frames[0].delta_nanos, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cassette_format_is_not_recordable() {
        assert!(ChunkRecorder::new(LogFormat::Cassette).is_err());
    }
}
