//! In-process metrics registry: atomic counters, gauges, and fixed-bucket
//! histograms, rendered in the Prometheus text exposition format.
//!
//! The registry is deliberately clock-free — callers that time things (the
//! HTTP front-end, the [`StageTimer`](crate::timing::StageTimer) wrapped
//! around the batch pipeline) read their own clock and `observe` the
//! elapsed value, so this module stays inside the workspace determinism
//! lint scope and the same registry instruments both the daemon and
//! `coctl analyze --timings`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket catches the rest.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

/// Default latency buckets in nanoseconds: 1 µs … 10 s by decades.
pub const LATENCY_BUCKETS_NANOS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let counts = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: sorted,
            counts,
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        // `idx` is in 0..=bounds.len() and counts has bounds.len()+1 slots.
        if let Some(slot) = self.counts.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A named collection of metrics, rendered at `GET /metrics`.
///
/// Registration is idempotent: asking twice for the same name and kind
/// returns the same underlying metric, so independent subsystems can share
/// series without coordinating. Asking for an existing name with a
/// *different* kind is a programming error and returns a fresh, unregistered
/// metric (never a panic): the caller's increments still work, they just
/// don't export.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name {
                if let Metric::Counter(c) = &e.metric {
                    return Arc::clone(c);
                }
                return Arc::new(Counter::default());
            }
        }
        let c = Arc::new(Counter::default());
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            metric: Metric::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name {
                if let Metric::Gauge(g) = &e.metric {
                    return Arc::clone(g);
                }
                return Arc::new(Gauge::default());
            }
        }
        let g = Arc::new(Gauge::default());
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            metric: Metric::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Register (or look up) a histogram with the given bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name {
                if let Metric::Histogram(h) = &e.metric {
                    return Arc::clone(h);
                }
                return Arc::new(Histogram::new(bounds));
            }
        }
        let h = Arc::new(Histogram::new(bounds));
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            metric: Metric::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Current value of a registered counter or gauge, for tests and the
    /// `/summary` endpoint.
    pub fn value(&self, name: &str) -> Option<i64> {
        let entries = self.lock();
        entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| match &e.metric {
                Metric::Counter(c) => i64::try_from(c.get()).unwrap_or(i64::MAX),
                Metric::Gauge(g) => g.get(),
                Metric::Histogram(h) => i64::try_from(h.count()).unwrap_or(i64::MAX),
            })
    }

    /// Render every metric in the Prometheus text exposition format, sorted
    /// by name for stable scrapes.
    pub fn render_prometheus(&self) -> String {
        let entries = self.lock();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            entries
                .get(a)
                .map(|e| e.name.as_str())
                .cmp(&entries.get(b).map(|e| e.name.as_str()))
        });
        let mut out = String::new();
        for i in order {
            let Some(e) = entries.get(i) else { continue };
            match &e.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "# HELP {n} {h}\n# TYPE {n} counter\n{n} {v}\n",
                        n = e.name,
                        h = e.help,
                        v = c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "# HELP {n} {h}\n# TYPE {n} gauge\n{n} {v}\n",
                        n = e.name,
                        h = e.help,
                        v = g.get()
                    ));
                }
                Metric::Histogram(hist) => {
                    out.push_str(&format!(
                        "# HELP {n} {h}\n# TYPE {n} histogram\n",
                        n = e.name,
                        h = e.help
                    ));
                    let mut cumulative = 0u64;
                    for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                        cumulative += count.load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{n}_bucket{{le=\"{bound}\"}} {cumulative}\n",
                            n = e.name
                        ));
                    }
                    out.push_str(&format!(
                        "{n}_bucket{{le=\"+Inf\"}} {t}\n{n}_sum {s}\n{n}_count {t}\n",
                        n = e.name,
                        t = hist.count(),
                        s = hist.sum()
                    ));
                }
            }
        }
        out
    }
}

/// The daemon's standard metric set, registered once and shared by the
/// ingest sources, the shard pool, and the HTTP front-end.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Valid records routed to a shard.
    pub records_in: Arc<Counter>,
    /// FATAL records among them.
    pub fatal_in: Arc<Counter>,
    /// Records absorbed by a temporal window.
    pub merged_temporal: Arc<Counter>,
    /// Records absorbed by a spatial window.
    pub merged_spatial: Arc<Counter>,
    /// Independent events surfaced.
    pub events_out: Arc<Counter>,
    /// Events that warranted a warning.
    pub warnings: Arc<Counter>,
    /// Ingest lines rejected: unparsable.
    pub rejected_malformed: Arc<Counter>,
    /// Ingest lines rejected: longer than the configured limit.
    pub rejected_oversized: Arc<Counter>,
    /// Times a full shard queue stalled an ingest source (backpressure).
    pub backpressure_stalls: Arc<Counter>,
    /// Records currently queued across all shards.
    pub queue_depth: Arc<Gauge>,
    /// Ingest connections accepted.
    pub ingest_connections: Arc<Counter>,
    /// HTTP requests served.
    pub http_requests: Arc<Counter>,
    /// HTTP clients disconnected for being too slow (write timeout).
    pub slow_disconnects: Arc<Counter>,
    /// HTTP request service time, nanoseconds.
    pub http_nanos: Arc<Histogram>,
}

impl ServeMetrics {
    /// Register the standard series on `registry`.
    pub fn register(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            records_in: registry.counter("ingest_records_total", "valid records ingested"),
            fatal_in: registry.counter("ingest_fatal_total", "FATAL records ingested"),
            merged_temporal: registry.counter(
                "merged_temporal_total",
                "records merged by the temporal window",
            ),
            merged_spatial: registry.counter(
                "merged_spatial_total",
                "records merged by the spatial window",
            ),
            events_out: registry.counter("events_out_total", "independent fatal events surfaced"),
            warnings: registry.counter("warnings_total", "events that warranted a warning"),
            rejected_malformed: registry
                .counter("ingest_rejected_malformed_total", "unparsable ingest lines"),
            rejected_oversized: registry
                .counter("ingest_rejected_oversized_total", "over-limit ingest lines"),
            backpressure_stalls: registry.counter(
                "ingest_backpressure_stalls_total",
                "sends that blocked on a full shard queue",
            ),
            queue_depth: registry.gauge("shard_queue_depth", "records queued across shards"),
            ingest_connections: registry
                .counter("ingest_connections_total", "ingest connections accepted"),
            http_requests: registry.counter("http_requests_total", "HTTP requests served"),
            slow_disconnects: registry.counter(
                "http_slow_disconnects_total",
                "slow HTTP clients disconnected",
            ),
            http_nanos: registry.histogram(
                "http_request_nanos",
                "HTTP request service time (ns)",
                LATENCY_BUCKETS_NANOS,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let r = Registry::new();
        let c = r.counter("a_total", "a");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("depth", "d");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        let h = r.histogram("lat", "l", &[10, 100]);
        h.observe(5);
        h.observe(10); // inclusive upper bound -> first bucket
        h.observe(50);
        h.observe(1_000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_065);
        assert_eq!(r.value("a_total"), Some(5));
        assert_eq!(r.value("depth"), Some(4));
        assert_eq!(r.value("lat"), Some(4));
        assert_eq!(r.value("missing"), None);
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let c1 = r.counter("x_total", "x");
        let c2 = r.counter("x_total", "x");
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2);
        // Kind mismatch: caller gets a working but unregistered metric.
        let g = r.gauge("x_total", "x");
        g.set(99);
        assert_eq!(r.value("x_total"), Some(2));
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_cumulative() {
        let r = Registry::new();
        r.counter("zz_total", "last").inc();
        let h = r.histogram("aa_nanos", "hist", &[10, 100]);
        h.observe(5);
        h.observe(120);
        r.gauge("mm_depth", "middle").set(-2);
        let text = r.render_prometheus();
        let aa = text.find("aa_nanos_bucket").unwrap();
        let mm = text.find("mm_depth").unwrap();
        let zz = text.find("zz_total").unwrap();
        assert!(aa < mm && mm < zz, "not sorted:\n{text}");
        assert!(text.contains("aa_nanos_bucket{le=\"10\"} 1"));
        assert!(text.contains("aa_nanos_bucket{le=\"100\"} 1"));
        assert!(text.contains("aa_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("aa_nanos_sum 125"));
        assert!(text.contains("aa_nanos_count 2"));
        assert!(text.contains("# TYPE mm_depth gauge"));
        assert!(text.contains("mm_depth -2"));
        assert!(text.contains("# TYPE zz_total counter"));
    }
}
