//! The line-delimited ingest protocol.
//!
//! A client streams RAS records to the daemon as ordinary log lines — by
//! default the same nine-field pipe format `raslog` reads from disk, or any
//! other line-oriented source adapter selected with `--format` — one record
//! per `\n`-terminated line, optionally with a trailing `\r`. Blank lines
//! and `#` comments are ignored, so `cat ras.log | nc HOST PORT` is a valid
//! client. The protocol is one-way: the daemon never writes on the ingest
//! socket; results are observed through the HTTP front-end.
//!
//! Robustness rules, enforced here and accounted in the metrics registry:
//!
//! * a line longer than the configured limit is dropped whole and the
//!   framer resynchronizes at the next newline (a malicious or corrupt
//!   client cannot balloon daemon memory);
//! * an unparsable line is counted and skipped — one bad record must not
//!   poison the stream.
//!
//! The framer is a pure byte-in/frame-out state machine (no sockets, no
//! clocks), which keeps it inside the determinism lint scope and makes the
//! edge cases unit-testable.

use bgp_ports::{LineDecoder, LineOutcome};
use raslog::RasRecord;

/// What one complete ingest line turned out to be.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A parsed record, ready for the shard pool.
    Record(Box<RasRecord>),
    /// A blank line or `#` comment — ignored, not an error.
    Skip,
    /// An unparsable line, with the parser's description.
    Malformed(String),
}

impl From<LineOutcome> for Frame {
    fn from(o: LineOutcome) -> Frame {
        match o {
            LineOutcome::Record(r) => Frame::Record(r),
            LineOutcome::Skip => Frame::Skip,
            LineOutcome::Malformed(msg) => Frame::Malformed(msg),
        }
    }
}

/// Classify one complete line (without its newline terminator) as the
/// default BG/P pipe format — the port-layer [`LineDecoder`] generalizes
/// this to the other streamable formats.
pub fn classify_line(line: &[u8]) -> Frame {
    Frame::from(LineDecoder::Bgp.decode_line(line))
}

/// Incremental newline framer with a hard per-line length limit.
///
/// Feed it arbitrary byte chunks as they arrive from a socket or file tail;
/// it invokes the sink once per complete line and reports how many lines it
/// had to drop for exceeding the limit.
#[derive(Debug)]
pub struct LineFramer {
    carry: Vec<u8>,
    max_line_bytes: usize,
    /// Inside an over-limit line, discarding until the next newline.
    skipping: bool,
}

impl LineFramer {
    /// A framer enforcing `max_line_bytes` per line.
    pub fn new(max_line_bytes: usize) -> LineFramer {
        LineFramer {
            carry: Vec::new(),
            max_line_bytes,
            skipping: false,
        }
    }

    /// The line length the limit applies to: the classifier strips one
    /// trailing `\r`, so a CRLF terminator must not count against the limit
    /// — a maximal line must frame identically whether it arrives as
    /// `...\n` or `...\r\n`, and whether the `\r\n` is split across reads.
    fn effective_len(&self, tail: &[u8]) -> usize {
        let total = self.carry.len() + tail.len();
        let ends_cr = tail.last().or(self.carry.last()) == Some(&b'\r');
        total - usize::from(ends_cr && total > 0)
    }

    /// Feed one chunk; complete lines go to `sink`. Returns the number of
    /// oversized lines dropped within this chunk.
    pub fn feed(&mut self, chunk: &[u8], sink: &mut impl FnMut(&[u8])) -> u64 {
        let mut dropped = 0u64;
        let mut rest = chunk;
        while let Some(nl) = bgp_model::bytes::find_byte(b'\n', rest) {
            let (head, tail) = rest.split_at(nl);
            rest = &tail[1..];
            if self.skipping {
                // The tail end of an over-limit line: swallow it.
                self.skipping = false;
                self.carry.clear();
                continue;
            }
            if self.effective_len(head) > self.max_line_bytes {
                dropped += 1;
                self.carry.clear();
                continue;
            }
            if self.carry.is_empty() {
                sink(head);
            } else {
                self.carry.extend_from_slice(head);
                sink(&std::mem::take(&mut self.carry));
            }
        }
        if self.skipping {
            return dropped;
        }
        if self.effective_len(rest) > self.max_line_bytes {
            // The line is already over the limit without a newline in
            // sight: drop it now and discard until the next newline. (A
            // partial line ending in `\r` gets one byte of grace — the
            // carry is bounded by the limit plus that single byte.)
            dropped += 1;
            self.carry.clear();
            self.skipping = true;
        } else {
            self.carry.extend_from_slice(rest);
        }
        dropped
    }

    /// Flush a trailing unterminated line at end of stream (EOF).
    pub fn finish(&mut self, sink: &mut impl FnMut(&[u8])) {
        if !self.skipping && !self.carry.is_empty() {
            sink(&std::mem::take(&mut self.carry));
        }
        self.skipping = false;
        self.carry.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::Catalog;

    fn collect(framer: &mut LineFramer, chunks: &[&[u8]]) -> (Vec<Vec<u8>>, u64) {
        let mut lines = Vec::new();
        let mut dropped = 0;
        for c in chunks {
            dropped += framer.feed(c, &mut |l: &[u8]| lines.push(l.to_vec()));
        }
        framer.finish(&mut |l: &[u8]| lines.push(l.to_vec()));
        (lines, dropped)
    }

    #[test]
    fn frames_lines_across_arbitrary_chunk_boundaries() {
        let mut f = LineFramer::new(100);
        let (lines, dropped) = collect(&mut f, &[b"ab", b"c\nde", b"\n\nfg"]);
        assert_eq!(dropped, 0);
        assert_eq!(
            lines,
            vec![b"abc".to_vec(), b"de".to_vec(), vec![], b"fg".to_vec()]
        );
    }

    #[test]
    fn oversized_lines_are_dropped_and_resynchronized() {
        let mut f = LineFramer::new(4);
        // "longline" exceeds 4 bytes mid-chunk; "ok" after the newline must
        // still be delivered, as must short lines split across chunks.
        let (lines, dropped) = collect(&mut f, &[b"longl", b"ine\nok\n", b"toolong\n", b"ab\n"]);
        assert_eq!(dropped, 2);
        assert_eq!(lines, vec![b"ok".to_vec(), b"ab".to_vec()]);
    }

    #[test]
    fn oversized_line_at_eof_stays_dropped() {
        let mut f = LineFramer::new(4);
        let (lines, dropped) = collect(&mut f, &[b"abcdefgh"]);
        assert_eq!(dropped, 1);
        assert!(lines.is_empty());
    }

    #[test]
    fn crlf_terminator_does_not_count_against_the_limit() {
        // A maximal 4-byte line must survive whether it ends \n or \r\n:
        // the classifier strips the \r, so the framer must not charge it.
        let mut f = LineFramer::new(4);
        let (lines, dropped) = collect(&mut f, &[b"abcd\nabcd\r\nabcde\r\n"]);
        assert_eq!(dropped, 1, "only the 5-byte line is oversized");
        assert_eq!(lines, vec![b"abcd".to_vec(), b"abcd\r".to_vec()]);
    }

    #[test]
    fn crlf_split_across_chunks_at_the_limit_is_not_dropped() {
        // Regression: with the \r buffered at the end of one read and the
        // \n opening the next, the carry briefly holds limit+1 bytes. The
        // old framer dropped the line at that point; it must be delivered.
        let mut f = LineFramer::new(4);
        let (lines, dropped) = collect(&mut f, &[b"abcd\r", b"\nef\n"]);
        assert_eq!(dropped, 0);
        assert_eq!(lines, vec![b"abcd\r".to_vec(), b"ef".to_vec()]);
        // The grace byte is exactly one: anything after the \r that is not
        // an immediate newline pushes the line over the limit again.
        let mut f = LineFramer::new(4);
        let (lines, dropped) = collect(&mut f, &[b"abcd\r", b"x\nok\n"]);
        assert_eq!(dropped, 1);
        assert_eq!(lines, vec![b"ok".to_vec()]);
    }

    #[test]
    fn only_one_trailing_cr_is_granted() {
        // classify_line strips a single \r, so "abc\r\r" is the 4-byte
        // content "abc\r" plus its terminator: delivered at a 4-byte limit.
        let mut f = LineFramer::new(4);
        let (lines, dropped) = collect(&mut f, &[b"abc\r\r\nok\n"]);
        assert_eq!(dropped, 0);
        assert_eq!(lines, vec![b"abc\r\r".to_vec(), b"ok".to_vec()]);
        // "abcd\r\r" strips to 5 bytes of content: over the limit, dropped.
        let mut f = LineFramer::new(4);
        let (lines, dropped) = collect(&mut f, &[b"abcd\r\r\nok\n"]);
        assert_eq!(dropped, 1);
        assert_eq!(lines, vec![b"ok".to_vec()]);
    }

    #[test]
    fn crlf_at_limit_parses_identically_to_lf() {
        // End to end through classify_line: the same maximal record line
        // must produce the same Frame with either terminator framing.
        let code = Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap();
        let rec = raslog::RasRecord::new(
            7,
            bgp_model::Timestamp::from_unix(1_000),
            "R00-M0-N00-J00".parse().unwrap(),
            code,
        );
        let line = raslog::format_record(&rec);
        let max = line.len(); // the limit sits exactly at the record length
        for (payload, chunks) in [
            (format!("{line}\n"), vec![format!("{line}\n")]),
            (format!("{line}\r\n"), vec![format!("{line}\r\n")]),
            // \r and \n split across reads, \r landing exactly on the limit.
            (String::new(), vec![format!("{line}\r"), "\n".to_owned()]),
        ] {
            let _ = payload;
            let mut f = LineFramer::new(max);
            let mut frames = Vec::new();
            for c in &chunks {
                let dropped = f.feed(c.as_bytes(), &mut |l: &[u8]| {
                    frames.push(classify_line(l));
                });
                assert_eq!(dropped, 0, "chunks {chunks:?}");
            }
            f.finish(&mut |l: &[u8]| frames.push(classify_line(l)));
            assert_eq!(frames.len(), 1, "chunks {chunks:?}");
            match &frames[0] {
                Frame::Record(r) => assert_eq!(**r, rec),
                other => panic!("expected record for {chunks:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn classifies_records_comments_and_garbage() {
        let code = Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap();
        let rec = raslog::RasRecord::new(
            7,
            bgp_model::Timestamp::from_unix(1_000),
            "R00-M0-N00-J00".parse().unwrap(),
            code,
        );
        let line = raslog::format_record(&rec);
        match classify_line(line.as_bytes()) {
            Frame::Record(r) => assert_eq!(*r, rec),
            other => panic!("expected record, got {other:?}"),
        }
        // CRLF is tolerated.
        let crlf = format!("{line}\r");
        assert!(matches!(classify_line(crlf.as_bytes()), Frame::Record(_)));
        assert_eq!(classify_line(b""), Frame::Skip);
        assert_eq!(classify_line(b"\r"), Frame::Skip);
        assert_eq!(classify_line(b"# comment"), Frame::Skip);
        assert!(matches!(
            classify_line(b"not|a|record"),
            Frame::Malformed(_)
        ));
    }
}
