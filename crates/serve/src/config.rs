//! Daemon configuration: flag parsing shared by `coserved` and
//! `coctl serve`, plus the on-disk impact-verdict format.
//!
//! The impact file is how an offline co-analysis run informs the online
//! daemon (Observation 1 in production): `coctl analyze --impact-out FILE`
//! writes the per-code verdicts, `coserved --impact FILE` loads them, and
//! new events of codes classified non-fatal stop warning.

use crate::error::ServeError;
use bgp_model::Duration;
use bgp_ports::{LineDecoder, LogFormat};
use coanalysis::classify::{CodeImpact, ImpactSummary};
use raslog::Catalog;
use std::io::{Read, Write};
use std::path::PathBuf;

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingest (line-delimited TCP) listen address. Port 0 picks a free port.
    pub ingest_addr: String,
    /// HTTP front-end listen address. Port 0 picks a free port.
    pub http_addr: String,
    /// Number of analyzer shards (records are routed by error code).
    pub shards: usize,
    /// Bounded per-shard queue capacity, in records.
    pub queue_capacity: usize,
    /// Capacity of the recent-events ring served at `/events`.
    pub ring_capacity: usize,
    /// Ingest lines longer than this are rejected (and counted).
    pub max_line_bytes: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: std::time::Duration,
    /// Per-connection socket write timeout (slow clients are disconnected).
    pub write_timeout: std::time::Duration,
    /// Optional log file to tail as a second ingest source.
    pub tail: Option<PathBuf>,
    /// Poll interval for the tailer.
    pub tail_poll: std::time::Duration,
    /// Temporal dedup threshold (same code + location).
    pub temporal: Duration,
    /// Spatial dedup threshold (same code, any location).
    pub spatial: Duration,
    /// Per-code impact verdicts from an offline run, if any.
    pub impact: Option<ImpactSummary>,
    /// Line format for the ingest sources. Only line-streamable formats are
    /// valid here (`bgp`, `syslog`); a cassette names its own inner format.
    pub format: LogFormat,
    /// A `.bgpcas` cassette to replay at startup instead of (or alongside)
    /// the live sources; once it drains, a graceful shutdown is requested,
    /// making `--replay` a deterministic one-shot batch run.
    pub replay: Option<PathBuf>,
    /// Record every ingested chunk (TCP and tail) into this `.bgpcas`
    /// cassette, written on shutdown.
    pub record: Option<PathBuf>,
    /// Continuously fold ingest through the incremental stage graph and
    /// serve the complete co-analysis report at `/analysis`. Requires
    /// [`ServeConfig::jobs`].
    pub full_analysis: bool,
    /// Job log for the co-analysis side of `--full-analysis`.
    pub jobs: Option<PathBuf>,
    /// Worker threads for the `--full-analysis` fold pipeline (the
    /// `DeltaSession` behind `/analysis`); `None` keeps the pipeline's
    /// own default. Every stage is bit-identical at any thread count, so
    /// this is purely a latency knob.
    pub analysis_threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            ingest_addr: "127.0.0.1:7070".to_owned(),
            http_addr: "127.0.0.1:7071".to_owned(),
            shards: 2,
            queue_capacity: 4_096,
            ring_capacity: 256,
            max_line_bytes: 64 * 1024,
            read_timeout: std::time::Duration::from_millis(250),
            write_timeout: std::time::Duration::from_secs(5),
            tail: None,
            tail_poll: std::time::Duration::from_millis(100),
            temporal: Duration::minutes(5),
            spatial: Duration::minutes(5),
            impact: None,
            format: LogFormat::Bgp,
            replay: None,
            record: None,
            full_analysis: false,
            jobs: None,
            analysis_threads: None,
        }
    }
}

impl ServeConfig {
    /// Parse daemon flags (everything after the program name / subcommand).
    ///
    /// ```text
    /// --ingest ADDR      TCP ingest listen address   (default 127.0.0.1:7070)
    /// --http ADDR        HTTP listen address         (default 127.0.0.1:7071)
    /// --shards N         analyzer shards             (default 2)
    /// --queue-cap N      per-shard queue capacity    (default 4096)
    /// --ring N           /events ring capacity       (default 256)
    /// --max-line BYTES   ingest line length limit    (default 65536)
    /// --impact FILE      offline impact verdicts
    /// --tail FILE        also tail FILE for records
    /// --format NAME      line format for ingest      (default bgp; or syslog)
    /// --replay FILE      replay a .bgpcas cassette, then shut down
    /// --record FILE      record ingested chunks to a .bgpcas cassette
    /// --temporal-secs S  temporal dedup threshold    (default 300)
    /// --spatial-secs S   spatial dedup threshold     (default 300)
    /// --full-analysis    serve the complete co-analysis report at /analysis,
    ///                    folded incrementally per ingest batch (needs --jobs)
    /// --jobs FILE        job log for the co-analysis side of --full-analysis
    /// --threads N        worker threads for the --full-analysis fold pipeline
    /// ```
    pub fn from_args(args: &[String]) -> Result<ServeConfig, ServeError> {
        let mut cfg = ServeConfig::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--ingest" => cfg.ingest_addr = take(&mut it, "--ingest")?,
                "--http" => cfg.http_addr = take(&mut it, "--http")?,
                "--shards" => cfg.shards = take_parsed(&mut it, "--shards")?,
                "--queue-cap" => cfg.queue_capacity = take_parsed(&mut it, "--queue-cap")?,
                "--ring" => cfg.ring_capacity = take_parsed(&mut it, "--ring")?,
                "--max-line" => cfg.max_line_bytes = take_parsed(&mut it, "--max-line")?,
                "--impact" => {
                    let path = take(&mut it, "--impact")?;
                    cfg.impact = Some(read_impact_file(&path)?);
                }
                "--tail" => cfg.tail = Some(PathBuf::from(take(&mut it, "--tail")?)),
                "--format" => {
                    let name = take(&mut it, "--format")?;
                    cfg.format = name
                        .parse()
                        .map_err(|e: bgp_ports::UnknownFormat| ServeError::Config(e.to_string()))?;
                }
                "--replay" => cfg.replay = Some(PathBuf::from(take(&mut it, "--replay")?)),
                "--record" => cfg.record = Some(PathBuf::from(take(&mut it, "--record")?)),
                "--full-analysis" => cfg.full_analysis = true,
                "--jobs" => cfg.jobs = Some(PathBuf::from(take(&mut it, "--jobs")?)),
                "--threads" => cfg.analysis_threads = Some(take_parsed(&mut it, "--threads")?),
                "--temporal-secs" => {
                    cfg.temporal = Duration::seconds(take_parsed(&mut it, "--temporal-secs")?);
                }
                "--spatial-secs" => {
                    cfg.spatial = Duration::seconds(take_parsed(&mut it, "--spatial-secs")?);
                }
                other => {
                    return Err(ServeError::Config(format!("unknown flag {other:?}")));
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Reject inconsistent settings before any socket is bound.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::Config("--shards must be at least 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("--queue-cap must be at least 1".into()));
        }
        if self.ring_capacity == 0 {
            return Err(ServeError::Config("--ring must be at least 1".into()));
        }
        if self.max_line_bytes < 64 {
            return Err(ServeError::Config(
                "--max-line must be at least 64 bytes (a minimal record line)".into(),
            ));
        }
        if self.full_analysis && self.jobs.is_none() {
            return Err(ServeError::Config(
                "--full-analysis needs --jobs FILE (the job-log side of the co-analysis)".into(),
            ));
        }
        if self.jobs.is_some() && !self.full_analysis {
            return Err(ServeError::Config(
                "--jobs only makes sense with --full-analysis".into(),
            ));
        }
        if self.analysis_threads == Some(0) {
            return Err(ServeError::Config("--threads must be at least 1".into()));
        }
        if self.analysis_threads.is_some() && !self.full_analysis {
            return Err(ServeError::Config(
                "--threads only makes sense with --full-analysis (it sizes the fold pipeline)"
                    .into(),
            ));
        }
        if LineDecoder::for_format(self.format).is_none() {
            return Err(ServeError::Config(format!(
                "--format {}: not a line-streamable format (streaming supports bgp and \
                 syslog; cassettes name their own inner format — use --replay FILE)",
                self.format
            )));
        }
        Ok(())
    }
}

fn take<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<String, ServeError> {
    it.next()
        .cloned()
        .ok_or_else(|| ServeError::Config(format!("{flag} needs a value")))
}

fn take_parsed<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, ServeError> {
    let v = take(it, flag)?;
    v.parse()
        .map_err(|_| ServeError::Config(format!("{flag}: invalid value {v:?}")))
}

/// Header line of the impact-verdict format.
pub const IMPACT_HEADER: &str = "# bgp-impact v1";

fn verdict_token(v: CodeImpact) -> &'static str {
    match v {
        CodeImpact::InterruptionRelated => "interruption-related",
        CodeImpact::NonFatal => "non-fatal",
        CodeImpact::UndeterminedIdle => "undetermined-idle",
        CodeImpact::UndeterminedMixed => "undetermined-mixed",
    }
}

fn parse_verdict(s: &str) -> Option<CodeImpact> {
    match s {
        "interruption-related" => Some(CodeImpact::InterruptionRelated),
        "non-fatal" => Some(CodeImpact::NonFatal),
        "undetermined-idle" => Some(CodeImpact::UndeterminedIdle),
        "undetermined-mixed" => Some(CodeImpact::UndeterminedMixed),
        _ => None,
    }
}

/// Write an [`ImpactSummary`]'s per-code verdicts in the `# bgp-impact v1`
/// text format: one `CODE_NAME verdict` line per code, sorted by name for
/// reproducible output.
pub fn write_impact(w: &mut impl Write, impact: &ImpactSummary) -> std::io::Result<()> {
    writeln!(w, "{IMPACT_HEADER}")?;
    let cat = Catalog::standard();
    let mut rows: Vec<(&'static str, CodeImpact)> = impact
        .per_code
        .iter()
        .map(|(&code, &v)| (cat.info(code).name, v))
        .collect();
    rows.sort_unstable_by_key(|&(name, _)| name);
    for (name, v) in rows {
        writeln!(w, "{name} {}", verdict_token(v))?;
    }
    Ok(())
}

/// Parse the `# bgp-impact v1` format back into an [`ImpactSummary`].
///
/// Only the per-code verdicts travel through the file — the event counts of
/// the offline run stay offline, so `nonfatal_events` / `total_events` come
/// back zero. Unknown code names and malformed lines are errors: a typo'd
/// impact file silently arming or disarming warnings would be worse than a
/// refusal to start.
pub fn parse_impact(text: &str, path: &str) -> Result<ImpactSummary, ServeError> {
    let err = |line: usize, msg: String| ServeError::Impact {
        path: path.to_owned(),
        line,
        msg,
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == IMPACT_HEADER => {}
        Some((_, first)) => {
            return Err(err(
                1,
                format!("expected {IMPACT_HEADER:?}, found {first:?}"),
            ));
        }
        None => return Err(err(0, "empty file".into())),
    }
    let cat = Catalog::standard();
    let mut impact = ImpactSummary::default();
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let Some((name, verdict)) = line.split_once(' ') else {
            return Err(err(
                lineno,
                format!("expected `CODE verdict`, found {line:?}"),
            ));
        };
        let Some(code) = cat.lookup(name.trim()) else {
            return Err(err(lineno, format!("unknown error code {name:?}")));
        };
        let Some(v) = parse_verdict(verdict.trim()) else {
            return Err(err(lineno, format!("unknown verdict {verdict:?}")));
        };
        if impact.per_code.insert(code, v).is_some() {
            return Err(err(lineno, format!("duplicate code {name:?}")));
        }
    }
    Ok(impact)
}

/// Read and parse an impact file from disk.
pub fn read_impact_file(path: &str) -> Result<ImpactSummary, ServeError> {
    let file = std::fs::File::open(path).map_err(|e| ServeError::Impact {
        path: path.to_owned(),
        line: 0,
        msg: e.to_string(),
    })?;
    let mut text = String::new();
    std::io::BufReader::new(file)
        .read_to_string(&mut text)
        .map_err(|e| ServeError::Impact {
            path: path.to_owned(),
            line: 0,
            msg: e.to_string(),
        })?;
    parse_impact(&text, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn flags_parse_and_validate() {
        let cfg = ServeConfig::from_args(&args(&[
            "--ingest",
            "127.0.0.1:0",
            "--shards",
            "4",
            "--queue-cap",
            "16",
            "--temporal-secs",
            "60",
        ]))
        .unwrap();
        assert_eq!(cfg.ingest_addr, "127.0.0.1:0");
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.queue_capacity, 16);
        assert_eq!(cfg.temporal, Duration::seconds(60));
        assert!(ServeConfig::from_args(&args(&["--shards", "0"])).is_err());
        assert!(ServeConfig::from_args(&args(&["--bogus"])).is_err());
        assert!(ServeConfig::from_args(&args(&["--shards"])).is_err());
    }

    #[test]
    fn analysis_threads_flag_parses_and_validates() {
        let cfg = ServeConfig::from_args(&args(&[
            "--full-analysis",
            "--jobs",
            "jobs.log",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(cfg.analysis_threads, Some(4));
        // Zero threads, threads without --full-analysis, and a bad count
        // are all config errors.
        let e =
            ServeConfig::from_args(&args(&["--full-analysis", "--jobs", "j", "--threads", "0"]))
                .unwrap_err();
        assert!(e.to_string().contains("--threads"), "{e}");
        let e = ServeConfig::from_args(&args(&["--threads", "4"])).unwrap_err();
        assert!(e.to_string().contains("--full-analysis"), "{e}");
        assert!(ServeConfig::from_args(&args(&["--threads", "x"])).is_err());
    }

    #[test]
    fn format_replay_and_record_flags_parse() {
        let cfg = ServeConfig::from_args(&args(&[
            "--format",
            "syslog",
            "--replay",
            "in.bgpcas",
            "--record",
            "out.bgpcas",
        ]))
        .unwrap();
        assert_eq!(cfg.format, LogFormat::Syslog);
        assert_eq!(
            cfg.replay.as_deref(),
            Some(std::path::Path::new("in.bgpcas"))
        );
        assert_eq!(
            cfg.record.as_deref(),
            Some(std::path::Path::new("out.bgpcas"))
        );
        // Unknown formats and non-streamable formats are config errors.
        let e = ServeConfig::from_args(&args(&["--format", "bgl"])).unwrap_err();
        assert!(e.to_string().contains("unknown log format"), "{e}");
        let e = ServeConfig::from_args(&args(&["--format", "bgq"])).unwrap_err();
        assert!(
            e.to_string().contains("not a line-streamable format"),
            "{e}"
        );
        let e = ServeConfig::from_args(&args(&["--format", "cassette"])).unwrap_err();
        assert!(e.to_string().contains("--replay"), "{e}");
    }

    #[test]
    fn impact_round_trips_through_text() {
        let cat = Catalog::standard();
        let mut impact = ImpactSummary::default();
        impact.per_code.insert(
            cat.lookup("BULK_POWER_FATAL").unwrap(),
            CodeImpact::NonFatal,
        );
        impact.per_code.insert(
            cat.lookup("_bgp_err_kernel_panic").unwrap(),
            CodeImpact::InterruptionRelated,
        );
        impact.per_code.insert(
            cat.lookup("_bgp_err_diag_netbist").unwrap(),
            CodeImpact::UndeterminedIdle,
        );
        let mut buf = Vec::new();
        write_impact(&mut buf, &impact).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(IMPACT_HEADER));
        let back = parse_impact(&text, "mem").unwrap();
        assert_eq!(back.per_code, impact.per_code);
    }

    #[test]
    fn impact_rejects_garbage() {
        assert!(parse_impact("", "p").is_err());
        assert!(parse_impact("# wrong header\n", "p").is_err());
        let hdr = format!("{IMPACT_HEADER}\n");
        assert!(parse_impact(&format!("{hdr}no_such_code non-fatal\n"), "p").is_err());
        assert!(parse_impact(&format!("{hdr}BULK_POWER_FATAL sideways\n"), "p").is_err());
        assert!(parse_impact(&format!("{hdr}BULK_POWER_FATAL\n"), "p").is_err());
        let dup = format!("{hdr}BULK_POWER_FATAL non-fatal\nBULK_POWER_FATAL non-fatal\n");
        assert!(parse_impact(&dup, "p").is_err());
        // Comments and blank lines are fine.
        let ok = format!("{hdr}\n# a comment\nBULK_POWER_FATAL non-fatal\n");
        assert_eq!(parse_impact(&ok, "p").unwrap().per_code.len(), 1);
    }
}
