//! The sharded analyzer pool: N worker threads, each owning one
//! [`OnlineAnalyzer`], fed through bounded queues.
//!
//! Records are routed by error code (`errcode.index() % shards`). Both
//! dedup keys — `(code, location)` for the temporal window and `code` for
//! the spatial window — include the error code, so per-code sharding
//! partitions the dedup state exactly: a pool of N shards surfaces the
//! *same* independent-event set as a single analyzer fed the same ordered
//! stream (the proptest in `tests/serve_http.rs` pins this). The merge
//! layer is [`ShardPool::counters`], which sums per-shard
//! [`StreamCounters`] snapshots back into the global stream totals.
//!
//! Backpressure is explicit: queues are bounded, a full queue first counts
//! a stall and then blocks the ingest source (records are never silently
//! dropped — drop accounting lives at the protocol layer, where malformed
//! and oversized lines are rejected). Closing the pool drops the senders;
//! workers drain every queued record before exiting, which is what makes
//! graceful shutdown lossless.

use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::ring::{EventEntry, EventRing};
use bgp_model::Duration;
use coanalysis::classify::ImpactSummary;
use coanalysis::stream::{OnlineAnalyzer, StreamCounters, StreamDecision};
use raslog::{Catalog, RasRecord};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Evict rolling dedup state every this many records per shard.
const EVICT_EVERY: u64 = 8_192;

/// Tunables the pool needs (a subset of the daemon config).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Bounded queue capacity per shard, in records.
    pub queue_capacity: usize,
    /// Temporal dedup threshold.
    pub temporal: Duration,
    /// Spatial dedup threshold.
    pub spatial: Duration,
    /// Offline impact verdicts, shared by every shard.
    pub impact: Option<ImpactSummary>,
}

/// The pool. Shareable across ingest sources via `Arc`.
#[derive(Debug)]
pub struct ShardPool {
    /// `None` once closed; dropping the senders lets workers drain and exit.
    senders: Mutex<Option<Vec<SyncSender<RasRecord>>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    analyzers: Vec<Arc<Mutex<OnlineAnalyzer>>>,
    shards: usize,
}

fn lock_analyzer(a: &Mutex<OnlineAnalyzer>) -> std::sync::MutexGuard<'_, OnlineAnalyzer> {
    a.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ShardPool {
    /// Spawn the workers and return the running pool.
    pub fn start(
        cfg: &ShardConfig,
        metrics: &Arc<ServeMetrics>,
        ring: &Arc<EventRing>,
    ) -> Result<ShardPool, ServeError> {
        let shards = cfg.shards.max(1);
        // Eviction horizon: far beyond both windows, so dropping state
        // cannot change any dedup decision.
        let horizon = Duration::seconds(cfg.temporal.as_secs().max(cfg.spatial.as_secs()) * 4 + 1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut analyzers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<RasRecord>(cfg.queue_capacity.max(1));
            let mut analyzer = OnlineAnalyzer::with_thresholds(cfg.temporal, cfg.spatial);
            if let Some(impact) = &cfg.impact {
                analyzer = analyzer.with_impact(impact.clone());
            }
            let analyzer = Arc::new(Mutex::new(analyzer));
            let worker_analyzer = Arc::clone(&analyzer);
            let worker_metrics = Arc::clone(metrics);
            let worker_ring = Arc::clone(ring);
            let handle = std::thread::Builder::new()
                .name(format!("bgp-serve-shard-{shard}"))
                .spawn(move || {
                    let mut since_evict = 0u64;
                    while let Ok(rec) = rx.recv() {
                        worker_metrics.queue_depth.add(-1);
                        let decision = lock_analyzer(&worker_analyzer).push(&rec);
                        worker_metrics.records_in.inc();
                        match decision {
                            StreamDecision::NotFatal => {}
                            StreamDecision::MergedTemporal => {
                                worker_metrics.fatal_in.inc();
                                worker_metrics.merged_temporal.inc();
                            }
                            StreamDecision::MergedSpatial => {
                                worker_metrics.fatal_in.inc();
                                worker_metrics.merged_spatial.inc();
                            }
                            StreamDecision::NewEvent { warn } => {
                                worker_metrics.fatal_in.inc();
                                worker_metrics.events_out.inc();
                                if warn {
                                    worker_metrics.warnings.inc();
                                }
                                worker_ring.push(EventEntry {
                                    recid: rec.recid,
                                    time: rec.event_time,
                                    location: rec.location.to_string(),
                                    code: Catalog::standard().info(rec.errcode).name.to_owned(),
                                    warn,
                                    shard,
                                });
                            }
                        }
                        since_evict += 1;
                        if since_evict >= EVICT_EVERY {
                            since_evict = 0;
                            lock_analyzer(&worker_analyzer).evict_before(rec.event_time, horizon);
                        }
                    }
                })
                .map_err(ServeError::Spawn)?;
            senders.push(tx);
            workers.push(handle);
            analyzers.push(analyzer);
        }
        Ok(ShardPool {
            senders: Mutex::new(Some(senders)),
            workers: Mutex::new(workers),
            analyzers,
            shards,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Route one record to its shard.
    ///
    /// Bounded-queue semantics: a full queue counts one backpressure stall
    /// on `metrics` and then blocks until the worker catches up — the record
    /// is never dropped. Returns [`ServeError::PoolClosed`] after
    /// [`ShardPool::close`].
    pub fn push(&self, rec: RasRecord, metrics: &ServeMetrics) -> Result<(), ServeError> {
        let sender = {
            let guard = self.senders.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(senders) = guard.as_ref() else {
                return Err(ServeError::PoolClosed);
            };
            senders
                .get(rec.errcode.index() % self.shards)
                .cloned()
                .ok_or(ServeError::PoolClosed)?
        };
        metrics.queue_depth.add(1);
        match sender.try_send(rec) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(rec)) => {
                metrics.backpressure_stalls.inc();
                sender.send(rec).map_err(|_| {
                    metrics.queue_depth.add(-1);
                    ServeError::PoolClosed
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                metrics.queue_depth.add(-1);
                Err(ServeError::PoolClosed)
            }
        }
    }

    /// Merged snapshot across all shards — the global stream totals.
    pub fn counters(&self) -> StreamCounters {
        self.analyzers
            .iter()
            .map(|a| lock_analyzer(a).counters())
            .fold(StreamCounters::default(), StreamCounters::merge)
    }

    /// Per-shard snapshots (diagnostics, tests).
    pub fn shard_counters(&self) -> Vec<StreamCounters> {
        self.analyzers
            .iter()
            .map(|a| lock_analyzer(a).counters())
            .collect()
    }

    /// Stop accepting records. Queued records are still drained.
    pub fn close(&self) {
        let mut guard = self.senders.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = None;
    }

    /// Is the pool closed?
    pub fn is_closed(&self) -> bool {
        self.senders
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_none()
    }

    /// Wait for every worker to drain its queue and exit. Call after
    /// [`ShardPool::close`]; the merged [`ShardPool::counters`] afterwards
    /// reflect every record ever accepted by [`ShardPool::push`].
    pub fn join(&self) {
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for h in workers {
            if let Err(payload) = h.join() {
                // A worker panicked (impossible by construction — the loop
                // has no panic paths). Re-raise rather than swallow.
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use bgp_model::Timestamp;

    fn pool_fixture(shards: usize, cap: usize) -> (ShardPool, Arc<ServeMetrics>, Arc<EventRing>) {
        let registry = Registry::new();
        let metrics = Arc::new(ServeMetrics::register(&registry));
        let ring = Arc::new(EventRing::new(64));
        let cfg = ShardConfig {
            shards,
            queue_capacity: cap,
            temporal: Duration::minutes(5),
            spatial: Duration::minutes(5),
            impact: None,
        };
        let pool = ShardPool::start(&cfg, &metrics, &ring).expect("pool starts");
        (pool, metrics, ring)
    }

    fn rec(recid: u64, t: i64, name: &str) -> RasRecord {
        RasRecord::new(
            recid,
            Timestamp::from_unix(t),
            "R00-M0-N00-J00".parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
        )
    }

    #[test]
    fn pool_matches_single_analyzer_and_drains_on_close() {
        let (pool, metrics, ring) = pool_fixture(4, 8);
        let mut single = OnlineAnalyzer::new();
        let names = [
            "_bgp_err_kernel_panic",
            "_bgp_err_ddr_controller",
            "BULK_POWER_FATAL",
            "_bgp_warn_ecc_corrected",
        ];
        let records: Vec<RasRecord> = (0..500)
            .map(|i| rec(i, i as i64 * 120, names[i as usize % names.len()]))
            .collect();
        for r in &records {
            single.push(r);
            pool.push(*r, &metrics).expect("pool accepts");
        }
        pool.close();
        pool.join();
        assert!(pool.push(records[0], &metrics).is_err());
        let merged = pool.counters();
        assert_eq!(merged.records_in, single.counters().records_in);
        assert_eq!(merged.fatal_in, single.counters().fatal_in);
        assert_eq!(merged.events_out, single.counters().events_out);
        assert_eq!(merged.merged_temporal, single.counters().merged_temporal);
        assert_eq!(merged.merged_spatial, single.counters().merged_spatial);
        // Atomic metrics agree with the analyzer-side merge.
        assert_eq!(metrics.records_in.get(), merged.records_in);
        assert_eq!(metrics.events_out.get(), merged.events_out);
        assert_eq!(metrics.queue_depth.get(), 0);
        assert_eq!(ring.total_pushed(), merged.events_out);
    }

    #[test]
    fn full_queue_counts_backpressure_but_loses_nothing() {
        // One shard, tiny queue, slow consumer: the pusher must stall, the
        // stall must be counted, and every record must still arrive.
        let (pool, metrics, _ring) = pool_fixture(1, 2);
        for i in 0..200 {
            pool.push(rec(i, i as i64 * 7_000, "_bgp_err_kernel_panic"), &metrics)
                .expect("push succeeds");
        }
        pool.close();
        pool.join();
        assert_eq!(pool.counters().records_in, 200);
        assert!(
            metrics.backpressure_stalls.get() > 0,
            "a 2-slot queue fed 200 records back-to-back must stall"
        );
        assert_eq!(metrics.queue_depth.get(), 0);
    }
}
