//! `bgp-serve`: a long-running co-analysis daemon over `std::net`.
//!
//! The batch pipeline in [`coanalysis`] answers "what happened in this
//! log?"; this crate answers "what is happening right now?". A daemon
//! ([`Server`]) ingests RAS records over a line-delimited TCP protocol
//! and/or by tailing a log file, fans them out to N sharded
//! [`OnlineAnalyzer`](coanalysis::stream::OnlineAnalyzer) workers (routed
//! by error code, which keeps dedup semantics exactly equal to a single
//! analyzer), and serves live results over a hand-rolled HTTP/1.1
//! front-end: `/healthz`, `/metrics` (Prometheus text), `/events` (JSON
//! ring of recent independent events), `/summary` (merged counters), and
//! `/shutdown` (graceful drain).
//!
//! Module map:
//!
//! * [`protocol`] — newline framing with length limits, line classification;
//! * [`source`] — the TCP ingest listener and the optional file tailer;
//! * [`shard`] — the bounded-queue shard pool and its merge layer;
//! * [`ring`] — the recent-events ring served at `/events`;
//! * [`metrics`] — counters/gauges/histograms + Prometheus rendering;
//! * [`http`] — the minimal HTTP front-end;
//! * [`full`] — `--full-analysis`: the complete co-analysis report served
//!   at `/analysis`, folded incrementally per ingest batch through a
//!   [`DeltaSession`](coanalysis::DeltaSession);
//! * [`recorder`] — `--record`: capturing live ingest chunks as a cassette;
//! * [`replay`] — `--replay`: deterministic cassette playback through the
//!   ingest path, ending in a graceful one-shot drain;
//! * [`server`] — assembly, two-phase graceful shutdown, final summary;
//! * [`timing`] — [`StageTimer`], wiring the same metrics registry into the
//!   batch pipeline via [`CoAnalysis::run_on_observed`](coanalysis::CoAnalysis::run_on_observed);
//! * [`config`] — flag parsing and the on-disk impact-verdict format;
//! * [`error`] — the typed error for everything above.
//!
//! Everything here is dependency-free by design: `std::net`, `std::sync`,
//! and the workspace crates. No async runtime, no web framework.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod full;
pub mod http;
pub mod metrics;
pub mod protocol;
pub(crate) mod recorder;
pub(crate) mod replay;
pub mod ring;
pub mod server;
pub mod shard;
pub mod source;
pub mod timing;

pub use config::{parse_impact, read_impact_file, write_impact, ServeConfig, IMPACT_HEADER};
pub use error::ServeError;
pub use full::{render_report, AnalysisSnapshot, FullAnalysis};
pub use metrics::{Counter, Gauge, Histogram, Registry, ServeMetrics};
pub use protocol::{classify_line, Frame, LineFramer};
pub use ring::{EventEntry, EventRing};
pub use server::{run, FinalSummary, Server, Shutdown};
pub use shard::{ShardConfig, ShardPool};
pub use timing::StageTimer;
