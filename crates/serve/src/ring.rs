//! Bounded ring of recent independent events, served at `GET /events`.
//!
//! Shard workers append an entry for every `NewEvent` decision; the HTTP
//! front-end snapshots the ring and renders it as JSON. The ring is a
//! fixed-capacity deque behind a mutex — appends are O(1), a snapshot is a
//! short lock plus a copy, and memory is bounded no matter how long the
//! daemon runs.

use bgp_model::Timestamp;
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// One surfaced independent fatal event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventEntry {
    /// RECID of the record that opened the event.
    pub recid: u64,
    /// Event time (the record's EVENT_TIME).
    pub time: Timestamp,
    /// Location string as reported.
    pub location: String,
    /// ERRCODE name from the catalog.
    pub code: String,
    /// Did the impact map say this deserves a warning?
    pub warn: bool,
    /// Which shard surfaced it.
    pub shard: usize,
}

/// The bounded ring itself.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<VecDeque<EventEntry>>,
    capacity: usize,
    /// Total events ever pushed (survives eviction from the ring).
    total: std::sync::atomic::AtomicU64,
}

impl EventRing {
    /// A ring holding at most `capacity` recent events.
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(4_096))),
            capacity: capacity.max(1),
            total: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<EventEntry>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one event, evicting the oldest beyond capacity.
    pub fn push(&self, entry: EventEntry) {
        let mut q = self.lock();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(entry);
        self.total
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Copy of the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<EventEntry> {
        self.lock().iter().cloned().collect()
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Total events ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Render the ring as a JSON array, oldest first.
    pub fn to_json(&self) -> String {
        let entries = self.snapshot();
        let mut out = String::from("[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"recid\":{},\"time\":\"{}\",\"location\":\"{}\",\"code\":\"{}\",\
                 \"warn\":{},\"shard\":{}}}",
                e.recid,
                e.time,
                json_escape(&e.location),
                json_escape(&e.code),
                e.warn,
                e.shard
            ));
        }
        out.push(']');
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(recid: u64) -> EventEntry {
        EventEntry {
            recid,
            time: Timestamp::from_unix(recid as i64),
            location: "R00-M0".to_owned(),
            code: "_bgp_err_kernel_panic".to_owned(),
            warn: recid.is_multiple_of(2),
            shard: 0,
        }
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(entry(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|e| e.recid).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(ring.total_pushed(), 5);
        assert!(!ring.is_empty());
    }

    #[test]
    fn json_is_wellformed_and_escaped() {
        let ring = EventRing::new(8);
        ring.push(EventEntry {
            code: "weird\"code\\".to_owned(),
            ..entry(1)
        });
        let json = ring.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\\\"code\\\\"));
        assert!(json.contains("\"recid\":1"));
        assert_eq!(EventRing::new(2).to_json(), "[]");
        assert_eq!(json_escape("a\tb\u{1}"), "a\\tb\\u0001");
    }
}
