//! Continuous **full** co-analysis: fold live ingest through the
//! incremental stage graph and serve the complete report at `/analysis`.
//!
//! The shard pool answers "what independent events are happening?" with
//! online dedup counters; this module answers "what does the *whole*
//! co-analysis say right now?". A single worker thread owns a
//! [`DeltaSession`] primed on an empty RAS base plus the `--jobs` log, and
//! folds batches of ingested records through
//! [`DeltaSession::append`] — so each fold re-runs only the stages whose
//! inputs changed, and the published report is bit-identical to a one-shot
//! batch run over everything ingested so far (the delta-equivalence gate).
//!
//! Concurrency shape mirrors the shard pool: a bounded queue between the
//! ingest sources and the worker (a full queue counts a backpressure stall
//! and then blocks — records are never dropped), the latest report behind a
//! short-lived mutex, and a close/join drain on shutdown.

use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use coanalysis::{AppendBatch, CoAnalysisConfig, CoAnalysisResult, DeltaSession, LoadOptions};
use raslog::{RasLog, RasRecord};
use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// What `/analysis` serves: the latest complete report plus fold counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisSnapshot {
    /// Ingest batches folded so far (0 means only the primed base).
    pub batches: u64,
    /// RAS records folded through the session (the base starts empty).
    pub records: u64,
    /// Stages the last fold re-ran (0..=[`StageId::ALL.len()`]).
    ///
    /// [`StageId::ALL.len()`]: coanalysis::StageId::ALL
    pub last_reran: usize,
    /// Stages whose output actually changed on the last fold.
    pub last_changed: usize,
    /// The full report, formatted exactly like `coctl analyze` prints it.
    pub report: String,
}

impl AnalysisSnapshot {
    /// The `/analysis` response body: two comment lines of fold state, then
    /// the report verbatim.
    pub fn render(&self) -> String {
        format!(
            "# full analysis: {} batches ({} records) folded incrementally\n\
             # last batch: re-ran {}/{} stages, {} changed\n\
             {}",
            self.batches,
            self.records,
            self.last_reran,
            coanalysis::StageId::ALL.len(),
            self.last_changed,
            self.report
        )
    }
}

/// Format a result the way `coctl analyze --fda` prints it to stdout, so
/// the served report can be diffed against an offline run of the same
/// records. The dimensional root-cause (FDA) table rides along: the online
/// report is exactly where "which user × executable × midplane combination
/// is failing right now?" matters.
pub fn render_report(r: &CoAnalysisResult) -> String {
    let s = &r.filter_stats;
    format!(
        "filtering: {} FATAL -> {} events (-{:.2}%), job-related -> {} (-{:.2}%)\n\
         interruptions: {} jobs ({} system / {} application by cause)\n\
         \n\
         {}\n\
         {}\n",
        s.raw_fatal,
        s.after_causal,
        100.0 * s.ts_causal_compression(),
        s.after_job_related,
        100.0 * s.job_related_compression(),
        r.matching.interrupted_jobs(),
        r.interruption.system.count,
        r.interruption.application.count,
        r.observations(),
        r.fda
    )
}

/// The continuous-analysis worker: a bounded queue in, the latest full
/// report out.
#[derive(Debug)]
pub struct FullAnalysis {
    /// `None` once closed; dropping the sender lets the worker drain.
    sender: Mutex<Option<SyncSender<RasRecord>>>,
    latest: Arc<Mutex<Arc<AnalysisSnapshot>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

fn lock_latest(latest: &Mutex<Arc<AnalysisSnapshot>>) -> Arc<AnalysisSnapshot> {
    Arc::clone(&latest.lock().unwrap_or_else(PoisonError::into_inner))
}

impl FullAnalysis {
    /// Load the job log, prime a [`DeltaSession`] on it (with an empty RAS
    /// base), and start the worker thread.
    pub fn start(
        config: CoAnalysisConfig,
        jobs_path: &Path,
        queue_capacity: usize,
    ) -> Result<FullAnalysis, ServeError> {
        let loaded = coanalysis::load::load_jobs(jobs_path, &LoadOptions::default())
            .map_err(|e| ServeError::Config(format!("--jobs {}: {e}", jobs_path.display())))?;
        let (session, base) =
            DeltaSession::new(config, &RasLog::from_records(Vec::new()), loaded.log);
        let latest = Arc::new(Mutex::new(Arc::new(AnalysisSnapshot {
            batches: 0,
            records: 0,
            last_reran: coanalysis::StageId::ALL.len(),
            last_changed: coanalysis::StageId::ALL.len(),
            report: render_report(&base),
        })));
        let (tx, rx) = sync_channel::<RasRecord>(queue_capacity.max(1));
        let worker_latest = Arc::clone(&latest);
        let handle = std::thread::Builder::new()
            .name("bgp-serve-full".to_owned())
            .spawn(move || worker_loop(&rx, session, &worker_latest))
            .map_err(ServeError::Spawn)?;
        Ok(FullAnalysis {
            sender: Mutex::new(Some(tx)),
            latest,
            worker: Mutex::new(Some(handle)),
        })
    }

    /// The latest published snapshot (cheap: clones an `Arc`).
    pub fn snapshot(&self) -> Arc<AnalysisSnapshot> {
        lock_latest(&self.latest)
    }

    /// Queue one ingested record for the next fold.
    ///
    /// Bounded-queue semantics match [`ShardPool::push`]
    /// [`crate::shard::ShardPool::push`]: a full queue counts one
    /// backpressure stall and then blocks. After [`FullAnalysis::close`]
    /// the record is silently ignored — the daemon is draining.
    pub fn offer(&self, rec: RasRecord, metrics: &ServeMetrics) {
        let sender = {
            let guard = self.sender.lock().unwrap_or_else(PoisonError::into_inner);
            guard.as_ref().cloned()
        };
        let Some(sender) = sender else { return };
        match sender.try_send(rec) {
            Ok(()) => {}
            Err(TrySendError::Full(rec)) => {
                metrics.backpressure_stalls.inc();
                let _ = sender.send(rec);
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// Stop accepting records. Queued records are still folded.
    pub fn close(&self) {
        let mut guard = self.sender.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = None;
    }

    /// Wait for the worker to fold everything queued and exit. Call after
    /// [`FullAnalysis::close`]; afterwards [`FullAnalysis::snapshot`]
    /// covers every record ever offered.
    pub fn join(&self) {
        let handle = {
            let mut guard = self.worker.lock().unwrap_or_else(PoisonError::into_inner);
            guard.take()
        };
        if let Some(h) = handle {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Drain the queue in batches: block for one record, sweep up everything
/// else already queued, fold the batch, publish. Batch boundaries follow
/// arrival timing, which is safe precisely because `DeltaSession::append`
/// is bit-identical to the one-shot run however the stream is split.
fn worker_loop(
    rx: &Receiver<RasRecord>,
    mut session: DeltaSession,
    latest: &Mutex<Arc<AnalysisSnapshot>>,
) {
    let mut batches = 0u64;
    let mut records = 0u64;
    while let Ok(first) = rx.recv() {
        let mut ras = vec![first];
        while let Ok(more) = rx.try_recv() {
            ras.push(more);
        }
        batches += 1;
        records += ras.len() as u64;
        let (result, report) = session.append(AppendBatch {
            ras,
            jobs: Vec::new(),
        });
        let snap = Arc::new(AnalysisSnapshot {
            batches,
            records,
            last_reran: report.reran.stages().len(),
            last_changed: report.changed.stages().len(),
            report: render_report(&result),
        });
        let mut guard = latest.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = snap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coanalysis::CoAnalysis;
    use raslog::Catalog;
    use std::io::Write;

    fn rec(recid: u64, t: i64, name: &str, loc: &str) -> RasRecord {
        RasRecord::new(
            recid,
            bgp_model::Timestamp::from_unix(t),
            loc.parse().expect("location parses"),
            Catalog::standard().lookup(name).expect("known code"),
        )
    }

    #[test]
    fn folded_report_matches_one_shot_run() {
        let out = bgp_sim::Simulation::new(bgp_sim::SimConfig::small_test(17))
            .expect("valid config")
            .run();
        let dir = std::env::temp_dir().join(format!("bgp-serve-full-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let jobs_path = dir.join("jobs.log");
        let mut w = std::io::BufWriter::new(std::fs::File::create(&jobs_path).expect("create"));
        joblog::write_log(&mut w, out.jobs.jobs()).expect("write jobs");
        w.flush().expect("flush");
        drop(w);

        let full = FullAnalysis::start(CoAnalysisConfig::default(), &jobs_path, 64)
            .expect("worker starts");
        let registry = crate::metrics::Registry::new();
        let metrics = ServeMetrics::register(&registry);
        for r in out.ras.records() {
            full.offer(*r, &metrics);
        }
        full.close();
        full.join();
        let snap = full.snapshot();
        assert_eq!(snap.records, out.ras.records().len() as u64);
        assert!(snap.batches >= 1);
        let oracle = CoAnalysis::default().run(&out.ras, &out.jobs);
        assert_eq!(snap.report, render_report(&oracle));
        assert!(snap.render().starts_with("# full analysis:"));
        let _ = std::fs::remove_file(&jobs_path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn offers_after_close_are_ignored() {
        let dir = std::env::temp_dir().join(format!("bgp-serve-full2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let jobs_path = dir.join("jobs.log");
        std::fs::write(&jobs_path, "").expect("write empty jobs");
        let full =
            FullAnalysis::start(CoAnalysisConfig::default(), &jobs_path, 4).expect("worker starts");
        full.close();
        full.join();
        let registry = crate::metrics::Registry::new();
        let metrics = ServeMetrics::register(&registry);
        full.offer(
            rec(1, 100, "_bgp_err_kernel_panic", "R00-M0-N00-J00"),
            &metrics,
        );
        assert_eq!(full.snapshot().batches, 0);
        let _ = std::fs::remove_file(&jobs_path);
        let _ = std::fs::remove_dir(&dir);
    }
}
