//! Deterministic cassette replay (`--replay FILE`).
//!
//! A `.bgpcas` cassette recorded from a live session is fed back through
//! the exact ingest path — the same [`LineFramer`], the same line decoder,
//! the same shard pool — one recorded chunk per `feed`, so chunk-boundary
//! edge cases (CRLF split across reads, framer resync inside an oversized
//! line) reproduce bit-for-bit. Recorded inter-chunk gaps are metadata
//! only: replay never sleeps and never reads a clock, which is what lets
//! this module sit inside the determinism lint scope and lets integration
//! tests assert exact counters without sockets or timing slack.
//!
//! Once the cassette drains, the replayer requests a graceful shutdown:
//! `coserved --replay FILE` is a deterministic one-shot batch run that
//! drains, prints its final summary, and exits.

use crate::error::ServeError;
use crate::protocol::LineFramer;
use crate::source::SourceCtx;
use bgp_ports::cassette::{Cassette, StreamKind};
use bgp_ports::LineDecoder;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Read and validate a cassette for replay: it must decode, hold a RAS
/// stream, and record a line-streamable inner format.
pub(crate) fn load_cassette(path: &Path) -> Result<Cassette, ServeError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ServeError::Config(format!("--replay {}: {e}", path.display())))?;
    let cas = Cassette::decode_expecting(&bytes, StreamKind::Ras)
        .map_err(|e| ServeError::Config(format!("--replay {}: {e}", path.display())))?;
    if LineDecoder::for_format(cas.format).is_none() {
        return Err(ServeError::Config(format!(
            "--replay {}: cassette records a {} stream, which has no line decoder",
            path.display(),
            cas.format
        )));
    }
    Ok(cas)
}

/// Replay `cassette` through the ingest path on its own thread, then request
/// a graceful shutdown. The decoder follows the cassette's *inner* format
/// (which may differ from the daemon's `--format`), and replayed chunks are
/// not re-recorded by `--record`.
pub(crate) fn spawn_replayer(
    cassette: Cassette,
    ctx: &SourceCtx,
) -> std::io::Result<JoinHandle<()>> {
    let mut ctx = ctx.clone();
    if let Some(decoder) = LineDecoder::for_format(cassette.format) {
        ctx.decoder = Arc::new(decoder);
    }
    ctx.recorder = None;
    std::thread::Builder::new()
        .name("bgp-serve-replay".to_owned())
        .spawn(move || {
            let mut framer = LineFramer::new(ctx.max_line_bytes);
            for frame in &cassette.frames {
                if !ctx.consume_chunk(&mut framer, &frame.bytes) {
                    break;
                }
            }
            ctx.consume_eof(&mut framer);
            ctx.shutdown.request();
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_ports::cassette::Recorder;
    use bgp_ports::LogFormat;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bgp-serve-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn load_rejects_missing_corrupt_and_wrong_kind_cassettes() {
        let missing = tmp("nope.bgpcas");
        let _ = std::fs::remove_file(&missing);
        assert!(load_cassette(&missing).is_err());

        let corrupt = tmp("corrupt.bgpcas");
        std::fs::write(&corrupt, b"BGPCAS\0\0but then garbage").expect("write");
        let e = load_cassette(&corrupt).expect_err("corrupt must fail");
        assert!(e.to_string().contains("--replay"), "{e}");

        let job = tmp("job.bgpcas");
        let rec = Recorder::new(LogFormat::Bgp, StreamKind::Job).expect("recorder");
        std::fs::write(&job, rec.finish().encode()).expect("write");
        let e = load_cassette(&job).expect_err("job stream must fail");
        assert!(e.to_string().contains("RAS"), "{e}");

        let bgq = tmp("bgq.bgpcas");
        let rec = Recorder::new(LogFormat::Bgq, StreamKind::Ras).expect("recorder");
        std::fs::write(&bgq, rec.finish().encode()).expect("write");
        let e = load_cassette(&bgq).expect_err("bgq has no line decoder");
        assert!(e.to_string().contains("no line decoder"), "{e}");
    }

    #[test]
    fn load_accepts_a_valid_ras_cassette() {
        let path = tmp("good.bgpcas");
        let mut rec = Recorder::new(LogFormat::Syslog, StreamKind::Ras).expect("recorder");
        rec.push(0, b"<13>Mar  1 12:00:00 host hello\n");
        std::fs::write(&path, rec.finish().encode()).expect("write");
        let cas = load_cassette(&path).expect("valid cassette loads");
        assert_eq!(cas.format, LogFormat::Syslog);
        assert_eq!(cas.frames.len(), 1);
    }
}
