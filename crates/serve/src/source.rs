//! Ingest sources: the TCP listener and the optional file tailer.
//!
//! Both sources speak the same [`protocol`](crate::protocol): bytes in,
//! framed lines out, each line classified and — if it parses — routed into
//! the [`ShardPool`](crate::shard::ShardPool). Accept loops and connection
//! handlers are non-blocking pollers so a requested shutdown is observed
//! within one poll interval; already-read bytes are always framed and
//! pushed before a handler exits, which keeps shutdown lossless for data
//! the daemon has accepted.

use crate::full::FullAnalysis;
use crate::metrics::ServeMetrics;
use crate::protocol::LineFramer;
use crate::recorder::ChunkRecorder;
use crate::server::Shutdown;
use crate::shard::ShardPool;
use bgp_ports::{LineDecoder, LineOutcome};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long accept loops sleep between polls.
pub(crate) const POLL_SLEEP: Duration = Duration::from_millis(20);

/// Everything a source needs to turn bytes into routed records.
#[derive(Debug, Clone)]
pub(crate) struct SourceCtx {
    pub pool: Arc<ShardPool>,
    pub metrics: Arc<ServeMetrics>,
    pub shutdown: Arc<Shutdown>,
    pub max_line_bytes: usize,
    pub read_timeout: Duration,
    /// The line-level port decoding this daemon's ingest format. Shared so
    /// stateful decoders (syslog record-id assignment) stay globally unique
    /// across connections.
    pub decoder: Arc<LineDecoder>,
    /// When `--record` is active, every delivered chunk is observed here.
    pub recorder: Option<Arc<ChunkRecorder>>,
    /// When `--full-analysis` is active, every parsed record also feeds the
    /// continuous-analysis worker.
    pub full: Option<Arc<FullAnalysis>>,
}

impl SourceCtx {
    /// Decode one framed line and route it. Returns `false` once the pool
    /// refuses records (daemon shutting down) — the source should stop.
    fn consume_line(&self, line: &[u8]) -> bool {
        match self.decoder.decode_line(line) {
            LineOutcome::Skip => true,
            LineOutcome::Malformed(_) => {
                self.metrics.rejected_malformed.inc();
                true
            }
            LineOutcome::Record(rec) => {
                if let Some(full) = &self.full {
                    full.offer(*rec, &self.metrics);
                }
                self.pool.push(*rec, &self.metrics).is_ok()
            }
        }
    }

    /// Feed one chunk through a framer, accounting oversized drops.
    /// Returns `false` once the pool is closed.
    pub(crate) fn consume_chunk(&self, framer: &mut LineFramer, chunk: &[u8]) -> bool {
        if let Some(rec) = &self.recorder {
            rec.observe(chunk);
        }
        let mut open = true;
        let dropped = framer.feed(chunk, &mut |line: &[u8]| {
            if open {
                open = self.consume_line(line);
            }
        });
        self.metrics.rejected_oversized.add(dropped);
        open
    }

    /// Flush a trailing unterminated line at end of stream.
    pub(crate) fn consume_eof(&self, framer: &mut LineFramer) {
        framer.finish(&mut |line: &[u8]| {
            let _ = self.consume_line(line);
        });
    }
}

/// Is this error the read-timeout family rather than a real failure?
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Serve one ingest connection until EOF, error, or shutdown.
fn handle_ingest_conn(stream: TcpStream, ctx: &SourceCtx) {
    let mut stream = stream;
    // A failed timeout setup degrades to blocking reads; EOF still ends us.
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let mut framer = LineFramer::new(ctx.max_line_bytes);
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                ctx.consume_eof(&mut framer);
                return;
            }
            Ok(n) => {
                if let Some(chunk) = buf.get(..n) {
                    if !ctx.consume_chunk(&mut framer, chunk) {
                        return;
                    }
                }
            }
            Err(e) if is_timeout(&e) => {
                if ctx.shutdown.requested() {
                    ctx.consume_eof(&mut framer);
                    return;
                }
            }
            Err(_) => {
                ctx.consume_eof(&mut framer);
                return;
            }
        }
    }
}

/// Run the ingest accept loop on its own thread. The returned handle joins
/// once shutdown is requested *and* every accepted connection has drained.
pub(crate) fn spawn_ingest_listener(
    listener: TcpListener,
    ctx: SourceCtx,
) -> std::io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    std::thread::Builder::new()
        .name("bgp-serve-ingest".to_owned())
        .spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        ctx.metrics.ingest_connections.inc();
                        // Hand the blocking reads their own thread so one
                        // idle client cannot starve the others.
                        let conn_ctx = ctx.clone();
                        let spawned = std::thread::Builder::new()
                            .name("bgp-serve-conn".to_owned())
                            .spawn(move || handle_ingest_conn(stream, &conn_ctx));
                        if let Ok(h) = spawned {
                            conns.push(h);
                        }
                        // On spawn failure (out of threads) the connection
                        // is dropped; the client sees a reset and retries.
                    }
                    Err(e) if is_timeout(&e) => {
                        if ctx.shutdown.requested() {
                            break;
                        }
                        std::thread::sleep(POLL_SLEEP);
                    }
                    Err(_) => std::thread::sleep(POLL_SLEEP),
                }
                conns.retain(|h| !h.is_finished());
            }
            for h in conns {
                let _ = h.join();
            }
        })
}

/// Tail a log file, feeding appended lines into the pool until shutdown.
///
/// The file may not exist yet — the tailer waits for it. Reads always start
/// at the beginning (the daemon wants the whole log, not just the suffix);
/// on shutdown the tailer performs one final read to EOF so records already
/// flushed to disk are not lost. Truncation/rotation is not followed — the
/// tailer is for replaying and following a growing log, not log rotation.
pub(crate) fn spawn_tailer(
    path: PathBuf,
    poll: Duration,
    ctx: SourceCtx,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("bgp-serve-tail".to_owned())
        .spawn(move || {
            let mut file = loop {
                match std::fs::File::open(&path) {
                    Ok(f) => break f,
                    Err(_) => {
                        if ctx.shutdown.requested() {
                            return;
                        }
                        std::thread::sleep(poll);
                    }
                }
            };
            let mut framer = LineFramer::new(ctx.max_line_bytes);
            let mut buf = [0u8; 16 * 1024];
            let mut finishing = false;
            loop {
                match file.read(&mut buf) {
                    Ok(0) => {
                        if finishing {
                            ctx.consume_eof(&mut framer);
                            return;
                        }
                        if ctx.shutdown.requested() {
                            // One more pass in case of a racing append.
                            finishing = true;
                            continue;
                        }
                        std::thread::sleep(poll);
                    }
                    Ok(n) => {
                        if let Some(chunk) = buf.get(..n) {
                            if !ctx.consume_chunk(&mut framer, chunk) {
                                return;
                            }
                        }
                    }
                    Err(e) if is_timeout(&e) => std::thread::sleep(poll),
                    Err(_) => {
                        ctx.consume_eof(&mut framer);
                        return;
                    }
                }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::ring::EventRing;
    use crate::shard::ShardConfig;
    use std::io::Write;

    fn ctx(shards: usize) -> SourceCtx {
        let registry = Registry::new();
        let metrics = Arc::new(ServeMetrics::register(&registry));
        let ring = Arc::new(EventRing::new(16));
        let pool = Arc::new(
            ShardPool::start(
                &ShardConfig {
                    shards,
                    queue_capacity: 64,
                    temporal: bgp_model::Duration::minutes(5),
                    spatial: bgp_model::Duration::minutes(5),
                    impact: None,
                },
                &metrics,
                &ring,
            )
            .expect("pool starts"),
        );
        SourceCtx {
            pool,
            metrics,
            shutdown: Arc::new(Shutdown::new()),
            max_line_bytes: 1024,
            read_timeout: Duration::from_millis(50),
            decoder: Arc::new(LineDecoder::Bgp),
            recorder: None,
            full: None,
        }
    }

    #[test]
    fn tcp_ingest_parses_counts_and_drains() {
        let ctx = ctx(2);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let handle = spawn_ingest_listener(listener, ctx.clone()).expect("spawn listener");

        let code = raslog::Catalog::standard()
            .lookup("_bgp_err_kernel_panic")
            .expect("known code");
        let mut client = TcpStream::connect(addr).expect("connect");
        for i in 0..50u64 {
            let rec = raslog::RasRecord::new(
                i,
                bgp_model::Timestamp::from_unix(i as i64 * 3_600),
                "R00-M0-N00-J00".parse().expect("location"),
                code,
            );
            writeln!(client, "{}", raslog::format_record(&rec)).expect("send");
        }
        writeln!(client, "# a comment").expect("send comment");
        writeln!(client, "garbage line").expect("send garbage");
        // Unterminated trailing record must be flushed by EOF handling.
        let rec = raslog::RasRecord::new(
            99,
            bgp_model::Timestamp::from_unix(1_000_000),
            "R01-M0-N00-J00".parse().expect("location"),
            code,
        );
        write!(client, "{}", raslog::format_record(&rec)).expect("send trailing");
        drop(client);

        // EOF path: connection handler exits on its own; then shut down.
        while ctx.metrics.records_in.get() < 51 {
            std::thread::sleep(Duration::from_millis(5));
        }
        ctx.shutdown.request();
        handle.join().expect("listener joins");
        ctx.pool.close();
        ctx.pool.join();
        assert_eq!(ctx.pool.counters().records_in, 51);
        assert_eq!(ctx.metrics.rejected_malformed.get(), 1);
        assert_eq!(ctx.metrics.ingest_connections.get(), 1);
    }

    #[test]
    fn tailer_follows_appends_and_finishes_on_shutdown() {
        let ctx = ctx(1);
        let dir = std::env::temp_dir().join(format!("bgp-serve-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("tail.log");
        let _ = std::fs::remove_file(&path);
        let handle = spawn_tailer(path.clone(), Duration::from_millis(5), ctx.clone())
            .expect("spawn tailer");
        // File appears only after the tailer started.
        std::thread::sleep(Duration::from_millis(20));
        let code = raslog::Catalog::standard()
            .lookup("BULK_POWER_FATAL")
            .expect("known code");
        let mut f = std::fs::File::create(&path).expect("create log");
        for i in 0..10u64 {
            let rec = raslog::RasRecord::new(
                i,
                bgp_model::Timestamp::from_unix(i as i64 * 7_200),
                "R02-M1-N00-J00".parse().expect("location"),
                code,
            );
            writeln!(f, "{}", raslog::format_record(&rec)).expect("append");
        }
        f.flush().expect("flush");
        while ctx.metrics.records_in.get() < 10 {
            std::thread::sleep(Duration::from_millis(5));
        }
        ctx.shutdown.request();
        handle.join().expect("tailer joins");
        ctx.pool.close();
        ctx.pool.join();
        assert_eq!(ctx.pool.counters().records_in, 10);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
