//! Wall-clock instrumentation for the batch pipeline.
//!
//! The core stage executor is deliberately clock-free (it lives inside the
//! determinism lint scope), so timing happens here: [`StageTimer`]
//! implements [`StageObserver`], reads `Instant` around each stage run, and
//! publishes per-stage wall time into a [`Registry`] — the same registry
//! kind the daemon serves at `/metrics`. `coctl analyze --timings` uses it
//! through [`coanalysis::Pipeline::run_on_observed`].

use crate::metrics::{Registry, LATENCY_BUCKETS_NANOS};
use coanalysis::{StageId, StageObserver};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Number of stages (fixed by [`StageId::ALL`]).
const STAGES: usize = StageId::ALL.len();

/// Records per-stage wall-clock while a pipeline runs.
///
/// `stage_started` / `stage_finished` arrive on the executor's worker
/// threads; the timer keeps one slot per stage (each stage runs at most once
/// per pipeline execution) and turns the pairs into `stage_wall_nanos_*`
/// gauges plus one `stage_wall_nanos` histogram on the registry.
#[derive(Debug)]
pub struct StageTimer<'a> {
    registry: &'a Registry,
    starts: Mutex<[Option<Instant>; STAGES]>,
    elapsed: Mutex<[Option<u64>; STAGES]>,
}

impl<'a> StageTimer<'a> {
    /// A timer publishing into `registry`.
    pub fn new(registry: &'a Registry) -> StageTimer<'a> {
        StageTimer {
            registry,
            starts: Mutex::new([None; STAGES]),
            elapsed: Mutex::new([None; STAGES]),
        }
    }

    /// Prometheus-safe series name for one stage.
    fn series(id: StageId) -> String {
        format!("stage_wall_nanos_{}", id.name().replace('-', "_"))
    }

    /// Wall-clock nanoseconds for one stage, if it ran.
    pub fn elapsed_nanos(&self, id: StageId) -> Option<u64> {
        self.elapsed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id as usize)
            .copied()
            .flatten()
    }

    /// Human-readable per-stage report in topological order.
    pub fn report(&self) -> String {
        let elapsed = self.elapsed.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::from("stage timings:\n");
        for id in StageId::ALL {
            if let Some(Some(nanos)) = elapsed.get(id as usize).copied() {
                out.push_str(&format!(
                    "  {:<20} {:>10.3} ms\n",
                    id.name(),
                    nanos as f64 / 1e6
                ));
            }
        }
        out
    }
}

impl StageObserver for StageTimer<'_> {
    fn stage_started(&self, id: StageId) {
        let mut starts = self.starts.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = starts.get_mut(id as usize) {
            *slot = Some(Instant::now());
        }
    }

    fn stage_finished(&self, id: StageId) {
        let start = {
            let mut starts = self.starts.lock().unwrap_or_else(PoisonError::into_inner);
            starts.get_mut(id as usize).and_then(Option::take)
        };
        let Some(start) = start else { return };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(slot) = self
            .elapsed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_mut(id as usize)
        {
            *slot = Some(nanos);
        }
        self.registry
            .gauge(&StageTimer::series(id), "stage wall-clock (ns)")
            .set(i64::try_from(nanos).unwrap_or(i64::MAX));
        self.registry
            .histogram(
                "stage_wall_nanos",
                "per-stage wall-clock (ns)",
                LATENCY_BUCKETS_NANOS,
            )
            .observe(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_pairs_start_and_finish_into_series() {
        let registry = Registry::new();
        let timer = StageTimer::new(&registry);
        timer.stage_started(StageId::TemporalSpatial);
        timer.stage_finished(StageId::TemporalSpatial);
        let nanos = timer
            .elapsed_nanos(StageId::TemporalSpatial)
            .expect("stage timed");
        assert!(timer.elapsed_nanos(StageId::Causal).is_none());
        let series = registry
            .value("stage_wall_nanos_temporal_spatial")
            .expect("gauge registered");
        assert_eq!(series, i64::try_from(nanos).unwrap_or(i64::MAX));
        assert_eq!(registry.value("stage_wall_nanos"), Some(1));
        let report = timer.report();
        assert!(report.contains("temporal-spatial"));
        assert!(!report.contains("causal"));
        // Unpaired finish is ignored, not an error.
        timer.stage_finished(StageId::Causal);
        assert!(timer.elapsed_nanos(StageId::Causal).is_none());
    }

    #[test]
    fn timer_drives_a_real_pipeline_run() {
        let out = bgp_sim::Simulation::new(bgp_sim::SimConfig::small_test(5))
            .expect("valid config")
            .run();
        let ctx = coanalysis::AnalysisContext::new(&out.ras, &out.jobs);
        let registry = Registry::new();
        let timer = StageTimer::new(&registry);
        let pipeline = coanalysis::CoAnalysis::with_config(coanalysis::CoAnalysisConfig::default());
        let set = coanalysis::AnalysisSet::of(&[StageId::TemporalSpatial]);
        let _products = pipeline.run_on_observed(&ctx, set, &timer);
        assert!(timer.elapsed_nanos(StageId::TemporalSpatial).is_some());
        assert!(timer.report().contains("temporal-spatial"));
    }
}
