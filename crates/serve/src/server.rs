//! Daemon assembly and lifecycle: bind, spawn, drain, report.
//!
//! Shutdown is two-phase so results stay observable while the pipeline
//! drains: phase one (the `/shutdown` endpoint or [`Server::shutdown`])
//! stops the ingest sources and lets the shard pool drain every queued
//! record; the HTTP front-end keeps answering during the drain so a client
//! can watch `/summary` converge. Phase two, entered by [`Server::wait`]
//! once the pool has drained, stops the front-end and yields the final
//! [`FinalSummary`].

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::full::FullAnalysis;
use crate::http::{spawn_http_listener, HttpState};
use crate::metrics::{Registry, ServeMetrics};
use crate::recorder::ChunkRecorder;
use crate::ring::EventRing;
use crate::shard::{ShardConfig, ShardPool};
use crate::source::{spawn_ingest_listener, spawn_tailer, SourceCtx};
use bgp_ports::LineDecoder;
use coanalysis::stream::StreamCounters;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Two-phase shutdown latch shared by every component.
#[derive(Debug, Default)]
pub struct Shutdown {
    /// Phase one: stop ingesting, start draining.
    drain: AtomicBool,
    /// Phase two: everything drained, stop serving.
    stop: AtomicBool,
}

impl Shutdown {
    /// A latch with neither phase requested.
    pub fn new() -> Shutdown {
        Shutdown::default()
    }

    /// Request phase one (idempotent).
    pub fn request(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }

    /// Has phase one been requested?
    pub fn requested(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    /// Request phase two (idempotent). Implies phase one.
    pub fn request_final(&self) {
        self.drain.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Has phase two been requested?
    pub fn requested_final(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// What the daemon counted over its lifetime, reported after the drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinalSummary {
    /// Merged per-shard stream counters.
    pub counters: StreamCounters,
    /// Shards the pool ran.
    pub shards: usize,
    /// Unparsable ingest lines rejected.
    pub rejected_malformed: u64,
    /// Over-limit ingest lines rejected.
    pub rejected_oversized: u64,
    /// Sends that blocked on a full shard queue.
    pub backpressure_stalls: u64,
    /// Ingest connections accepted.
    pub ingest_connections: u64,
    /// HTTP requests served.
    pub http_requests: u64,
    /// HTTP clients disconnected for being too slow.
    pub slow_disconnects: u64,
    /// What `--record` did, when active ("wrote N frames to PATH" or the
    /// write failure — recording is best-effort and never fails the drain).
    pub recording: Option<String>,
    /// What `--full-analysis` folded, when active.
    pub analysis: Option<String>,
}

impl std::fmt::Display for FinalSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.counters;
        writeln!(
            f,
            "final: {} records in ({} fatal) -> {} events ({} warnings) across {} shards",
            c.records_in, c.fatal_in, c.events_out, c.warnings, self.shards
        )?;
        writeln!(
            f,
            "final: merged {} temporal + {} spatial (compression {:.2}x)",
            c.merged_temporal,
            c.merged_spatial,
            c.compression()
        )?;
        write!(
            f,
            "final: rejected {} malformed / {} oversized; {} stalls; \
             {} ingest conns; {} http requests ({} slow)",
            self.rejected_malformed,
            self.rejected_oversized,
            self.backpressure_stalls,
            self.ingest_connections,
            self.http_requests,
            self.slow_disconnects
        )?;
        if let Some(rec) = &self.recording {
            write!(f, "\nfinal: recording {rec}")?;
        }
        if let Some(a) = &self.analysis {
            write!(f, "\nfinal: analysis {a}")?;
        }
        Ok(())
    }
}

/// A running daemon: sockets bound, workers up.
#[derive(Debug)]
pub struct Server {
    ingest_addr: SocketAddr,
    http_addr: SocketAddr,
    shutdown: Arc<Shutdown>,
    pool: Arc<ShardPool>,
    metrics: Arc<ServeMetrics>,
    registry: Arc<Registry>,
    ring: Arc<EventRing>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    record: Option<(PathBuf, Arc<ChunkRecorder>)>,
    full: Option<Arc<FullAnalysis>>,
}

impl Server {
    /// Bind both listeners, start the shard pool and all source threads.
    pub fn start(cfg: &ServeConfig) -> Result<Server, ServeError> {
        let ingest_listener =
            TcpListener::bind(&cfg.ingest_addr).map_err(|e| ServeError::Bind {
                what: "ingest",
                addr: cfg.ingest_addr.clone(),
                source: e,
            })?;
        let http_listener = TcpListener::bind(&cfg.http_addr).map_err(|e| ServeError::Bind {
            what: "http",
            addr: cfg.http_addr.clone(),
            source: e,
        })?;
        let ingest_addr = ingest_listener.local_addr().map_err(ServeError::Io)?;
        let http_addr = http_listener.local_addr().map_err(ServeError::Io)?;

        let registry = Arc::new(Registry::new());
        let metrics = Arc::new(ServeMetrics::register(&registry));
        let ring = Arc::new(EventRing::new(cfg.ring_capacity));
        let shutdown = Arc::new(Shutdown::new());
        let pool = Arc::new(ShardPool::start(
            &ShardConfig {
                shards: cfg.shards,
                queue_capacity: cfg.queue_capacity,
                temporal: cfg.temporal,
                spatial: cfg.spatial,
                impact: cfg.impact.clone(),
            },
            &metrics,
            &ring,
        )?);

        let decoder = LineDecoder::for_format(cfg.format).ok_or_else(|| {
            ServeError::Config(format!(
                "format {} is not line-streamable (use --replay for cassettes)",
                cfg.format
            ))
        })?;
        let record = match &cfg.record {
            Some(path) => {
                let rec = ChunkRecorder::new(cfg.format)
                    .map_err(|e| ServeError::Config(format!("--record: {e}")))?;
                Some((path.clone(), Arc::new(rec)))
            }
            None => None,
        };
        // Load the replay cassette before any thread starts: a corrupt or
        // mismatched cassette is a startup error, not a silent empty run.
        let replay = cfg
            .replay
            .as_deref()
            .map(crate::replay::load_cassette)
            .transpose()?;
        // Likewise the job log: a bad --jobs file is a startup error.
        let full = match (&cfg.full_analysis, &cfg.jobs) {
            (true, Some(jobs)) => {
                let mut analysis_cfg = coanalysis::CoAnalysisConfig::default();
                if let Some(n) = cfg.analysis_threads {
                    analysis_cfg.threads = n;
                }
                Some(Arc::new(FullAnalysis::start(
                    analysis_cfg,
                    jobs,
                    cfg.queue_capacity,
                )?))
            }
            _ => None,
        };

        let source_ctx = SourceCtx {
            pool: Arc::clone(&pool),
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(&shutdown),
            max_line_bytes: cfg.max_line_bytes,
            read_timeout: cfg.read_timeout,
            decoder: Arc::new(decoder),
            recorder: record.as_ref().map(|(_, r)| Arc::clone(r)),
            full: full.as_ref().map(Arc::clone),
        };
        let mut threads = Vec::new();
        threads.push(
            spawn_ingest_listener(ingest_listener, source_ctx.clone())
                .map_err(ServeError::Spawn)?,
        );
        if let Some(path) = &cfg.tail {
            threads.push(
                spawn_tailer(path.clone(), cfg.tail_poll, source_ctx.clone())
                    .map_err(ServeError::Spawn)?,
            );
        }
        if let Some(cassette) = replay {
            threads.push(
                crate::replay::spawn_replayer(cassette, &source_ctx).map_err(ServeError::Spawn)?,
            );
        }
        threads.push(
            spawn_http_listener(
                http_listener,
                HttpState {
                    registry: Arc::clone(&registry),
                    ring: Arc::clone(&ring),
                    pool: Arc::clone(&pool),
                    metrics: Arc::clone(&metrics),
                    shutdown: Arc::clone(&shutdown),
                    full: full.as_ref().map(Arc::clone),
                    read_timeout: cfg.read_timeout,
                    write_timeout: cfg.write_timeout,
                },
            )
            .map_err(ServeError::Spawn)?,
        );

        Ok(Server {
            ingest_addr,
            http_addr,
            shutdown,
            pool,
            metrics,
            registry,
            ring,
            threads: Mutex::new(threads),
            record,
            full,
        })
    }

    /// Actual ingest address (useful with port 0).
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// Actual HTTP address (useful with port 0).
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// The daemon's metrics registry (shared with the HTTP front-end).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The recent-events ring.
    pub fn ring(&self) -> &Arc<EventRing> {
        &self.ring
    }

    /// Merged live counters (also served at `/summary`).
    pub fn counters(&self) -> StreamCounters {
        self.pool.counters()
    }

    /// The continuous-analysis worker, when `--full-analysis` is active.
    pub fn full_analysis(&self) -> Option<&Arc<FullAnalysis>> {
        self.full.as_ref()
    }

    /// Request a graceful shutdown (same as `GET /shutdown`).
    pub fn shutdown(&self) {
        self.shutdown.request();
    }

    /// Has a shutdown been requested (by either API or HTTP)?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.requested()
    }

    /// Block until shutdown is requested, drain everything, and return the
    /// final tallies. Every record accepted before the ingest sources closed
    /// is analyzed before this returns.
    pub fn wait(self) -> FinalSummary {
        while !self.shutdown.requested() {
            std::thread::sleep(crate::source::POLL_SLEEP);
        }
        let threads: Vec<JoinHandle<()>> = {
            let mut guard = self.threads.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        // The ingest listener and tailer observe phase one and join once
        // their connections drain; the pool then drains its queues; only
        // after that does phase two stop the HTTP thread.
        let mut http_threads = Vec::new();
        for t in threads {
            if t.thread().name() == Some("bgp-serve-http") {
                http_threads.push(t);
                continue;
            }
            let _ = t.join();
        }
        self.pool.close();
        self.pool.join();
        // The sources have joined, so nothing offers records anymore: close
        // the analysis queue and fold whatever is still buffered.
        if let Some(full) = &self.full {
            full.close();
            full.join();
        }
        self.shutdown.request_final();
        for t in http_threads {
            let _ = t.join();
        }
        // Every source thread has joined: the recording is complete.
        let recording = self
            .record
            .as_ref()
            .map(|(path, rec)| match rec.write_to(path) {
                Ok(frames) => format!("wrote {frames} frames to {}", path.display()),
                Err(e) => format!("FAILED writing {}: {e}", path.display()),
            });
        let analysis = self.full.as_ref().map(|full| {
            let snap = full.snapshot();
            format!(
                "folded {} batches ({} records) through the incremental stage graph",
                snap.batches, snap.records
            )
        });
        FinalSummary {
            counters: self.pool.counters(),
            shards: self.pool.shards(),
            rejected_malformed: self.metrics.rejected_malformed.get(),
            rejected_oversized: self.metrics.rejected_oversized.get(),
            backpressure_stalls: self.metrics.backpressure_stalls.get(),
            ingest_connections: self.metrics.ingest_connections.get(),
            http_requests: self.metrics.http_requests.get(),
            slow_disconnects: self.metrics.slow_disconnects.get(),
            recording,
            analysis,
        }
    }
}

/// Run a daemon to completion: bind, announce, wait for `/shutdown`, drain,
/// and print the final summary. This is the whole of `coserved` and
/// `coctl serve`.
pub fn run(cfg: &ServeConfig, out: &mut impl std::io::Write) -> Result<FinalSummary, ServeError> {
    let server = Server::start(cfg)?;
    writeln!(out, "bgp-serve: ingest on {}", server.ingest_addr()).map_err(ServeError::Io)?;
    writeln!(out, "bgp-serve: http   on {}", server.http_addr()).map_err(ServeError::Io)?;
    writeln!(
        out,
        "bgp-serve: {} shards; GET /healthz /metrics /events /summary{} /shutdown",
        cfg.shards,
        if cfg.full_analysis { " /analysis" } else { "" }
    )
    .map_err(ServeError::Io)?;
    out.flush().map_err(ServeError::Io)?;
    let summary = server.wait();
    writeln!(out, "{summary}").map_err(ServeError::Io)?;
    out.flush().map_err(ServeError::Io)?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_latch_is_two_phase() {
        let s = Shutdown::new();
        assert!(!s.requested() && !s.requested_final());
        s.request();
        assert!(s.requested() && !s.requested_final());
        s.request_final();
        assert!(s.requested() && s.requested_final());
        // request_final alone implies phase one.
        let s2 = Shutdown::new();
        s2.request_final();
        assert!(s2.requested());
    }

    #[test]
    fn final_summary_displays_every_counter() {
        let summary = FinalSummary {
            counters: StreamCounters {
                records_in: 10,
                fatal_in: 8,
                merged_temporal: 3,
                merged_spatial: 2,
                events_out: 3,
                warnings: 1,
            },
            shards: 4,
            rejected_malformed: 5,
            rejected_oversized: 6,
            backpressure_stalls: 7,
            ingest_connections: 2,
            http_requests: 9,
            slow_disconnects: 1,
            recording: None,
            analysis: None,
        };
        let text = summary.to_string();
        assert!(text.contains("10 records in (8 fatal) -> 3 events"));
        assert!(text.contains("3 temporal + 2 spatial"));
        assert!(text.contains("5 malformed / 6 oversized; 7 stalls"));
        assert!(!text.contains("recording"));
        let recorded = FinalSummary {
            recording: Some("wrote 3 frames to out.bgpcas".to_owned()),
            ..summary
        };
        assert!(recorded
            .to_string()
            .contains("final: recording wrote 3 frames to out.bgpcas"));
    }
}
