//! Typed errors for the daemon. The serve crate passes the workspace
//! no-panic lint: every failure path surfaces as a [`ServeError`].

use std::fmt;
use std::io;

/// Anything that can go wrong while configuring or running the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration (bad flag, bad value, inconsistent settings).
    Config(String),
    /// Binding a listener failed.
    Bind {
        /// Which listener ("ingest" or "http").
        what: &'static str,
        /// The address we tried to bind.
        addr: String,
        /// The underlying error.
        source: io::Error,
    },
    /// An impact file could not be read or parsed.
    Impact {
        /// The file path as given.
        path: String,
        /// 1-based line number (0 for whole-file problems).
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// An I/O failure outside the per-connection paths (those are absorbed
    /// into metrics — a broken client must not take the daemon down).
    Io(io::Error),
    /// A worker thread could not be spawned.
    Spawn(io::Error),
    /// The shard pool was already closed when a record arrived.
    PoolClosed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "configuration error: {msg}"),
            ServeError::Bind { what, addr, source } => {
                write!(f, "cannot bind {what} listener on {addr}: {source}")
            }
            ServeError::Impact { path, line, msg } => {
                if *line == 0 {
                    write!(f, "impact file {path}: {msg}")
                } else {
                    write!(f, "impact file {path}:{line}: {msg}")
                }
            }
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::Spawn(e) => write!(f, "cannot spawn worker thread: {e}"),
            ServeError::PoolClosed => write!(f, "shard pool is closed"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Io(e) | ServeError::Spawn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = ServeError::Bind {
            what: "ingest",
            addr: "127.0.0.1:7070".into(),
            source: io::Error::new(io::ErrorKind::AddrInUse, "in use"),
        };
        let s = e.to_string();
        assert!(s.contains("ingest") && s.contains("7070"));
        assert!(ServeError::Impact {
            path: "x".into(),
            line: 3,
            msg: "bad".into()
        }
        .to_string()
        .contains("x:3"));
    }
}
