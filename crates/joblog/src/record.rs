//! The job record value type and its small id types.

use bgp_model::{Duration, Partition, Timestamp};
use std::fmt;

/// A distinct executable ("execution file"). The paper treats jobs with the
/// same execution file as one *distinct job*; resubmissions share an
/// [`ExecId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExecId(pub u32);

/// A user (Intrepid had 236 in the study window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

/// A project/allocation (91 in the study window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProjectId(pub u32);

impl fmt::Display for ExecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{:05}.exe", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user{:03}", self.0)
    }
}

impl fmt::Display for ProjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proj{:03}", self.0)
    }
}

/// How the job left the system, as the *scheduler* saw it.
///
/// The exit code alone cannot distinguish a system failure from an
/// application error — that disambiguation is the whole point of co-analysis
/// — so analysis code treats this as a hint, never as ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitStatus {
    /// Exited with code 0.
    Completed,
    /// Exited with a nonzero code (crash, abort, kill).
    Failed(
        /// The exit code.
        u16,
    ),
    /// Removed from the queue before or during execution by the user or an
    /// administrator.
    Cancelled,
}

impl ExitStatus {
    /// True for [`ExitStatus::Completed`].
    pub fn is_success(self) -> bool {
        matches!(self, ExitStatus::Completed)
    }
}

impl fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitStatus::Completed => write!(f, "0"),
            ExitStatus::Failed(code) => write!(f, "{code}"),
            ExitStatus::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// One job accounting record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// Cobalt job id (unique per submission).
    pub job_id: u64,
    /// The executable; shared across resubmissions.
    pub exec: ExecId,
    /// Submitting user.
    pub user: UserId,
    /// Charged project.
    pub project: ProjectId,
    /// When the job entered the queue.
    pub queue_time: Timestamp,
    /// When it started running (after the partition reboot).
    pub start_time: Timestamp,
    /// When it exited (completed or interrupted).
    pub end_time: Timestamp,
    /// The allocated midplanes.
    pub partition: Partition,
    /// Exit disposition.
    pub exit: ExitStatus,
}

impl JobRecord {
    /// Requested size in midplanes.
    pub fn size_midplanes(&self) -> u32 {
        self.partition.len()
    }

    /// Is this a "wide" job in the paper's sense (≥ 32 midplanes)?
    pub fn is_wide(&self) -> bool {
        self.size_midplanes() >= 32
    }

    /// Wall-clock execution time.
    pub fn runtime(&self) -> Duration {
        self.end_time - self.start_time
    }

    /// Time spent waiting in the queue.
    pub fn queue_wait(&self) -> Duration {
        self.start_time - self.queue_time
    }

    /// Was the job running at instant `t` (start inclusive, end exclusive)?
    pub fn running_at(&self, t: Timestamp) -> bool {
        self.start_time <= t && t < self.end_time
    }

    /// Does the execution interval overlap `[t0, t1)`?
    pub fn overlaps(&self, t0: Timestamp, t1: Timestamp) -> bool {
        self.start_time < t1 && t0 < self.end_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobRecord {
        JobRecord {
            job_id: 8935,
            exec: ExecId(12),
            user: UserId(4),
            project: ProjectId(2),
            queue_time: Timestamp::from_unix(1000),
            start_time: Timestamp::from_unix(4000),
            end_time: Timestamp::from_unix(7600),
            partition: "R10-R11".parse().unwrap(),
            exit: ExitStatus::Completed,
        }
    }

    #[test]
    fn derived_quantities() {
        let j = job();
        assert_eq!(j.size_midplanes(), 4);
        assert!(!j.is_wide());
        assert_eq!(j.runtime(), Duration::seconds(3600));
        assert_eq!(j.queue_wait(), Duration::seconds(3000));
    }

    #[test]
    fn interval_semantics() {
        let j = job();
        assert!(!j.running_at(Timestamp::from_unix(3999)));
        assert!(j.running_at(Timestamp::from_unix(4000)));
        assert!(j.running_at(Timestamp::from_unix(7599)));
        assert!(!j.running_at(Timestamp::from_unix(7600)));
        assert!(j.overlaps(Timestamp::from_unix(0), Timestamp::from_unix(4001)));
        assert!(!j.overlaps(Timestamp::from_unix(0), Timestamp::from_unix(4000)));
        assert!(!j.overlaps(Timestamp::from_unix(7600), Timestamp::from_unix(9000)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ExecId(12).to_string(), "app00012.exe");
        assert_eq!(UserId(4).to_string(), "user004");
        assert_eq!(ProjectId(2).to_string(), "proj002");
        assert_eq!(ExitStatus::Completed.to_string(), "0");
        assert_eq!(ExitStatus::Failed(139).to_string(), "139");
        assert_eq!(ExitStatus::Cancelled.to_string(), "cancelled");
        assert!(ExitStatus::Completed.is_success());
        assert!(!ExitStatus::Failed(1).is_success());
    }

    #[test]
    fn wide_boundary() {
        let mut j = job();
        j.partition = bgp_model::Partition::contiguous(0, 32).unwrap();
        assert!(j.is_wide());
        j.partition = bgp_model::Partition::contiguous(0, 16).unwrap();
        assert!(!j.is_wide());
    }
}
