//! Columnar `.bgpsnap` codec for parsed job logs.
//!
//! After the shared 32-byte header ([`bgp_model::snapshot`]), records are
//! stored as little-endian column arrays of length `count`, in this order:
//!
//! | column | width | encoding |
//! |---|---|---|
//! | `job_id` | 8 | `u64` |
//! | `exec` | 4 | `u32` |
//! | `user` | 4 | `u32` |
//! | `project` | 4 | `u32` |
//! | `queue_time` | 8 | unix seconds, `i64` |
//! | `start_time` | 8 | unix seconds, `i64` |
//! | `end_time` | 8 | unix seconds, `i64` |
//! | `partition` | 16 | midplane bitmask, `u128` |
//! | `exit` | 4 | `[tag, code_lo, code_hi, 0]` (0 = completed, 1 = failed, 2 = cancelled) |
//!
//! Decoding re-validates everything the parser validates — partition mask
//! against the machine, time monotonicity, exit tag — so a corrupt payload
//! yields a typed [`SnapshotError::BadRecord`] instead of an impossible
//! record entering analysis.

use crate::record::{ExecId, ExitStatus, JobRecord, ProjectId, UserId};
use bgp_model::snapshot::{Cursor, SnapshotError, SnapshotHeader, SnapshotKind, HEADER_LEN};
use bgp_model::{Partition, Timestamp};

/// On-disk format version. Bump whenever the record columns change shape —
/// the `snapshot-version` xtask lint ties this to [`LAYOUT_FINGERPRINT`].
pub const FORMAT_VERSION: u32 = 1;

/// Fingerprint of the [`JobRecord`] field list (`bgp_model::bytes::fnv1a_64`
/// over `name:type` pairs). `cargo xtask lint` recomputes this from
/// `record.rs`; if it disagrees, the record layout changed and both this
/// constant and [`FORMAT_VERSION`] must be updated together.
pub const LAYOUT_FINGERPRINT: u64 = 0x15fc_b84c_c3a7_2c60;

/// Bytes per record across all columns.
const BYTES_PER_RECORD: usize = 8 + 4 + 4 + 4 + 8 + 8 + 8 + 16 + 4;

fn encode_exit(exit: ExitStatus) -> [u8; 4] {
    match exit {
        ExitStatus::Completed => [0, 0, 0, 0],
        ExitStatus::Failed(code) => {
            let [lo, hi] = code.to_le_bytes();
            [1, lo, hi, 0]
        }
        ExitStatus::Cancelled => [2, 0, 0, 0],
    }
}

fn decode_exit(b: [u8; 4], index: u64) -> Result<ExitStatus, SnapshotError> {
    let bad = |what: String| SnapshotError::BadRecord { index, what };
    let [tag, lo, hi, pad] = b;
    if pad != 0 {
        return Err(bad(format!("exit: nonzero pad byte {pad}")));
    }
    match (tag, u16::from_le_bytes([lo, hi])) {
        (0, 0) => Ok(ExitStatus::Completed),
        (1, code) => Ok(ExitStatus::Failed(code)),
        (2, 0) => Ok(ExitStatus::Cancelled),
        (tag, code) => Err(bad(format!("exit: tag {tag} code {code}"))),
    }
}

/// Serialize parsed jobs (plus the hash of the source text they came from)
/// into a complete `.bgpsnap` byte buffer.
pub fn encode_snapshot(jobs: &[JobRecord], source_hash: u64) -> Vec<u8> {
    let header = SnapshotHeader {
        kind: SnapshotKind::Job,
        version: FORMAT_VERSION,
        count: jobs.len() as u64,
        source_hash,
    };
    let mut out = Vec::with_capacity(HEADER_LEN + jobs.len() * BYTES_PER_RECORD);
    header.write_to(&mut out);
    for j in jobs {
        out.extend_from_slice(&j.job_id.to_le_bytes());
    }
    for j in jobs {
        out.extend_from_slice(&j.exec.0.to_le_bytes());
    }
    for j in jobs {
        out.extend_from_slice(&j.user.0.to_le_bytes());
    }
    for j in jobs {
        out.extend_from_slice(&j.project.0.to_le_bytes());
    }
    for j in jobs {
        out.extend_from_slice(&j.queue_time.as_unix().to_le_bytes());
    }
    for j in jobs {
        out.extend_from_slice(&j.start_time.as_unix().to_le_bytes());
    }
    for j in jobs {
        out.extend_from_slice(&j.end_time.as_unix().to_le_bytes());
    }
    for j in jobs {
        out.extend_from_slice(&j.partition.mask().to_le_bytes());
    }
    for j in jobs {
        out.extend_from_slice(&encode_exit(j.exit));
    }
    out
}

/// Decode a `.bgpsnap` buffer back into job records.
///
/// `expected_hash`, when given, is the content hash of the *current* source
/// text; a snapshot written from different text is rejected with
/// [`SnapshotError::HashMismatch`]. Every error is recoverable by re-parsing
/// the source.
pub fn decode_snapshot(
    bytes: &[u8],
    expected_hash: Option<u64>,
) -> Result<Vec<JobRecord>, SnapshotError> {
    let header = SnapshotHeader::parse(bytes, SnapshotKind::Job)?;
    header.validate(FORMAT_VERSION, expected_hash)?;
    if header.count > bytes.len() as u64 {
        // Each record needs BYTES_PER_RECORD > 1 bytes, so this is already
        // truncated — and it makes the usize arithmetic below safe.
        return Err(SnapshotError::Truncated {
            needed: usize::MAX,
            have: bytes.len(),
        });
    }
    let n = header.count as usize;
    let mut cur = Cursor::new(&bytes[HEADER_LEN..]);
    let c_job_id = cur.take(n * 8)?;
    let c_exec = cur.take(n * 4)?;
    let c_user = cur.take(n * 4)?;
    let c_project = cur.take(n * 4)?;
    let c_queue = cur.take(n * 8)?;
    let c_start = cur.take(n * 8)?;
    let c_end = cur.take(n * 8)?;
    let c_part = cur.take(n * 16)?;
    let c_exit = cur.take(n * 4)?;
    cur.finish()?;

    let mut jobs = Vec::with_capacity(n);
    for i in 0..n {
        let idx = i as u64;
        let bad = |what: String| SnapshotError::BadRecord { index: idx, what };
        let queue_time = Timestamp::from_unix(le_u64(c_queue, i) as i64);
        let start_time = Timestamp::from_unix(le_u64(c_start, i) as i64);
        let end_time = Timestamp::from_unix(le_u64(c_end, i) as i64);
        if end_time < start_time || start_time < queue_time {
            return Err(bad("non-monotone times".to_owned()));
        }
        let mut mask = [0u8; 16];
        mask.copy_from_slice(&c_part[i * 16..i * 16 + 16]);
        let partition = Partition::from_mask(u128::from_le_bytes(mask))
            .map_err(|e| bad(format!("partition: {e}")))?;
        if partition.is_empty() {
            return Err(bad("empty partition".to_owned()));
        }
        let mut exit = [0u8; 4];
        exit.copy_from_slice(&c_exit[i * 4..i * 4 + 4]);
        jobs.push(JobRecord {
            job_id: le_u64(c_job_id, i),
            exec: ExecId(le_u32(c_exec, i)),
            user: UserId(le_u32(c_user, i)),
            project: ProjectId(le_u32(c_project, i)),
            queue_time,
            start_time,
            end_time,
            partition,
            exit: decode_exit(exit, idx)?,
        });
    }
    Ok(jobs)
}

fn le_u64(col: &[u8], i: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&col[i * 8..i * 8 + 8]);
    u64::from_le_bytes(b)
}

fn le_u32(col: &[u8], i: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&col[i * 4..i * 4 + 4]);
    u32::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn jobs() -> Vec<JobRecord> {
        (0..9u64)
            .map(|n| JobRecord {
                job_id: n * 17,
                exec: ExecId(n as u32),
                user: UserId((n % 4) as u32),
                project: ProjectId((n % 2) as u32),
                queue_time: Timestamp::from_unix(1000 + n as i64),
                start_time: Timestamp::from_unix(2000 + n as i64),
                end_time: Timestamp::from_unix(3000 + n as i64),
                partition: Partition::contiguous((n % 70) as u8, 1 + (n % 4) as u32).unwrap(),
                exit: match n % 3 {
                    0 => ExitStatus::Completed,
                    1 => ExitStatus::Failed(n as u16),
                    _ => ExitStatus::Cancelled,
                },
            })
            .collect()
    }

    #[test]
    fn round_trip_field_for_field() {
        let js = jobs();
        let bytes = encode_snapshot(&js, 11);
        assert_eq!(bytes.len(), HEADER_LEN + js.len() * BYTES_PER_RECORD);
        let back = decode_snapshot(&bytes, Some(11)).unwrap();
        assert_eq!(back, js);
        assert_eq!(decode_snapshot(&bytes, None).unwrap(), js);
        let empty = encode_snapshot(&[], 1);
        assert_eq!(decode_snapshot(&empty, Some(1)).unwrap(), vec![]);
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let js = jobs();
        let bytes = encode_snapshot(&js, 11);
        // A RAS-kind snapshot is rejected by kind, not misread.
        let mut k = bytes.clone();
        k[8] = 1;
        assert!(matches!(
            decode_snapshot(&k, Some(11)),
            Err(SnapshotError::WrongKind { found: 1, .. })
        ));
        // Version bump.
        let mut v = bytes.clone();
        v[12] ^= 0xff;
        assert!(matches!(
            decode_snapshot(&v, Some(11)),
            Err(SnapshotError::VersionMismatch { .. })
        ));
        // Truncation and hash mismatch.
        assert!(matches!(
            decode_snapshot(&bytes[..bytes.len() - 1], Some(11)),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            decode_snapshot(&bytes, Some(12)),
            Err(SnapshotError::HashMismatch { .. })
        ));
        // Partition mask with a bit beyond the machine.
        let mut p = bytes.clone();
        let part_col = HEADER_LEN + js.len() * (8 + 4 + 4 + 4 + 8 + 8 + 8);
        p[part_col + 15] = 0xff; // top bits of the first record's mask
        assert!(matches!(
            decode_snapshot(&p, Some(11)),
            Err(SnapshotError::BadRecord { index: 0, .. })
        ));
        // Bad exit tag.
        let mut x = bytes;
        let exit_col = part_col + js.len() * 16;
        x[exit_col] = 7;
        assert!(matches!(
            decode_snapshot(&x, Some(11)),
            Err(SnapshotError::BadRecord { index: 0, .. })
        ));
    }

    proptest! {
        #[test]
        fn random_bytes_never_panic(data in collection::vec(0u8..=255, 0..256)) {
            let _ = decode_snapshot(&data, Some(0));
            let mut framed = encode_snapshot(&jobs(), 0);
            for (i, b) in data.iter().enumerate() {
                if let Some(slot) = framed.get_mut(HEADER_LEN + i) {
                    *slot = *b;
                }
            }
            let _ = decode_snapshot(&framed, Some(0));
        }
    }
}
