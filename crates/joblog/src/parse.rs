//! Parsing the job accounting format (tolerant, streaming).

use crate::record::{ExecId, ExitStatus, JobRecord, ProjectId, UserId};
use bgp_model::{Partition, Timestamp};
use std::fmt;
use std::io::BufRead;

/// A parse failure for one line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobParseError {
    /// 1-based line number (0 for standalone parses).
    pub line: u64,
    /// Which field was malformed and why.
    pub message: String,
}

impl fmt::Display for JobParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JobParseError {}

fn field_err(what: &str, value: &str) -> JobParseError {
    JobParseError {
        line: 0,
        message: format!("bad {what}: {value:?}"),
    }
}

/// Parse an id token with a known prefix and suffix, e.g. `app00012.exe`.
fn parse_prefixed(token: &str, prefix: &str, suffix: &str) -> Option<u32> {
    token
        .strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Parse one accounting line into a [`JobRecord`].
pub fn parse_line(line: &str) -> Result<JobRecord, JobParseError> {
    let fields: Vec<&str> = line.split('|').collect();
    if fields.len() != 9 {
        return Err(JobParseError {
            line: 0,
            message: format!("expected 9 fields, found {}", fields.len()),
        });
    }
    let job_id: u64 = fields[0]
        .trim()
        .parse()
        .map_err(|_| field_err("JOBID", fields[0]))?;
    let exec = ExecId(
        parse_prefixed(fields[1].trim(), "app", ".exe")
            .ok_or_else(|| field_err("EXEC", fields[1]))?,
    );
    let user = UserId(
        parse_prefixed(fields[2].trim(), "user", "").ok_or_else(|| field_err("USER", fields[2]))?,
    );
    let project = ProjectId(
        parse_prefixed(fields[3].trim(), "proj", "")
            .ok_or_else(|| field_err("PROJECT", fields[3]))?,
    );
    // Unix-second fields; accept a fractional tail (Cobalt writes floats).
    let unix = |s: &str, what| -> Result<Timestamp, JobParseError> {
        let whole = s.trim().split('.').next().unwrap_or("");
        whole
            .parse::<i64>()
            .map(Timestamp::from_unix)
            .map_err(|_| field_err(what, s))
    };
    let queue_time = unix(fields[4], "QUEUE_TIME")?;
    let start_time = unix(fields[5], "START_TIME")?;
    let end_time = unix(fields[6], "END_TIME")?;
    if end_time < start_time || start_time < queue_time {
        return Err(JobParseError {
            line: 0,
            message: format!(
                "non-monotone times: queue {} start {} end {}",
                queue_time.as_unix(),
                start_time.as_unix(),
                end_time.as_unix()
            ),
        });
    }
    let partition: Partition = fields[7]
        .trim()
        .parse()
        .map_err(|_| field_err("LOCATION", fields[7]))?;
    let exit = match fields[8].trim() {
        "cancelled" => ExitStatus::Cancelled,
        "0" => ExitStatus::Completed,
        other => ExitStatus::Failed(other.parse().map_err(|_| field_err("EXIT", fields[8]))?),
    };
    Ok(JobRecord {
        job_id,
        exec,
        user,
        project,
        queue_time,
        start_time,
        end_time,
        partition,
        exit,
    })
}

/// Streaming reader: yields one `Result` per non-empty line.
pub struct JobReader<R> {
    inner: R,
    line_no: u64,
    buf: String,
}

impl<R: BufRead> JobReader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R) -> Self {
        JobReader {
            inner,
            line_no: 0,
            buf: String::new(),
        }
    }

    /// Read everything, skipping malformed lines.
    pub fn read_tolerant(self) -> (Vec<JobRecord>, Vec<JobParseError>) {
        let mut jobs = Vec::new();
        let mut errors = Vec::new();
        for item in self {
            match item {
                Ok(j) => jobs.push(j),
                Err(e) => errors.push(e),
            }
        }
        (jobs, errors)
    }

    /// Read everything, failing on the first malformed line.
    pub fn read_strict(self) -> Result<Vec<JobRecord>, JobParseError> {
        self.collect()
    }
}

impl<R: BufRead> Iterator for JobReader<R> {
    type Item = Result<JobRecord, JobParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.inner.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    self.line_no += 1;
                    let line = self.buf.trim_end_matches(['\n', '\r']);
                    if line.is_empty() {
                        continue;
                    }
                    return Some(parse_line(line).map_err(|mut e| {
                        e.line = self.line_no;
                        e
                    }));
                }
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::format_record;
    use proptest::prelude::*;

    fn job() -> JobRecord {
        JobRecord {
            job_id: 8935,
            exec: ExecId(3),
            user: UserId(1),
            project: ProjectId(9),
            queue_time: Timestamp::from_unix(100),
            start_time: Timestamp::from_unix(200),
            end_time: Timestamp::from_unix(300),
            partition: "R10-R11".parse().unwrap(),
            exit: ExitStatus::Completed,
        }
    }

    #[test]
    fn round_trip() {
        let j = job();
        assert_eq!(parse_line(&format_record(&j)).unwrap(), j);
        let mut j2 = j;
        j2.exit = ExitStatus::Failed(139);
        assert_eq!(parse_line(&format_record(&j2)).unwrap(), j2);
        let mut j3 = j;
        j3.exit = ExitStatus::Cancelled;
        assert_eq!(parse_line(&format_record(&j3)).unwrap(), j3);
    }

    #[test]
    fn accepts_fractional_cobalt_times() {
        let line = "8935|app00003.exe|user001|proj009|100.07|200.1|300.96|R10-R11|0";
        let j = parse_line(line).unwrap();
        assert_eq!(j.queue_time, Timestamp::from_unix(100));
        assert_eq!(j.end_time, Timestamp::from_unix(300));
    }

    #[test]
    fn rejects_malformed() {
        let good = format_record(&job());
        for bad in [
            "a|b".to_owned(),
            good.replacen("8935", "abc", 1),
            good.replace("app00003.exe", "notanapp"),
            good.replace("user001", "bob"),
            good.replace("proj009", "lab"),
            good.replace("R10-R11", "R99"),
            good.replace("|0", "|zero"),
            // end before start:
            "1|app00001.exe|user001|proj001|100|200|150|R00-M0|0".to_owned(),
            // start before queue:
            "1|app00001.exe|user001|proj001|300|200|400|R00-M0|0".to_owned(),
        ] {
            assert!(parse_line(&bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn reader_tolerant_and_strict() {
        let good = format_record(&job());
        let text = format!("{good}\njunk\n{good}\n");
        let (jobs, errs) = JobReader::new(text.as_bytes()).read_tolerant();
        assert_eq!(jobs.len(), 2);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].line, 2);
        assert!(JobReader::new(text.as_bytes()).read_strict().is_err());
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(
            job_id in 0u64..1_000_000,
            exec in 0u32..100_000,
            user in 0u32..1000,
            project in 0u32..1000,
            t0 in 0i64..1_000_000_000,
            wait in 0i64..100_000,
            run in 0i64..500_000,
            start_mp in 0u8..78,
            exit_code in 0u16..255,
        ) {
            let j = JobRecord {
                job_id,
                exec: ExecId(exec),
                user: UserId(user),
                project: ProjectId(project),
                queue_time: Timestamp::from_unix(t0),
                start_time: Timestamp::from_unix(t0 + wait),
                end_time: Timestamp::from_unix(t0 + wait + run),
                partition: Partition::contiguous(start_mp, 2).unwrap(),
                exit: if exit_code == 0 { ExitStatus::Completed } else { ExitStatus::Failed(exit_code) },
            };
            prop_assert_eq!(parse_line(&crate::write::format_record(&j)).unwrap(), j);
        }
    }
}
