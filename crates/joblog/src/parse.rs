//! Parsing the job accounting format (tolerant, streaming).

use crate::record::{ExecId, ExitStatus, JobRecord, ProjectId, UserId};
use bgp_model::{Partition, Timestamp};
use std::fmt;
use std::io::BufRead;

/// A parse failure for one line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobParseError {
    /// 1-based line number (0 for standalone parses).
    pub line: u64,
    /// Which field was malformed and why.
    pub message: String,
    /// Broad failure class (malformed line vs. reader failure).
    pub kind: JobParseErrorKind,
}

/// Broad class of a job-log parse failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobParseErrorKind {
    /// The line was present but malformed.
    Format,
    /// The underlying reader failed mid-stream (the log is truncated from
    /// this line on, not merely malformed).
    Io,
}

impl fmt::Display for JobParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JobParseError {}

fn format_err(message: String) -> JobParseError {
    JobParseError {
        line: 0,
        message,
        kind: JobParseErrorKind::Format,
    }
}

fn field_err(what: &str, value: &str) -> JobParseError {
    format_err(format!("bad {what}: {value:?}"))
}

fn field_err_bytes(what: &str, value: &[u8]) -> JobParseError {
    field_err(what, &String::from_utf8_lossy(value))
}

/// Parse an id token with a known prefix and suffix, e.g. `app00012.exe`.
fn parse_prefixed(token: &str, prefix: &str, suffix: &str) -> Option<u32> {
    token
        .strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Parse one accounting line into a [`JobRecord`].
pub fn parse_line(line: &str) -> Result<JobRecord, JobParseError> {
    parse_line_bytes(line.as_bytes())
}

/// Parse one accounting line given as raw bytes — the allocation-free hot
/// path used by the parallel ingestion layer (`crate::ingest`).
///
/// For any valid-UTF-8 line this behaves *identically* to [`parse_line`]
/// (same record, or same error message). Unlike the RAS format, every job
/// field is parsed, so each field is UTF-8-transcoded individually; a field
/// with invalid UTF-8 reports the same error as an unparseable value, with a
/// lossy payload.
pub fn parse_line_bytes(line: &[u8]) -> Result<JobRecord, JobParseError> {
    // Unlike RAS MESSAGE, no field may contain '|': unlimited `split('|')`
    // semantics, counting every separator.
    let mut fields: [&[u8]; 9] = [b""; 9];
    let mut count = 0usize;
    let mut rest = line;
    loop {
        match bgp_model::bytes::find_byte(b'|', rest) {
            Some(i) => {
                if count < 9 {
                    fields[count] = &rest[..i];
                }
                count += 1;
                rest = &rest[i + 1..];
            }
            None => {
                if count < 9 {
                    fields[count] = rest;
                }
                count += 1;
                break;
            }
        }
    }
    if count != 9 {
        return Err(format_err(format!("expected 9 fields, found {count}")));
    }
    fn text(f: &[u8]) -> Option<&str> {
        std::str::from_utf8(f).ok().map(str::trim)
    }
    let job_id: u64 = text(fields[0])
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| field_err_bytes("JOBID", fields[0]))?;
    let exec = ExecId(
        text(fields[1])
            .and_then(|s| parse_prefixed(s, "app", ".exe"))
            .ok_or_else(|| field_err_bytes("EXEC", fields[1]))?,
    );
    let user = UserId(
        text(fields[2])
            .and_then(|s| parse_prefixed(s, "user", ""))
            .ok_or_else(|| field_err_bytes("USER", fields[2]))?,
    );
    let project = ProjectId(
        text(fields[3])
            .and_then(|s| parse_prefixed(s, "proj", ""))
            .ok_or_else(|| field_err_bytes("PROJECT", fields[3]))?,
    );
    // Unix-second fields; accept a fractional tail (Cobalt writes floats).
    let unix = |f: &[u8], what| -> Result<Timestamp, JobParseError> {
        text(f)
            .and_then(|s| s.split('.').next())
            .and_then(|whole| whole.parse::<i64>().ok())
            .map(Timestamp::from_unix)
            .ok_or_else(|| field_err_bytes(what, f))
    };
    let queue_time = unix(fields[4], "QUEUE_TIME")?;
    let start_time = unix(fields[5], "START_TIME")?;
    let end_time = unix(fields[6], "END_TIME")?;
    if end_time < start_time || start_time < queue_time {
        return Err(format_err(format!(
            "non-monotone times: queue {} start {} end {}",
            queue_time.as_unix(),
            start_time.as_unix(),
            end_time.as_unix()
        )));
    }
    let partition: Partition = text(fields[7])
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| field_err_bytes("LOCATION", fields[7]))?;
    let exit = match text(fields[8]) {
        Some("cancelled") => ExitStatus::Cancelled,
        Some("0") => ExitStatus::Completed,
        other => ExitStatus::Failed(
            other
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| field_err_bytes("EXIT", fields[8]))?,
        ),
    };
    Ok(JobRecord {
        job_id,
        exec,
        user,
        project,
        queue_time,
        start_time,
        end_time,
        partition,
        exit,
    })
}

/// Streaming reader: yields one `Result` per non-empty line.
pub struct JobReader<R> {
    inner: R,
    line_no: u64,
    buf: String,
    failed: bool,
}

impl<R: BufRead> JobReader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R) -> Self {
        JobReader {
            inner,
            line_no: 0,
            buf: String::new(),
            failed: false,
        }
    }

    /// Read everything, skipping malformed lines.
    pub fn read_tolerant(self) -> (Vec<JobRecord>, Vec<JobParseError>) {
        let mut jobs = Vec::new();
        let mut errors = Vec::new();
        for item in self {
            match item {
                Ok(j) => jobs.push(j),
                Err(e) => errors.push(e),
            }
        }
        (jobs, errors)
    }

    /// Read everything, failing on the first malformed line.
    pub fn read_strict(self) -> Result<Vec<JobRecord>, JobParseError> {
        self.collect()
    }
}

impl<R: BufRead> Iterator for JobReader<R> {
    type Item = Result<JobRecord, JobParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            self.buf.clear();
            match self.inner.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    self.line_no += 1;
                    let line = self.buf.trim_end_matches(['\n', '\r']);
                    if line.is_empty() {
                        continue;
                    }
                    return Some(parse_line(line).map_err(|mut e| {
                        e.line = self.line_no;
                        e
                    }));
                }
                Err(e) => {
                    // Surface the failure once (the log is truncated here),
                    // then fuse: a persistent error must not loop forever.
                    self.failed = true;
                    self.line_no += 1;
                    return Some(Err(JobParseError {
                        line: self.line_no,
                        message: format!("I/O error: {e}"),
                        kind: JobParseErrorKind::Io,
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::format_record;
    use proptest::prelude::*;

    fn job() -> JobRecord {
        JobRecord {
            job_id: 8935,
            exec: ExecId(3),
            user: UserId(1),
            project: ProjectId(9),
            queue_time: Timestamp::from_unix(100),
            start_time: Timestamp::from_unix(200),
            end_time: Timestamp::from_unix(300),
            partition: "R10-R11".parse().unwrap(),
            exit: ExitStatus::Completed,
        }
    }

    #[test]
    fn round_trip() {
        let j = job();
        assert_eq!(parse_line(&format_record(&j)).unwrap(), j);
        let mut j2 = j;
        j2.exit = ExitStatus::Failed(139);
        assert_eq!(parse_line(&format_record(&j2)).unwrap(), j2);
        let mut j3 = j;
        j3.exit = ExitStatus::Cancelled;
        assert_eq!(parse_line(&format_record(&j3)).unwrap(), j3);
    }

    #[test]
    fn accepts_fractional_cobalt_times() {
        let line = "8935|app00003.exe|user001|proj009|100.07|200.1|300.96|R10-R11|0";
        let j = parse_line(line).unwrap();
        assert_eq!(j.queue_time, Timestamp::from_unix(100));
        assert_eq!(j.end_time, Timestamp::from_unix(300));
    }

    #[test]
    fn rejects_malformed() {
        let good = format_record(&job());
        for bad in [
            "a|b".to_owned(),
            good.replacen("8935", "abc", 1),
            good.replace("app00003.exe", "notanapp"),
            good.replace("user001", "bob"),
            good.replace("proj009", "lab"),
            good.replace("R10-R11", "R99"),
            good.replace("|0", "|zero"),
            // end before start:
            "1|app00001.exe|user001|proj001|100|200|150|R00-M0|0".to_owned(),
            // start before queue:
            "1|app00001.exe|user001|proj001|300|200|400|R00-M0|0".to_owned(),
        ] {
            assert!(parse_line(&bad).is_err(), "should reject {bad:?}");
        }
    }

    struct FailingReader;

    impl std::io::Read for FailingReader {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk on fire"))
        }
    }

    #[test]
    fn io_errors_surface_once_with_line_number() {
        let text = format!("{}\n", format_record(&job()));
        let chained = std::io::Read::chain(text.as_bytes(), FailingReader);
        let (jobs, errors) = JobReader::new(std::io::BufReader::new(chained)).read_tolerant();
        assert_eq!(jobs.len(), 1);
        assert_eq!(errors.len(), 1, "I/O error must surface exactly once");
        assert_eq!(errors[0].line, 2);
        assert_eq!(errors[0].kind, JobParseErrorKind::Io);
        assert!(errors[0].message.contains("disk on fire"));
    }

    #[test]
    fn format_errors_carry_format_kind() {
        let e = parse_line("a|b").unwrap_err();
        assert_eq!(e.kind, JobParseErrorKind::Format);
    }

    #[test]
    fn reader_tolerant_and_strict() {
        let good = format_record(&job());
        let text = format!("{good}\njunk\n{good}\n");
        let (jobs, errs) = JobReader::new(text.as_bytes()).read_tolerant();
        assert_eq!(jobs.len(), 2);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].line, 2);
        assert!(JobReader::new(text.as_bytes()).read_strict().is_err());
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(
            job_id in 0u64..1_000_000,
            exec in 0u32..100_000,
            user in 0u32..1000,
            project in 0u32..1000,
            t0 in 0i64..1_000_000_000,
            wait in 0i64..100_000,
            run in 0i64..500_000,
            start_mp in 0u8..78,
            exit_code in 0u16..255,
        ) {
            let j = JobRecord {
                job_id,
                exec: ExecId(exec),
                user: UserId(user),
                project: ProjectId(project),
                queue_time: Timestamp::from_unix(t0),
                start_time: Timestamp::from_unix(t0 + wait),
                end_time: Timestamp::from_unix(t0 + wait + run),
                partition: Partition::contiguous(start_mp, 2).unwrap(),
                exit: if exit_code == 0 { ExitStatus::Completed } else { ExitStatus::Failed(exit_code) },
            };
            prop_assert_eq!(parse_line(&crate::write::format_record(&j)).unwrap(), j);
        }
    }
}
