//! Parallel, zero-copy ingestion of job accounting text.
//!
//! Mirrors `raslog::ingest`: the whole log is held in memory once, split
//! into newline-aligned byte chunks ([`bgp_model::bytes::line_chunks`]), and
//! parsed on scoped threads with the allocation-free byte parser
//! ([`crate::parse::parse_line_bytes`]).
//!
//! ## Equivalence contract
//!
//! For valid-UTF-8 input, [`parse_log_bytes`] is *bit-identical* to draining
//! a [`crate::JobReader`] over the same bytes: same jobs in the same order,
//! same errors with the same global 1-based line numbers (blank lines are
//! counted but skipped, trailing `\r` runs are trimmed, text after the last
//! newline counts as a final line). The integration tests pin this
//! record-for-record and error-for-error.

use crate::parse::{parse_line_bytes, JobParseError};
use crate::record::JobRecord;
use bgp_model::bytes::{find_byte, line_chunks, map_chunks_parallel};

/// Per-chunk parse output, with chunk-local line numbers.
struct ChunkOut {
    jobs: Vec<JobRecord>,
    errors: Vec<JobParseError>,
    lines: u64,
}

fn parse_chunk(chunk: &[u8]) -> ChunkOut {
    let mut out = ChunkOut {
        // Accounting lines run ~70 bytes; presize to keep reallocation off
        // the hot path.
        jobs: Vec::with_capacity(chunk.len() / 70 + 1),
        errors: Vec::new(),
        lines: 0,
    };
    let mut rest = chunk;
    while !rest.is_empty() {
        let line = match find_byte(b'\n', rest) {
            Some(i) => {
                let line = &rest[..i];
                rest = &rest[i + 1..];
                line
            }
            None => {
                let line = rest;
                rest = &rest[rest.len()..];
                line
            }
        };
        out.lines += 1;
        let mut line = line;
        while let [head @ .., b'\r'] = line {
            line = head;
        }
        if line.is_empty() {
            continue;
        }
        match parse_line_bytes(line) {
            Ok(j) => out.jobs.push(j),
            Err(mut e) => {
                e.line = out.lines;
                out.errors.push(e);
            }
        }
    }
    out
}

/// Parse a whole job log held in memory, tolerantly, on up to `threads`
/// scoped worker threads (`0` and `1` both mean "parse inline").
///
/// Returns the jobs in input order and the malformed lines with their global
/// 1-based line numbers — exactly what
/// [`crate::JobReader::read_tolerant`] returns for the same bytes.
pub fn parse_log_bytes(data: &[u8], threads: usize) -> (Vec<JobRecord>, Vec<JobParseError>) {
    let chunks = line_chunks(data, threads);
    let parts = map_chunks_parallel(&chunks, |c| parse_chunk(c));
    let total: usize = parts.iter().map(|p| p.jobs.len()).sum();
    let mut jobs = Vec::with_capacity(total);
    let mut errors = Vec::new();
    let mut line_offset = 0u64;
    for part in parts {
        for mut e in part.errors {
            e.line += line_offset;
            errors.push(e);
        }
        jobs.extend(part.jobs);
        line_offset += part.lines;
    }
    (jobs, errors)
}

/// Strict variant of [`parse_log_bytes`]: fail on the first malformed line
/// (by global line number), like [`crate::JobReader::read_strict`].
pub fn parse_log_bytes_strict(
    data: &[u8],
    threads: usize,
) -> Result<Vec<JobRecord>, JobParseError> {
    let (jobs, errors) = parse_log_bytes(data, threads);
    match errors.into_iter().next() {
        None => Ok(jobs),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::JobReader;
    use crate::record::{ExecId, ExitStatus, ProjectId, UserId};
    use crate::write::format_record;
    use bgp_model::Timestamp;
    use proptest::prelude::*;

    fn job(n: u64) -> JobRecord {
        JobRecord {
            job_id: n,
            exec: ExecId((n % 50) as u32),
            user: UserId((n % 7) as u32),
            project: ProjectId((n % 3) as u32),
            queue_time: Timestamp::from_unix(1000 + n as i64),
            start_time: Timestamp::from_unix(2000 + n as i64),
            end_time: Timestamp::from_unix(3000 + n as i64),
            partition: "R10-R11".parse().unwrap(),
            exit: match n % 3 {
                0 => ExitStatus::Completed,
                1 => ExitStatus::Failed((n % 200) as u16),
                _ => ExitStatus::Cancelled,
            },
        }
    }

    fn assert_equivalent(text: &[u8], threads: usize) {
        let (serial_jobs, serial_errs) = match std::str::from_utf8(text) {
            Ok(_) => JobReader::new(text).read_tolerant(),
            Err(_) => return, // streaming reader can't represent this input
        };
        let (jobs, errs) = parse_log_bytes(text, threads);
        assert_eq!(jobs, serial_jobs, "jobs diverge at threads={threads}");
        assert_eq!(errs, serial_errs, "errors diverge at threads={threads}");
    }

    #[test]
    fn matches_serial_reader_across_chunk_counts() {
        let mut text = String::new();
        for i in 0..80 {
            if i % 11 == 0 {
                text.push_str("9|not|enough\n");
            }
            if i % 5 == 0 {
                text.push('\n');
            }
            text.push_str(&format_record(&job(i)));
            text.push('\n');
        }
        text.push_str("999|truncated");
        for threads in [0, 1, 2, 3, 7, 16] {
            assert_equivalent(text.as_bytes(), threads);
        }
    }

    #[test]
    fn strict_matches_first_error() {
        let good = format_record(&job(1));
        let text = format!("{good}\njunk\n");
        assert_eq!(
            parse_log_bytes_strict(text.as_bytes(), 4).unwrap_err().line,
            2
        );
    }

    /// One line of input for the boundary proptest.
    fn arb_line() -> impl Strategy<Value = String> {
        prop_oneof![
            (0u64..1000).prop_map(|i| format_record(&job(i))),
            (0u8..1).prop_map(|_| String::new()),
            (0u8..1).prop_map(|_| "\r".to_owned()),
            // Field-count and field-content failures.
            (0u8..12).prop_map(|n| "x|".repeat(usize::from(n))),
            (0u64..1000).prop_map(|i| format_record(&job(i)).replace("app", "äpp")),
        ]
    }

    proptest! {
        #[test]
        fn equivalence_over_nasty_boundaries(
            lines in collection::vec(arb_line(), 0..30),
            crlf in 0u8..2,
            final_newline in 0u8..2,
            threads in 1usize..8,
        ) {
            let sep = if crlf == 1 { "\r\n" } else { "\n" };
            let mut text = lines.join(sep);
            if final_newline == 1 && !text.is_empty() {
                text.push_str(sep);
            }
            assert_equivalent(text.as_bytes(), threads);
        }
    }
}
