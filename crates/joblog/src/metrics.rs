//! Systemwide scheduling metrics: utilization and bounded slowdown.
//!
//! Section VI-A of the paper argues interruptions are too rare to move
//! "systemwide performance metrics, such as system utilization rate and
//! bounded slowdown" — this module computes exactly those metrics so the
//! claim can be checked rather than asserted.

use crate::log::JobLog;
use bgp_model::{topology::NUM_MIDPLANES, Timestamp};

/// Machine utilization over a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Busy midplane-seconds delivered to jobs.
    pub busy_midplane_secs: i64,
    /// Total midplane-seconds in the window (80 × window length).
    pub capacity_midplane_secs: i64,
}

impl Utilization {
    /// Busy fraction of capacity.
    pub fn fraction(&self) -> f64 {
        if self.capacity_midplane_secs == 0 {
            return 0.0;
        }
        self.busy_midplane_secs as f64 / self.capacity_midplane_secs as f64
    }
}

/// Machine utilization of `jobs` over `[start, end)`, counting only the
/// portion of each job inside the window.
pub fn utilization(jobs: &JobLog, start: Timestamp, end: Timestamp) -> Utilization {
    let mut busy = 0i64;
    for j in jobs.jobs() {
        let s = j.start_time.max(start);
        let e = j.end_time.min(end);
        if e > s {
            busy += (e - s).as_secs() * i64::from(j.size_midplanes());
        }
    }
    Utilization {
        busy_midplane_secs: busy,
        capacity_midplane_secs: (end - start).as_secs().max(0) * i64::from(NUM_MIDPLANES),
    }
}

/// Bounded-slowdown statistics.
///
/// For a job with wait time *w* and runtime *r*, the bounded slowdown with
/// bound τ is `max(1, (w + r) / max(r, τ))` — the classic metric that stops
/// tiny jobs from dominating the average.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedSlowdown {
    /// The runtime bound τ used (seconds; 10 s is the literature default).
    pub bound_secs: i64,
    /// Mean bounded slowdown over all jobs.
    pub mean: f64,
    /// Maximum bounded slowdown.
    pub max: f64,
    /// Jobs measured.
    pub n: usize,
}

/// Compute bounded slowdown over every job in the log.
///
/// ```
/// use joblog::{JobLog, JobReader};
///
/// let line = "8935|app00003.exe|user001|proj009|100|1100|2100|R10-R11|0";
/// let jobs = JobLog::from_jobs(JobReader::new(line.as_bytes()).read_strict().unwrap());
/// let s = joblog::metrics::bounded_slowdown(&jobs, 10);
/// assert_eq!(s.n, 1);
/// assert!((s.mean - 2.0).abs() < 1e-9); // 1000 s wait + 1000 s run
/// ```
pub fn bounded_slowdown(jobs: &JobLog, bound_secs: i64) -> BoundedSlowdown {
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    let mut n = 0usize;
    for j in jobs.jobs() {
        let wait = j.queue_wait().as_secs().max(0) as f64;
        let run = j.runtime().as_secs().max(0) as f64;
        let denom = run.max(bound_secs as f64);
        if denom <= 0.0 {
            continue;
        }
        let s = ((wait + run) / denom).max(1.0);
        sum += s;
        max = max.max(s);
        n += 1;
    }
    BoundedSlowdown {
        bound_secs,
        mean: if n == 0 { 0.0 } else { sum / n as f64 },
        max,
        n,
    }
}

/// Mean queue wait per job-size class — the capability-scheduling signature
/// (wide jobs wait for drains; narrow jobs backfill instantly).
///
/// Returns `(size_midplanes, jobs, mean_wait_secs)` rows for every size
/// present in the log, ascending by size.
pub fn wait_by_size(jobs: &JobLog) -> Vec<(u32, usize, f64)> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<u32, (usize, i64)> = BTreeMap::new();
    for j in jobs.jobs() {
        let e = acc.entry(j.size_midplanes()).or_insert((0, 0));
        e.0 += 1;
        e.1 += j.queue_wait().as_secs().max(0);
    }
    acc.into_iter()
        .map(|(size, (n, total))| (size, n, total as f64 / n.max(1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ExecId, ExitStatus, JobRecord, ProjectId, UserId};

    fn job(job_id: u64, queue: i64, start: i64, end: i64, size_anchor: (u8, u32)) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(1),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(queue),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: bgp_model::Partition::contiguous(size_anchor.0, size_anchor.1).unwrap(),
            exit: ExitStatus::Completed,
        }
    }

    #[test]
    fn utilization_counts_midplane_seconds() {
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 0, 1_000, (0, 2)),   // 2 mp × 1000 s
            job(2, 0, 500, 1_500, (4, 4)), // 4 mp × 1000 s
        ]);
        let u = utilization(&jobs, Timestamp::from_unix(0), Timestamp::from_unix(2_000));
        assert_eq!(u.busy_midplane_secs, 2 * 1_000 + 4 * 1_000);
        assert_eq!(u.capacity_midplane_secs, 2_000 * 80);
        assert!((u.fraction() - 6_000.0 / 160_000.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_clips_to_window() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 0, 10_000, (0, 1))]);
        let u = utilization(
            &jobs,
            Timestamp::from_unix(2_000),
            Timestamp::from_unix(4_000),
        );
        assert_eq!(u.busy_midplane_secs, 2_000);
        // Degenerate window.
        let u = utilization(
            &jobs,
            Timestamp::from_unix(4_000),
            Timestamp::from_unix(4_000),
        );
        assert_eq!(u.fraction(), 0.0);
    }

    #[test]
    fn bounded_slowdown_basics() {
        let jobs = JobLog::from_jobs(vec![
            // No wait: slowdown 1.
            job(1, 100, 100, 1_100, (0, 1)),
            // 1000 s wait, 1000 s run: slowdown 2.
            job(2, 0, 1_000, 2_000, (2, 1)),
            // Tiny job with big wait: bounded by τ = 10 → (100+1)/10 = 10.1.
            job(3, 0, 100, 101, (4, 1)),
        ]);
        let s = bounded_slowdown(&jobs, 10);
        assert_eq!(s.n, 3);
        assert!((s.max - 10.1).abs() < 1e-9);
        assert!((s.mean - (1.0 + 2.0 + 10.1) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn wait_by_size_groups_and_averages() {
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 100, 1_100, (0, 1)),
            job(2, 0, 300, 1_300, (2, 1)),
            job(3, 0, 1_000, 2_000, (4, 4)),
        ]);
        let rows = wait_by_size(&jobs);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (1, 2, 200.0));
        assert_eq!(rows[1], (4, 1, 1_000.0));
    }

    #[test]
    fn empty_log() {
        let jobs = JobLog::default();
        assert_eq!(bounded_slowdown(&jobs, 10).n, 0);
        assert_eq!(
            utilization(&jobs, Timestamp::from_unix(0), Timestamp::from_unix(100)).fraction(),
            0.0
        );
    }
}
