//! # `joblog` — the Cobalt job log substrate
//!
//! Intrepid's jobs are scheduled by Cobalt; its accounting log records, per
//! job: submission/queue/start/end times, the allocated partition, the
//! executable, user, and project (Table III of the paper). Co-analysis joins
//! this log with the RAS log on **time × location**.
//!
//! The crate provides:
//!
//! * [`JobRecord`] — one job, with derived quantities (size class, runtime,
//!   Table VI runtime bucket).
//! * [`JobLog`] — a container indexed for the two queries co-analysis runs
//!   millions of times: *which jobs were running at time t on midplane m* and
//!   *which jobs ended near time t*. Plus distinct-job grouping by
//!   executable, which underpins the paper's resubmission analysis
//!   (Figure 7) and job-related filtering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingest;
pub mod log;
pub mod metrics;
pub mod parse;
pub mod record;
pub mod snapshot;
pub mod write;

pub use ingest::{parse_log_bytes, parse_log_bytes_strict};
pub use log::JobLog;
pub use parse::{parse_line, parse_line_bytes, JobParseError, JobParseErrorKind, JobReader};
pub use record::{ExecId, ExitStatus, JobRecord, ProjectId, UserId};
pub use write::{format_record, write_log};
