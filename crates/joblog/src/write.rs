//! Serializing job records to the pipe-separated accounting format.
//!
//! ```text
//! JOBID|EXEC|USER|PROJECT|QUEUE_TIME|START_TIME|END_TIME|LOCATION|EXIT
//! ```
//!
//! Times are Unix seconds (Cobalt writes Unix timestamps — Table III of the
//! paper shows `1209618043.1`; we keep whole seconds).

use crate::record::JobRecord;
use std::io::{self, Write};

/// Format a single record as a log line (no trailing newline).
pub fn format_record(j: &JobRecord) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}",
        j.job_id,
        j.exec,
        j.user,
        j.project,
        j.queue_time.as_unix(),
        j.start_time.as_unix(),
        j.end_time.as_unix(),
        j.partition,
        j.exit,
    )
}

/// Write records to `w`, one line each.
pub fn write_log<'a, W: Write, I: IntoIterator<Item = &'a JobRecord>>(
    w: &mut W,
    jobs: I,
) -> io::Result<()> {
    for j in jobs {
        writeln!(w, "{}", format_record(j))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ExecId, ExitStatus, ProjectId, UserId};
    use bgp_model::Timestamp;

    #[test]
    fn nine_fields() {
        let j = JobRecord {
            job_id: 8935,
            exec: ExecId(3),
            user: UserId(1),
            project: ProjectId(9),
            queue_time: Timestamp::from_unix(100),
            start_time: Timestamp::from_unix(200),
            end_time: Timestamp::from_unix(300),
            partition: "R10-R11".parse().unwrap(),
            exit: ExitStatus::Failed(137),
        };
        let line = format_record(&j);
        let fields: Vec<&str> = line.split('|').collect();
        assert_eq!(fields.len(), 9);
        assert_eq!(fields[0], "8935");
        assert_eq!(fields[1], "app00003.exe");
        assert_eq!(fields[7], "R10-R11");
        assert_eq!(fields[8], "137");
        let mut buf = Vec::new();
        write_log(&mut buf, [&j, &j]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 2);
    }
}
