//! The indexed in-memory job log container.

use crate::record::{ExecId, JobRecord};
use bgp_model::{topology, Duration, MidplaneId, Timestamp};
use std::collections::HashMap;

/// An immutable job log indexed for co-analysis queries.
///
/// Jobs are stored sorted by `start_time`. Two indices are maintained:
///
/// * per-midplane posting lists (job indices sorted by start time), for
///   *occupancy* queries — which jobs ran at time t / window w on midplane m;
/// * an end-time-sorted permutation, for *termination* queries — which jobs
///   ended inside a window (the interruption-matching probe).
///
/// Occupancy lookups bound their scan with the maximum job duration, so a
/// query is `O(log n + jobs-in-(t − max_dur, t])` rather than `O(n)`.
#[derive(Debug, Clone)]
pub struct JobLog {
    jobs: Vec<JobRecord>,
    by_midplane: Vec<Vec<u32>>,
    by_end_time: Vec<u32>,
    max_duration: Duration,
}

impl Default for JobLog {
    /// An empty log with a fully-built (empty) midplane index.
    fn default() -> JobLog {
        JobLog::from_jobs(Vec::new())
    }
}

impl JobLog {
    /// Build from job records (any order; sorted internally).
    pub fn from_jobs(mut jobs: Vec<JobRecord>) -> JobLog {
        jobs.sort_by_key(|j| (j.start_time, j.job_id));
        let mut by_midplane = vec![Vec::new(); usize::from(topology::NUM_MIDPLANES)];
        let mut max_duration = Duration::ZERO;
        for (i, j) in jobs.iter().enumerate() {
            for m in j.partition.midplanes() {
                by_midplane[m.index()].push(i as u32);
            }
            max_duration = max_duration.max(j.runtime());
        }
        let mut by_end_time: Vec<u32> = (0..jobs.len() as u32).collect();
        by_end_time.sort_by_key(|&i| (jobs[i as usize].end_time, jobs[i as usize].job_id));
        JobLog {
            jobs,
            by_midplane,
            by_end_time,
            max_duration,
        }
    }

    /// Merge `batch` rows (any order) into the log's sorted storage and
    /// indexes.
    ///
    /// Contract: the log afterwards equals [`JobLog::from_jobs`] over the
    /// concatenation of everything ever inserted — same record order, same
    /// posting lists, same termination permutation. Day-over-day appends
    /// (every new row starts at or after the current tail) extend the
    /// indexes in place; anything else falls back to a full rebuild. The
    /// return value reports which path ran (`true` = in-place).
    pub fn append(&mut self, mut batch: Vec<JobRecord>) -> bool {
        if batch.is_empty() {
            return true;
        }
        batch.sort_by_key(|j| (j.start_time, j.job_id));
        let tail = match (self.jobs.last(), batch.first()) {
            (Some(last), Some(first)) => {
                (first.start_time, first.job_id) >= (last.start_time, last.job_id)
            }
            _ => true,
        };
        if !tail {
            let mut all = std::mem::take(&mut self.jobs);
            all.extend(batch);
            *self = JobLog::from_jobs(all);
            return false;
        }
        // In-place tail extension. New indices are all larger than old
        // ones, so pushing them at the end of each posting list and
        // merging the termination permutation base-first reproduces what
        // the stable sorts in `from_jobs` would have built.
        let base = self.jobs.len() as u32;
        let mut new_end: Vec<u32> = (0..batch.len() as u32).map(|k| base + k).collect();
        new_end.sort_by_key(|&i| {
            batch
                .get((i - base) as usize)
                .map(|j| (j.end_time, j.job_id))
        });
        for (k, j) in batch.iter().enumerate() {
            for m in j.partition.midplanes() {
                if let Some(p) = self.by_midplane.get_mut(m.index()) {
                    p.push(base + k as u32);
                }
            }
            self.max_duration = self.max_duration.max(j.runtime());
        }
        self.jobs.extend(batch);
        let old_end = std::mem::take(&mut self.by_end_time);
        let mut merged = Vec::with_capacity(old_end.len() + new_end.len());
        let key = |i: u32| self.jobs.get(i as usize).map(|j| (j.end_time, j.job_id));
        let (mut a, mut b) = (0usize, 0usize);
        while a < old_end.len() && b < new_end.len() {
            let (Some(&oi), Some(&ni)) = (old_end.get(a), new_end.get(b)) else {
                break;
            };
            if key(ni) < key(oi) {
                merged.push(ni);
                b += 1;
            } else {
                merged.push(oi);
                a += 1;
            }
        }
        merged.extend_from_slice(old_end.get(a..).unwrap_or(&[]));
        merged.extend_from_slice(new_end.get(b..).unwrap_or(&[]));
        self.by_end_time = merged;
        true
    }

    /// All jobs, sorted by start time.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The longest runtime in the log.
    pub fn max_duration(&self) -> Duration {
        self.max_duration
    }

    /// Per-midplane posting list: indices into [`JobLog::jobs`] of the jobs
    /// whose partition covers `m`, in `(start_time, job_id)` order. This is
    /// the raw occupancy index behind [`JobLog::overlapping`]; sweeps that
    /// maintain their own incremental active set walk it directly.
    pub fn midplane_postings(&self, m: MidplaneId) -> &[u32] {
        self.by_midplane.get(m.index()).map_or(&[], Vec::as_slice)
    }

    /// Jobs running at instant `t` on midplane `m`.
    pub fn running_at(&self, m: MidplaneId, t: Timestamp) -> Vec<&JobRecord> {
        self.overlapping(m, t, t + Duration::seconds(1))
    }

    /// Jobs on midplane `m` whose execution interval overlaps `[t0, t1)`.
    pub fn overlapping(&self, m: MidplaneId, t0: Timestamp, t1: Timestamp) -> Vec<&JobRecord> {
        let mut out = Vec::new();
        self.for_each_overlapping(m, t0, t1, |j| out.push(j));
        out.reverse();
        out
    }

    /// Visit jobs on midplane `m` overlapping `[t0, t1)` without allocating,
    /// in *descending* start-time order (the index scan order). Hot loops
    /// (the matching sweep's occupancy count, the root-cause rule-2 probe)
    /// use this to avoid building a `Vec` per query; for early exits, note
    /// every overlapping job is visited — collect-then-test instead when
    /// only existence matters and the window is wide.
    pub fn for_each_overlapping<'a, F: FnMut(&'a JobRecord)>(
        &'a self,
        m: MidplaneId,
        t0: Timestamp,
        t1: Timestamp,
        mut f: F,
    ) {
        let Some(posting) = self.by_midplane.get(m.index()) else {
            return;
        };
        // Candidates must have start < t1 and start > t0 − max_duration.
        let hi = posting
            .partition_point(|&i| self.jobs.get(i as usize).is_some_and(|j| j.start_time < t1));
        let cutoff = t0 - self.max_duration;
        for &i in posting.get(..hi).unwrap_or(&[]).iter().rev() {
            let Some(j) = self.jobs.get(i as usize) else {
                continue;
            };
            if j.start_time < cutoff {
                break;
            }
            if j.overlaps(t0, t1) {
                f(j);
            }
        }
    }

    /// Jobs (anywhere on the machine) with `t0 <= end_time < t1`, in end-time
    /// order.
    pub fn ended_in_window(&self, t0: Timestamp, t1: Timestamp) -> Vec<&JobRecord> {
        let lo = self
            .by_end_time
            .partition_point(|&i| self.jobs[i as usize].end_time < t0);
        let hi = self
            .by_end_time
            .partition_point(|&i| self.jobs[i as usize].end_time < t1);
        self.by_end_time[lo..hi]
            .iter()
            .map(|&i| &self.jobs[i as usize])
            .collect()
    }

    /// Group job indices by executable, each group in submission
    /// (queue-time) order. This is the paper's "distinct job" notion.
    pub fn by_exec(&self) -> HashMap<ExecId, Vec<&JobRecord>> {
        let mut out: HashMap<ExecId, Vec<&JobRecord>> = HashMap::new();
        for j in &self.jobs {
            out.entry(j.exec).or_default().push(j);
        }
        for group in out.values_mut() {
            group.sort_by_key(|j| (j.queue_time, j.job_id));
        }
        out
    }

    /// Number of distinct executables.
    pub fn distinct_execs(&self) -> usize {
        let mut execs: Vec<ExecId> = self.jobs.iter().map(|j| j.exec).collect();
        execs.sort_unstable();
        execs.dedup();
        execs.len()
    }

    /// Number of executables submitted more than once.
    pub fn resubmitted_execs(&self) -> usize {
        self.by_exec().values().filter(|g| g.len() > 1).count()
    }

    /// Busy seconds on midplane `m` (sum of runtimes of jobs touching it) —
    /// the "workload" series of Figure 4b.
    pub fn midplane_busy_seconds(&self, m: MidplaneId) -> i64 {
        self.by_midplane[m.index()]
            .iter()
            .map(|&i| self.jobs[i as usize].runtime().as_secs())
            .sum()
    }

    /// Busy seconds on midplane `m` counting only jobs of at least
    /// `min_midplanes` midplanes — the "wide-job workload" series of
    /// Figure 4c.
    pub fn midplane_busy_seconds_min_size(&self, m: MidplaneId, min_midplanes: u32) -> i64 {
        self.by_midplane[m.index()]
            .iter()
            .map(|&i| &self.jobs[i as usize])
            .filter(|j| j.size_midplanes() >= min_midplanes)
            .map(|j| j.runtime().as_secs())
            .sum()
    }

    /// A new log with only the jobs satisfying `pred`.
    pub fn filtered<F: FnMut(&JobRecord) -> bool>(&self, mut pred: F) -> JobLog {
        JobLog::from_jobs(self.jobs.iter().filter(|j| pred(j)).copied().collect())
    }

    /// Look up a job by id (linear scan; not on any hot path).
    pub fn by_job_id(&self, job_id: u64) -> Option<&JobRecord> {
        self.jobs.iter().find(|j| j.job_id == job_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ExecId, ExitStatus, ProjectId, UserId};

    fn job(job_id: u64, exec: u32, start: i64, end: i64, part: &str) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(exec),
            user: UserId(1),
            project: ProjectId(1),
            queue_time: Timestamp::from_unix(start - 50),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: ExitStatus::Completed,
        }
    }

    fn sample() -> JobLog {
        JobLog::from_jobs(vec![
            job(1, 10, 100, 500, "R00-M0"),
            job(2, 10, 600, 700, "R00-M0"),
            job(3, 11, 200, 900, "R00-M1"),
            job(4, 12, 50, 5000, "R10-R11"),
        ])
    }

    #[test]
    fn occupancy_queries() {
        let log = sample();
        let m0: MidplaneId = "R00-M0".parse().unwrap();
        let hits = log.running_at(m0, Timestamp::from_unix(300));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].job_id, 1);
        // Instant between jobs 1 and 2.
        assert!(log.running_at(m0, Timestamp::from_unix(550)).is_empty());
        // End-exclusive.
        assert!(log.running_at(m0, Timestamp::from_unix(500)).is_empty());
        // Window overlapping both.
        let hits = log.overlapping(m0, Timestamp::from_unix(400), Timestamp::from_unix(650));
        assert_eq!(
            hits.iter().map(|j| j.job_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // The wide job occupies R10..R11 midplanes.
        let m20: MidplaneId = "R10-M0".parse().unwrap();
        assert_eq!(log.running_at(m20, Timestamp::from_unix(1000)).len(), 1);
    }

    #[test]
    fn termination_queries() {
        let log = sample();
        let ended = log.ended_in_window(Timestamp::from_unix(500), Timestamp::from_unix(901));
        assert_eq!(
            ended.iter().map(|j| j.job_id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(log
            .ended_in_window(Timestamp::from_unix(0), Timestamp::from_unix(100))
            .is_empty());
    }

    #[test]
    fn exec_grouping() {
        let log = sample();
        let groups = log.by_exec();
        assert_eq!(groups[&ExecId(10)].len(), 2);
        // Submission order within the group.
        assert_eq!(groups[&ExecId(10)][0].job_id, 1);
        assert_eq!(log.distinct_execs(), 3);
        assert_eq!(log.resubmitted_execs(), 1);
    }

    #[test]
    fn busy_seconds() {
        let log = sample();
        let m0: MidplaneId = "R00-M0".parse().unwrap();
        assert_eq!(log.midplane_busy_seconds(m0), 400 + 100);
        let m20: MidplaneId = "R10-M0".parse().unwrap();
        assert_eq!(log.midplane_busy_seconds(m20), 4950);
        // Only the 4-midplane job counts at min size 4.
        assert_eq!(log.midplane_busy_seconds_min_size(m20, 4), 4950);
        assert_eq!(log.midplane_busy_seconds_min_size(m0, 4), 0);
    }

    #[test]
    fn midplane_postings_are_start_sorted() {
        let log = sample();
        let m0: MidplaneId = "R00-M0".parse().unwrap();
        let posting = log.midplane_postings(m0);
        assert_eq!(posting.len(), 2);
        let starts: Vec<_> = posting
            .iter()
            .map(|&i| log.jobs()[i as usize].start_time)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        let m_empty: MidplaneId = "R40-M1".parse().unwrap();
        assert!(log.midplane_postings(m_empty).is_empty());
    }

    #[test]
    fn filtering_and_lookup() {
        let log = sample();
        assert_eq!(log.filtered(|j| j.exec == ExecId(10)).len(), 2);
        assert_eq!(log.by_job_id(3).unwrap().exec, ExecId(11));
        assert!(log.by_job_id(99).is_none());
        assert_eq!(log.max_duration(), Duration::seconds(4950));
        assert!(!log.is_empty());
        assert!(JobLog::default().is_empty());
    }

    /// Every index of `a` equals `b` (the append-vs-rebuild oracle).
    fn assert_logs_identical(a: &JobLog, b: &JobLog) {
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.by_midplane, b.by_midplane);
        assert_eq!(a.by_end_time, b.by_end_time);
        assert_eq!(a.max_duration, b.max_duration);
    }

    #[test]
    fn append_tail_batch_is_in_place_and_matches_rebuild() {
        let head = vec![
            job(1, 10, 100, 500, "R00-M0"),
            job(2, 10, 600, 700, "R00-M0"),
        ];
        let tail = vec![
            job(4, 12, 900, 950, "R00-M0"),
            job(3, 11, 800, 5000, "R00-M1"),
        ];
        let mut log = JobLog::from_jobs(head.clone());
        assert!(log.append(tail.clone()));
        let mut all = head;
        all.extend(tail);
        assert_logs_identical(&log, &JobLog::from_jobs(all));
        assert_eq!(log.max_duration(), Duration::seconds(4200));
    }

    #[test]
    fn append_out_of_order_batch_rebuilds_and_matches() {
        let head = vec![job(1, 10, 500, 900, "R00-M0")];
        // Starts before the tail → must take (and report) the rebuild path.
        let tail = vec![job(2, 11, 100, 200, "R00-M1")];
        let mut log = JobLog::from_jobs(head.clone());
        assert!(!log.append(tail.clone()));
        let mut all = head;
        all.extend(tail);
        assert_logs_identical(&log, &JobLog::from_jobs(all));
    }

    #[test]
    fn append_empty_and_onto_empty() {
        let mut log = JobLog::default();
        assert!(log.append(Vec::new()));
        assert!(log.is_empty());
        assert!(log.append(vec![job(1, 1, 100, 200, "R00-M0")]));
        assert_logs_identical(
            &log,
            &JobLog::from_jobs(vec![job(1, 1, 100, 200, "R00-M0")]),
        );
    }

    proptest::proptest! {
        /// Appending any suffix of a random job stream must leave every
        /// index byte-identical to rebuilding from the whole stream —
        /// including duplicate ids, shared timestamps, and batches that
        /// land before the base's tail.
        #[test]
        fn append_matches_rebuild_at_any_split(
            jobs_spec in proptest::collection::vec(
                (0u8..10, 1i64..50_000, 1i64..30_000, 0u64..12), 1..40),
            split_frac in 0usize..41,
        ) {
            let all: Vec<JobRecord> = jobs_spec
                .iter()
                .enumerate()
                .map(|(i, &(mp, start, run, id))| JobRecord {
                    job_id: id,
                    exec: crate::record::ExecId(i as u32),
                    user: crate::record::UserId(0),
                    project: crate::record::ProjectId(0),
                    queue_time: Timestamp::from_unix(start - 1),
                    start_time: Timestamp::from_unix(start),
                    end_time: Timestamp::from_unix(start + run),
                    partition: bgp_model::Partition::contiguous(mp, 2).unwrap(),
                    exit: crate::record::ExitStatus::Completed,
                })
                .collect();
            let split = split_frac.min(all.len());
            let head = all.get(..split).unwrap_or(&[]).to_vec();
            let tail = all.get(split..).unwrap_or(&[]).to_vec();
            let mut log = JobLog::from_jobs(head);
            log.append(tail);
            let rebuilt = JobLog::from_jobs(all);
            proptest::prop_assert_eq!(&log.jobs, &rebuilt.jobs);
            proptest::prop_assert_eq!(&log.by_midplane, &rebuilt.by_midplane);
            proptest::prop_assert_eq!(&log.by_end_time, &rebuilt.by_end_time);
            proptest::prop_assert_eq!(log.max_duration, rebuilt.max_duration);
        }

        /// The interval index must agree exactly with a brute-force scan.
        #[test]
        fn overlapping_matches_brute_force(
            jobs_spec in proptest::collection::vec(
                (0u8..10, 1i64..50_000, 1i64..30_000), 1..40),
            probe_mp in 0u8..10,
            t0 in 0i64..80_000,
            len in 1i64..20_000,
        ) {
            let jobs_vec: Vec<JobRecord> = jobs_spec
                .iter()
                .enumerate()
                .map(|(i, &(mp, start, run))| JobRecord {
                    job_id: i as u64,
                    exec: crate::record::ExecId(i as u32),
                    user: crate::record::UserId(0),
                    project: crate::record::ProjectId(0),
                    queue_time: Timestamp::from_unix(start - 1),
                    start_time: Timestamp::from_unix(start),
                    end_time: Timestamp::from_unix(start + run),
                    partition: bgp_model::Partition::contiguous(mp, 2).unwrap(),
                    exit: crate::record::ExitStatus::Completed,
                })
                .collect();
            let log = JobLog::from_jobs(jobs_vec.clone());
            let m = bgp_model::MidplaneId::from_index(probe_mp).unwrap();
            let (a, b) = (Timestamp::from_unix(t0), Timestamp::from_unix(t0 + len));
            let mut fast: Vec<u64> =
                log.overlapping(m, a, b).iter().map(|j| j.job_id).collect();
            fast.sort_unstable();
            let mut brute: Vec<u64> = jobs_vec
                .iter()
                .filter(|j| j.partition.contains(m) && j.overlaps(a, b))
                .map(|j| j.job_id)
                .collect();
            brute.sort_unstable();
            proptest::prop_assert_eq!(fast, brute);
        }
    }

    #[test]
    fn overlap_scan_bounded_by_max_duration() {
        // A long job far in the past must still be found (the cutoff uses
        // max_duration), and short stale jobs must not be.
        let log = JobLog::from_jobs(vec![
            job(1, 1, 0, 1_000_000, "R00-M0"),
            job(2, 2, 10, 20, "R00-M0"),
        ]);
        let m0: MidplaneId = "R00-M0".parse().unwrap();
        let hits = log.running_at(m0, Timestamp::from_unix(500_000));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].job_id, 1);
    }
}
