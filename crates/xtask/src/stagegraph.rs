//! Whole-workspace dataflow models for the structural rules.
//!
//! Two models are extracted here, both built on [`crate::syntax`]:
//!
//! * [`StageGraphModel`] — the stage graph as *written*: the `StageId`
//!   variants and `deps()` declarations from `crates/core/src/stage.rs`,
//!   and per-`impl Stage` blocks the products each `run` actually reads
//!   from the `PipelineState` plus the `AnalysisContext` methods it
//!   touches (resolved transitively through free functions and methods
//!   that take the context). The `stage-deps` rule cross-checks the two.
//! * [`HashModel`] — which struct fields and functions carry
//!   `HashMap`/`HashSet` values, so the `parallel-determinism` rule can
//!   recognize hash-ordered iteration across file boundaries.
//!
//! Extraction is pattern-exact on `rustfmt`ed code. When a shape the model
//! depends on is missing (no `deps` match, no `fn id` body), the model
//! records a problem instead of guessing; the rule reports problems as
//! findings so format drift fails loudly.

use crate::source::SourceFile;
use crate::syntax::{calls, fns_in, Call, Group, Syntax, Tree};
use std::collections::{BTreeMap, BTreeSet};

/// One product read observed in a stage's `run` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRead {
    /// The `PipelineState` accessor called (e.g. `matching`).
    pub accessor: String,
    /// 1-based line of the call.
    pub line: usize,
}

/// The extracted model of one `impl Stage for …` block.
#[derive(Debug)]
pub struct StageImplModel {
    /// The implementing struct's name.
    pub struct_name: String,
    /// The `StageId` variant returned by `fn id`, when recognized.
    pub variant: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Product accessors called on the `PipelineState` parameter.
    pub state_reads: Vec<StageRead>,
    /// `AnalysisContext` methods reached from `run` (transitive).
    pub ctx_reads: BTreeSet<String>,
}

/// The stage graph as declared and as implemented.
#[derive(Debug)]
pub struct StageGraphModel {
    /// `StageId` variants in declaration order.
    pub variants: Vec<String>,
    /// `deps()` declarations: variant → direct dependency variants.
    pub declared: BTreeMap<String, Vec<String>>,
    /// One entry per `impl Stage for …` block.
    pub impls: Vec<StageImplModel>,
    /// Extraction failures: `(line, message)` on the stage file.
    pub problems: Vec<(usize, String)>,
}

/// `PipelineState` product accessors and the stage variant producing each.
///
/// Stages may read earlier products only through these accessors (direct
/// field access defeats both this model and the runtime read recorder), so
/// this table is the rule's ground truth. An accessor call not listed here
/// is itself reported, which forces the table to track the state's API.
pub const PRODUCT_ACCESSORS: &[(&str, &str)] = &[
    ("after_spatial", "TemporalSpatial"),
    ("events", "Causal"),
    ("matching", "Matching"),
    ("final_events", "JobRelated"),
    ("redundant_flags", "JobRelated"),
    ("root_cause", "RootCause"),
    ("midplane", "Midplane"),
];

/// The producing variant for a `PipelineState` accessor name, if known.
pub fn producer_of(accessor: &str) -> Option<&'static str> {
    PRODUCT_ACCESSORS
        .iter()
        .find(|(a, _)| *a == accessor)
        .map(|&(_, v)| v)
}

/// Transitive dependency closure of `from` under `declared`, as variant
/// names. Includes the members of `from` themselves.
pub fn closure(declared: &BTreeMap<String, Vec<String>>, from: &[String]) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = from.iter().cloned().collect();
    loop {
        let mut grew = false;
        for v in out.clone() {
            if let Some(deps) = declared.get(&v) {
                for d in deps {
                    grew |= out.insert(d.clone());
                }
            }
        }
        if !grew {
            return out;
        }
    }
}

/// Per-function summary used for transitive context-read resolution.
#[derive(Debug, Default, Clone)]
struct FnInfo {
    /// `AnalysisContext` methods called directly on the ctx parameter.
    direct: BTreeSet<String>,
    /// `(qualifier, callee)` of calls that receive the ctx parameter.
    edges: BTreeSet<(String, String)>,
}

/// Registry of every function (free or method) that takes an
/// `AnalysisContext` parameter, keyed both bare (`new`) and qualified
/// (`MidplaneProfile::new`). Same-name entries merge conservatively.
#[derive(Debug, Default)]
struct Registry {
    by_name: BTreeMap<String, FnInfo>,
}

impl Registry {
    fn merge(&mut self, key: String, info: &FnInfo) {
        let slot = self.by_name.entry(key).or_default();
        slot.direct.extend(info.direct.iter().cloned());
        slot.edges.extend(info.edges.iter().cloned());
    }

    /// Resolve a call's transitive ctx reads with a visited set to cut
    /// recursion cycles.
    fn reads_of(
        &self,
        qualifier: &str,
        callee: &str,
        visited: &mut BTreeSet<String>,
        out: &mut BTreeSet<String>,
    ) {
        let qualified = format!("{qualifier}::{callee}");
        let key = if !qualifier.is_empty() && self.by_name.contains_key(&qualified) {
            qualified
        } else {
            callee.to_owned()
        };
        if !visited.insert(key.clone()) {
            return;
        }
        if let Some(info) = self.by_name.get(&key) {
            out.extend(info.direct.iter().cloned());
            for (q, c) in &info.edges {
                self.reads_of(q, c, visited, out);
            }
        }
    }
}

/// Summarize one fn body given its ctx parameter name: direct ctx-method
/// calls (restricted to `ctx_methods`) and outgoing ctx-passing edges.
fn summarize_body(
    body: &Group,
    ctx_param: &str,
    ctx_methods: &BTreeSet<String>,
    self_ty: &str,
) -> FnInfo {
    let mut found: Vec<Call<'_>> = Vec::new();
    calls(&body.trees, &mut found);
    let mut info = FnInfo::default();
    for c in &found {
        if c.receiver == ctx_param && ctx_methods.contains(&c.callee) {
            info.direct.insert(c.callee.clone());
        } else if c.passes_ident(ctx_param) {
            let q = if c.qualifier == "Self" {
                self_ty.to_owned()
            } else {
                c.qualifier.clone()
            };
            info.edges.insert((q, c.callee.clone()));
        }
    }
    info
}

/// Build the ctx-fn registry over `files`: every fn with a parameter whose
/// type mentions `AnalysisContext`, keyed bare and (for methods) qualified.
fn build_registry(files: &[&SourceFile], ctx_methods: &BTreeSet<String>) -> Registry {
    let mut reg = Registry::default();
    for file in files {
        let syntax = Syntax::parse(file);
        // Method fns get qualified keys from their impl's self type; the
        // same fns also register bare so method-call sites resolve. fns()
        // recurses into impl bodies, so dedupe by (name, line).
        let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
        for imp in syntax.impls() {
            for f in fns_in(&imp.body.trees) {
                let Some(param) = f.param_named_by_type("AnalysisContext") else {
                    continue;
                };
                let Some(body) = f.body else { continue };
                let info = summarize_body(body, &param, ctx_methods, &imp.self_ty);
                seen.insert((f.name.clone(), f.line));
                reg.merge(format!("{}::{}", imp.self_ty, f.name), &info);
                reg.merge(f.name, &info);
            }
        }
        for f in syntax.fns() {
            if seen.contains(&(f.name.clone(), f.line)) {
                continue;
            }
            let Some(param) = f.param_named_by_type("AnalysisContext") else {
                continue;
            };
            let Some(body) = f.body else { continue };
            let info = summarize_body(body, &param, ctx_methods, "");
            reg.merge(f.name, &info);
        }
    }
    reg
}

/// The method names `impl AnalysisContext` defines in `context_file`.
pub fn context_methods(context_file: &SourceFile) -> BTreeSet<String> {
    let syntax = Syntax::parse(context_file);
    let mut out = BTreeSet::new();
    for imp in syntax.impls() {
        if imp.self_ty == "AnalysisContext" && imp.trait_name.is_none() {
            for f in fns_in(&imp.body.trees) {
                out.insert(f.name);
            }
        }
    }
    out
}

/// Leaf text helper local to arm parsing.
fn leaf_text(trees: &[Tree], i: usize) -> &str {
    match trees.get(i) {
        Some(Tree::Leaf(t)) => &t.text,
        _ => "",
    }
}

/// Variant names (`StageId::X`) appearing in `trees` — idents directly
/// following a `::` token.
fn variant_refs(trees: &[Tree], variants: &BTreeSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Leaf(tok) = t {
            if i >= 1 && leaf_text(trees, i - 1) == "::" && variants.contains(&tok.text) {
                out.push(tok.text.clone());
            }
        }
    }
    out
}

/// Parse the `match self { … }` arms of `fn deps`.
fn parse_deps_arms(
    body: &Group,
    variants: &BTreeSet<String>,
    problems: &mut Vec<(usize, String)>,
) -> BTreeMap<String, Vec<String>> {
    let mut declared = BTreeMap::new();
    // Find the match group: `match self { arms }`.
    let trees = &body.trees;
    let mut match_body: Option<&Group> = None;
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Leaf(tok) = t {
            if tok.text == "match" && leaf_text(trees, i + 1) == "self" {
                if let Some(Tree::Group(g)) = trees.get(i + 2) {
                    if g.delim == '{' {
                        match_body = Some(g);
                    }
                }
            }
        }
    }
    let Some(arms) = match_body else {
        problems.push((
            body.open_line,
            "fn deps: no `match self { … }` body recognized; stage.rs format changed?".to_owned(),
        ));
        return declared;
    };
    let mut pattern_start = 0usize;
    let mut i = 0usize;
    while i < arms.trees.len() {
        if leaf_text(&arms.trees, i) == "=>" {
            let pattern = arms.trees.get(pattern_start..i).unwrap_or_default();
            let pat_variants = variant_refs(pattern, variants);
            let wildcard = pattern
                .iter()
                .any(|t| matches!(t, Tree::Leaf(tok) if tok.text == "_"));
            let arm_line = pattern
                .first()
                .map(|t| match t {
                    Tree::Leaf(tok) => tok.line,
                    Tree::Group(g) => g.open_line,
                })
                .unwrap_or(arms.open_line);
            if wildcard {
                problems.push((
                    arm_line,
                    "fn deps: wildcard arm absorbs future stages; list every variant".to_owned(),
                ));
            }
            // Arm value: `&[…]` inline or `{ &[…] }` braced.
            let mut deps_list: Option<Vec<String>> = None;
            let mut j = i + 1;
            match arms.trees.get(j) {
                Some(Tree::Leaf(tok)) if tok.text == "&" => {
                    if let Some(Tree::Group(g)) = arms.trees.get(j + 1) {
                        if g.delim == '[' {
                            deps_list = Some(variant_refs(&g.trees, variants));
                            j += 2;
                        }
                    }
                }
                Some(Tree::Group(outer)) if outer.delim == '{' => {
                    for (k, t) in outer.trees.iter().enumerate() {
                        if matches!(t, Tree::Leaf(tok) if tok.text == "&") {
                            if let Some(Tree::Group(g)) = outer.trees.get(k + 1) {
                                if g.delim == '[' {
                                    deps_list = Some(variant_refs(&g.trees, variants));
                                }
                            }
                        }
                    }
                    j += 1;
                }
                _ => {}
            }
            match deps_list {
                Some(list) if !pat_variants.is_empty() => {
                    for v in pat_variants {
                        declared.insert(v, list.clone());
                    }
                }
                _ if wildcard => {}
                _ => problems.push((
                    arm_line,
                    "fn deps: arm not shaped `StageId::X => &[…]`; stage.rs format changed?"
                        .to_owned(),
                )),
            }
            // Skip a trailing comma.
            if leaf_text(&arms.trees, j) == "," {
                j += 1;
            }
            pattern_start = j;
            i = j;
            continue;
        }
        i += 1;
    }
    declared
}

/// The `StageId` enum's variant names, in declaration order: idents directly
/// inside the `enum StageId { … }` body that are followed by `=` or `,`.
fn enum_variants(syntax: &Syntax, problems: &mut Vec<(usize, String)>) -> Vec<String> {
    fn find(trees: &[Tree]) -> Option<&Group> {
        for (i, t) in trees.iter().enumerate() {
            if let Tree::Leaf(tok) = t {
                if tok.text == "enum" && leaf_text(trees, i + 1) == "StageId" {
                    if let Some(Tree::Group(g)) = trees.get(i + 2) {
                        if g.delim == '{' {
                            return Some(g);
                        }
                    }
                }
            }
            if let Tree::Group(g) = t {
                if let Some(found) = find(&g.trees) {
                    return Some(found);
                }
            }
        }
        None
    }
    let Some(body) = find(&syntax.trees) else {
        problems.push((
            0,
            "no `enum StageId { … }` found; stage.rs format changed?".to_owned(),
        ));
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, t) in body.trees.iter().enumerate() {
        if let Tree::Leaf(tok) = t {
            let is_variant = tok
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
                && matches!(leaf_text(&body.trees, i + 1), "=" | ",");
            let after_punct = i == 0 || matches!(leaf_text(&body.trees, i - 1), "," | "]" | "");
            let after_group = matches!(body.trees.get(i.wrapping_sub(1)), Some(Tree::Group(_)));
            if is_variant && (after_punct || after_group || i == 0) {
                out.push(tok.text.clone());
            }
        }
    }
    out
}

/// Extract the full stage-graph model from `stage_file`, resolving context
/// reads through `core_files` (which should include the stage file itself).
pub fn extract(
    stage_file: &SourceFile,
    context_file: &SourceFile,
    core_files: &[&SourceFile],
) -> StageGraphModel {
    let mut problems = Vec::new();
    let syntax = Syntax::parse(stage_file);
    let variants = enum_variants(&syntax, &mut problems);
    let variant_set: BTreeSet<String> = variants.iter().cloned().collect();

    // Declared deps from `fn deps` (the one whose body matches on self).
    let mut declared = BTreeMap::new();
    let mut found_deps = false;
    for f in syntax.fns() {
        if f.name == "deps" {
            if let Some(body) = f.body {
                declared = parse_deps_arms(body, &variant_set, &mut problems);
                found_deps = true;
            }
        }
    }
    if !found_deps {
        problems.push((
            0,
            "no `fn deps` with a body found; stage.rs format changed?".to_owned(),
        ));
    }

    let ctx_methods = context_methods(context_file);
    if ctx_methods.is_empty() {
        problems.push((
            0,
            "no `impl AnalysisContext` methods recognized; context.rs format changed?".to_owned(),
        ));
    }
    let registry = build_registry(core_files, &ctx_methods);

    // Per-`impl Stage` extraction.
    let mut impls = Vec::new();
    for imp in syntax.impls() {
        if imp.trait_name.as_deref() != Some("Stage") {
            continue;
        }
        let fns = fns_in(&imp.body.trees);
        // `fn id` → the variant after the last `::` in its body.
        let variant = fns.iter().find(|f| f.name == "id").and_then(|f| {
            f.body
                .map(|b| variant_refs(&b.trees, &variant_set))
                .and_then(|v| v.last().cloned())
        });
        if variant.is_none() {
            problems.push((
                imp.line,
                format!(
                    "impl Stage for {}: `fn id` does not return a recognizable StageId variant",
                    imp.self_ty
                ),
            ));
        }
        let Some(run) = fns.iter().find(|f| f.name == "run") else {
            problems.push((
                imp.line,
                format!("impl Stage for {}: no `fn run` body found", imp.self_ty),
            ));
            continue;
        };
        let state_param = run.param_named_by_type("PipelineState");
        let ctx_param = run.param_named_by_type("AnalysisContext");
        let mut state_reads = Vec::new();
        let mut ctx_reads = BTreeSet::new();
        if let Some(body) = run.body {
            let mut found: Vec<Call<'_>> = Vec::new();
            calls(&body.trees, &mut found);
            for c in &found {
                if Some(&c.receiver) == state_param.as_ref() {
                    state_reads.push(StageRead {
                        accessor: c.callee.clone(),
                        line: c.line,
                    });
                }
                if let Some(ctx) = &ctx_param {
                    if &c.receiver == ctx && ctx_methods.contains(&c.callee) {
                        ctx_reads.insert(c.callee.clone());
                    } else if c.passes_ident(ctx) {
                        let mut visited = BTreeSet::new();
                        registry.reads_of(&c.qualifier, &c.callee, &mut visited, &mut ctx_reads);
                    }
                }
            }
        }
        impls.push(StageImplModel {
            struct_name: imp.self_ty.clone(),
            variant,
            line: imp.line,
            state_reads,
            ctx_reads,
        });
    }
    if impls.is_empty() {
        problems.push((
            0,
            "no `impl Stage for …` blocks found; stage.rs format changed?".to_owned(),
        ));
    }

    StageGraphModel {
        variants,
        declared,
        impls,
        problems,
    }
}

/// Struct fields and functions carrying `HashMap`/`HashSet` values.
#[derive(Debug, Default)]
pub struct HashModel {
    /// Field names declared with a hash-typed value anywhere in the scanned
    /// sources (field names are treated as a global namespace — a read of
    /// `self.best` cannot be type-resolved, only name-matched).
    pub hash_fields: BTreeSet<String>,
    /// Function names whose return type mentions `HashMap`/`HashSet`.
    pub hash_fns: BTreeSet<String>,
}

/// True when a flattened type text mentions a std hash container.
pub fn is_hash_type(ty: &str) -> bool {
    ty.contains("HashMap") || ty.contains("HashSet")
}

/// Scan `sources` for hash-typed struct fields and hash-returning fns.
pub fn hash_model(sources: &[&SourceFile]) -> HashModel {
    let mut model = HashModel::default();
    for file in sources {
        let syntax = Syntax::parse(file);
        for f in syntax.fns() {
            if is_hash_type(&f.return_type()) {
                model.hash_fns.insert(f.name);
            }
        }
        collect_hash_fields(&syntax.trees, &mut model.hash_fields);
    }
    model
}

/// Find `struct Name { field: HashMap<…>, … }` fields, recursively.
fn collect_hash_fields(trees: &[Tree], out: &mut BTreeSet<String>) {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            // A struct body directly follows `struct Name` (possibly with
            // generics between).
            let is_struct_body = g.delim == '{' && {
                let mut j = i;
                let mut saw_struct = false;
                // Walk back over name/generic tokens to a `struct` keyword.
                while j > 0 {
                    j -= 1;
                    match trees.get(j) {
                        Some(Tree::Leaf(tok)) => {
                            if tok.text == "struct" {
                                saw_struct = true;
                                break;
                            }
                            let token_ok = tok.text == "<"
                                || tok.text == ">"
                                || tok.text == "'"
                                || tok.text == ","
                                || tok.text == "::"
                                || tok
                                    .text
                                    .chars()
                                    .next()
                                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
                            if !token_ok {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
                saw_struct
            };
            if is_struct_body {
                // Fields split at top-level commas: `vis name : type`.
                let mut k = 0usize;
                while k < g.trees.len() {
                    // Field name is the ident directly before a `:`.
                    if leaf_text(&g.trees, k) == ":" && k >= 1 {
                        if let Some(Tree::Leaf(name)) = g.trees.get(k - 1) {
                            // Type text runs to the next top-level comma.
                            let mut ty = String::new();
                            let mut angle = 0i32;
                            let mut m = k + 1;
                            while let Some(tree) = g.trees.get(m) {
                                match tree {
                                    Tree::Leaf(tok) => match tok.text.as_str() {
                                        "," if angle == 0 => break,
                                        "<" => {
                                            angle += 1;
                                            ty.push('<');
                                        }
                                        ">" => {
                                            angle -= 1;
                                            ty.push('>');
                                        }
                                        s => ty.push_str(s),
                                    },
                                    Tree::Group(_) => ty.push_str("()"),
                                }
                                m += 1;
                            }
                            if is_hash_type(&ty) {
                                out.insert(name.text.clone());
                            }
                            k = m;
                            continue;
                        }
                    }
                    k += 1;
                }
            }
            collect_hash_fields(&g.trees, out);
        }
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // fixture access; a miss is a test failure
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/stage.rs", src)
    }

    const STAGE_FIXTURE: &str = "\
pub enum StageId {
    First = 0,
    Second = 1,
    Third = 2,
}

impl StageId {
    pub fn deps(self) -> &'static [StageId] {
        match self {
            StageId::First => &[],
            StageId::Second | StageId::Third => &[StageId::First],
        }
    }
}

struct SecondStage;

impl Stage for SecondStage {
    fn id(&self) -> StageId {
        StageId::Second
    }

    fn run(&self, ctx: &AnalysisContext<'_>, state: &PipelineState) -> StageOutput {
        let input = state.after_spatial();
        helper(input, ctx)
    }
}
";

    const CONTEXT_FIXTURE: &str = "\
impl<'a> AnalysisContext<'a> {
    pub fn job(&self, id: u64) -> Option<&JobRecord> { None }
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> { None }
}
";

    fn ctx_file() -> SourceFile {
        SourceFile::parse("crates/core/src/context.rs", CONTEXT_FIXTURE)
    }

    #[test]
    fn variants_and_deps_are_extracted() {
        let stage = file(STAGE_FIXTURE);
        let model = extract(&stage, &ctx_file(), &[&stage]);
        assert_eq!(model.variants, vec!["First", "Second", "Third"]);
        assert_eq!(model.declared["First"], Vec::<String>::new());
        assert_eq!(model.declared["Second"], vec!["First"]);
        assert_eq!(model.declared["Third"], vec!["First"]);
        assert!(model.problems.is_empty(), "{:?}", model.problems);
    }

    #[test]
    fn stage_impl_reads_are_observed() {
        let stage = file(STAGE_FIXTURE);
        let helper_file = SourceFile::parse(
            "crates/core/src/helper.rs",
            "pub fn helper(input: &[Event], ctx: &AnalysisContext<'_>) -> usize {\n\
                 ctx.job(1);\n\
                 deeper(ctx)\n\
             }\n\
             fn deeper(ctx: &AnalysisContext<'_>) -> usize {\n\
                 ctx.span();\n\
                 0\n\
             }\n",
        );
        let model = extract(&stage, &ctx_file(), &[&stage, &helper_file]);
        assert_eq!(model.impls.len(), 1);
        let imp = &model.impls[0];
        assert_eq!(imp.variant.as_deref(), Some("Second"));
        assert_eq!(imp.state_reads.len(), 1);
        assert_eq!(imp.state_reads[0].accessor, "after_spatial");
        // `helper` touches job directly and span through `deeper`.
        let reads: Vec<&str> = imp.ctx_reads.iter().map(String::as_str).collect();
        assert_eq!(reads, vec!["job", "span"]);
    }

    #[test]
    fn closure_is_transitive() {
        let mut declared = BTreeMap::new();
        declared.insert("C".to_owned(), vec!["B".to_owned()]);
        declared.insert("B".to_owned(), vec!["A".to_owned()]);
        declared.insert("A".to_owned(), Vec::new());
        let c = closure(&declared, &["C".to_owned()]);
        assert_eq!(c.len(), 3);
        assert!(c.contains("A"));
    }

    #[test]
    fn wildcard_deps_arm_is_a_problem() {
        let stage = file(
            "pub enum StageId { First = 0 }\n\
             impl StageId {\n\
                 pub fn deps(self) -> &'static [StageId] {\n\
                     match self { _ => &[] }\n\
                 }\n\
             }\n\
             struct S;\n\
             impl Stage for S {\n\
                 fn id(&self) -> StageId { StageId::First }\n\
                 fn run(&self, state: &PipelineState) -> StageOutput { todo() }\n\
             }\n",
        );
        let model = extract(&stage, &ctx_file(), &[&stage]);
        assert!(model.problems.iter().any(|(_, m)| m.contains("wildcard")));
    }

    #[test]
    fn hash_model_finds_fields_and_fn_returns() {
        let f = SourceFile::parse(
            "m.rs",
            "pub struct Matching {\n\
                 pub job_to_event: HashMap<u64, u32>,\n\
                 pub cases: Vec<Case>,\n\
             }\n\
             fn daily_profiles(x: u8) -> HashMap<u32, f64> { HashMap::new() }\n\
             fn plain() -> Vec<u8> { Vec::new() }\n",
        );
        let model = hash_model(&[&f]);
        assert!(model.hash_fields.contains("job_to_event"));
        assert!(!model.hash_fields.contains("cases"));
        assert!(model.hash_fns.contains("daily_profiles"));
        assert!(!model.hash_fns.contains("plain"));
    }
}
