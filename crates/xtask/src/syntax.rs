//! Token-tree parsing layered on the [`SourceFile`] lexer.
//!
//! The line-lexical rules see one line at a time; the dataflow rules
//! (`stage-deps`, `parallel-determinism`, `serve-concurrency`) need real
//! structure: which tokens sit inside which braces, where an `impl` block's
//! body starts and ends, what a method-call chain looks like. This module
//! supplies exactly that — and nothing more. It is not a Rust parser: it
//! builds delimiter trees (`{}`, `[]`, `()`) over the lexer's
//! comment-stripped, string-blanked code, then pattern-matches `rustfmt`ed
//! item shapes on top. On formatted code the extraction is exact; on
//! pathological code it degrades to "no items found", which downstream
//! rules report as format drift rather than silently passing.
//!
//! The public surface is deliberately small:
//!
//! * [`Syntax::parse`] — tokenize + build the delimiter tree;
//! * [`Syntax::fns`] / [`Syntax::impls`] — item extraction (recursive
//!   through inline `mod` blocks, skipping `#[cfg(test)]` regions);
//! * [`calls`] — every `recv.method(args)` / `path::fn(args)` call in a
//!   body, with the receiver token when syntactically evident;
//! * [`chains`] — method-call chains (`x.iter().map(..).collect::<T>()`)
//!   flattened into [`ChainLink`]s with turbofish text preserved;
//! * [`statements`] — split a block's trees at `;` for `let`-binding
//!   analysis ([`LetBinding::from_statement`]).

use crate::source::SourceFile;

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier, keyword, or numeric literal (`[A-Za-z0-9_]+` runs).
    Ident,
    /// A single punctuation character, or one of the glued pairs
    /// `::`, `->`, `=>`.
    Punct,
    /// A string-literal quote (contents were blanked by the lexer).
    Quote,
}

/// One token, with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text (`"ident"`, `"::"`, `"."`, ...).
    pub text: String,
    /// 1-based line number.
    pub line: usize,
    /// Classification.
    pub kind: TokenKind,
    /// True when the token sits inside `#[cfg(test)]`-gated code.
    pub in_test: bool,
}

/// A node of the delimiter tree: a leaf token or a delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A single token.
    Leaf(Token),
    /// A `(...)`, `[...]`, or `{...}` group.
    Group(Group),
}

/// A delimited group and its contents.
#[derive(Debug, Clone)]
pub struct Group {
    /// Opening delimiter: `'('`, `'['`, or `'{'`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub open_line: usize,
    /// 1-based line of the closing delimiter (opening line if unclosed).
    pub close_line: usize,
    /// Child nodes in source order.
    pub trees: Vec<Tree>,
}

/// A parsed file: the top-level forest of tokens and groups.
#[derive(Debug, Clone)]
pub struct Syntax {
    /// Top-level nodes in source order.
    pub trees: Vec<Tree>,
}

/// A `fn` item: name, signature tokens, and body group.
#[derive(Debug)]
pub struct FnDef<'a> {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Signature nodes between the name and the body: the parameter-list
    /// group first, then any return-type tokens.
    pub sig: Vec<&'a Tree>,
    /// The `{ ... }` body (absent for trait-method declarations).
    pub body: Option<&'a Group>,
}

impl FnDef<'_> {
    /// The parameter-list `( ... )` group, when present.
    pub fn params(&self) -> Option<&Group> {
        self.sig.iter().find_map(|t| match t {
            Tree::Group(g) if g.delim == '(' => Some(g),
            _ => None,
        })
    }

    /// The name of the first parameter whose type text contains `ty_needle`
    /// (e.g. `"AnalysisContext"` matches `ctx: &AnalysisContext<'_>`).
    pub fn param_named_by_type(&self, ty_needle: &str) -> Option<String> {
        let params = self.params()?;
        for (name, ty) in split_params(params) {
            if ty.contains(ty_needle) {
                return Some(name);
            }
        }
        None
    }

    /// Flattened text of the return type (tokens after `->`), or empty.
    pub fn return_type(&self) -> String {
        let mut out = String::new();
        let mut after_arrow = false;
        for t in &self.sig {
            match t {
                Tree::Leaf(tok) => {
                    if tok.text == "->" {
                        after_arrow = true;
                    } else if after_arrow {
                        out.push_str(&tok.text);
                    }
                }
                Tree::Group(_) if after_arrow => out.push_str("()"),
                Tree::Group(_) => {}
            }
        }
        out
    }
}

/// An `impl` block: optional trait, self type, and body.
#[derive(Debug)]
pub struct ImplBlock<'a> {
    /// Trait name when this is `impl Trait for Type` (last path segment).
    pub trait_name: Option<String>,
    /// Self type name (last path segment, generics stripped).
    pub self_ty: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// The `{ ... }` body.
    pub body: &'a Group,
}

/// One link of a method-call chain: `.name::<turbofish>(args)`.
#[derive(Debug, Clone)]
pub struct ChainLink<'a> {
    /// Method name.
    pub method: String,
    /// 1-based line of the method name.
    pub line: usize,
    /// Turbofish text (`Vec<_>` for `::<Vec<_>>`), empty when absent.
    pub turbofish: String,
    /// The argument group.
    pub args: &'a Group,
}

/// A method-call chain rooted at a receiver token.
#[derive(Debug)]
pub struct Chain<'a> {
    /// The receiver: the identifier (or field name) the chain hangs off.
    /// `self.counts.iter()` roots at `counts`; `foo().bar()` has receiver
    /// `"()"` (a call result).
    pub receiver: String,
    /// 1-based line of the receiver.
    pub line: usize,
    /// Links in call order.
    pub links: Vec<ChainLink<'a>>,
}

impl Chain<'_> {
    /// True when any link's method name equals `name`.
    pub fn has_method(&self, name: &str) -> bool {
        self.links.iter().any(|l| l.method == name)
    }
}

/// A `let` binding split out of a statement.
#[derive(Debug)]
pub struct LetBinding {
    /// Bound name (the first identifier after `let` / `let mut`).
    pub name: String,
    /// 1-based line of the binding.
    pub line: usize,
    /// Flattened text of the type annotation (empty when absent).
    pub annotation: String,
    /// Flattened text of the initializer (groups render as `(...)` etc.).
    pub init: String,
    /// 1-based line of the initializer's first token — differs from `line`
    /// when rustfmt wraps the initializer onto its own line.
    pub init_line: usize,
}

impl Syntax {
    /// Tokenize `file` and build the delimiter forest.
    pub fn parse(file: &SourceFile) -> Syntax {
        let tokens = tokenize(file);
        let mut iter = tokens.into_iter().peekable();
        Syntax {
            trees: build_forest(&mut iter, None),
        }
    }

    /// All `fn` items, recursively through inline `mod`/`impl` bodies,
    /// skipping `#[cfg(test)]` code.
    pub fn fns(&self) -> Vec<FnDef<'_>> {
        fns_in(&self.trees)
    }

    /// All `impl` blocks, recursively through inline `mod` bodies,
    /// skipping `#[cfg(test)]` code.
    pub fn impls(&self) -> Vec<ImplBlock<'_>> {
        impls_in(&self.trees)
    }
}

/// All `fn` items under `trees` (see [`Syntax::fns`]).
pub fn fns_in(trees: &[Tree]) -> Vec<FnDef<'_>> {
    let mut out = Vec::new();
    collect_fns(trees, &mut out);
    out
}

/// All `impl` blocks under `trees` (see [`Syntax::impls`]).
pub fn impls_in(trees: &[Tree]) -> Vec<ImplBlock<'_>> {
    let mut out = Vec::new();
    collect_impls(trees, &mut out);
    out
}

/// Split `file`'s code channel into tokens. String literals were blanked by
/// the lexer, so a quote token always stands for a full literal.
fn tokenize(file: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, line) in file.numbered() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while let Some(&c) = chars.get(i) {
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphanumeric() || c == '_' {
                let start = i;
                while chars
                    .get(i)
                    .is_some_and(|ch| ch.is_ascii_alphanumeric() || *ch == '_')
                {
                    i += 1;
                }
                out.push(Token {
                    text: chars.get(start..i).unwrap_or_default().iter().collect(),
                    line: lineno,
                    kind: TokenKind::Ident,
                    in_test: line.in_test,
                });
                continue;
            }
            if c == '"' {
                out.push(Token {
                    text: "\"".to_owned(),
                    line: lineno,
                    kind: TokenKind::Quote,
                    in_test: line.in_test,
                });
                i += 1;
                continue;
            }
            // Glue the two-character operators the extractors key on.
            let next = chars.get(i + 1).copied();
            let glued = match (c, next) {
                (':', Some(':')) => Some("::"),
                ('-', Some('>')) => Some("->"),
                ('=', Some('>')) => Some("=>"),
                _ => None,
            };
            let text = match glued {
                Some(g) => {
                    i += 2;
                    g.to_owned()
                }
                None => {
                    i += 1;
                    c.to_string()
                }
            };
            out.push(Token {
                text,
                line: lineno,
                kind: TokenKind::Punct,
                in_test: line.in_test,
            });
        }
    }
    out
}

/// Build a forest until `close` (or end of input). Stray closers of other
/// kinds are treated as closing the current group — lenient on purpose.
fn build_forest(
    iter: &mut std::iter::Peekable<std::vec::IntoIter<Token>>,
    close: Option<char>,
) -> Vec<Tree> {
    let mut out = Vec::new();
    while let Some(tok) = iter.peek() {
        let text = tok.text.as_str();
        let opener = matches!(text, "(" | "[" | "{");
        let closer = matches!(text, ")" | "]" | "}");
        if closer {
            if close.is_some() {
                return out; // caller consumes the closer
            }
            iter.next(); // stray closer at top level: drop it
            continue;
        }
        if opener {
            let open = iter.next().unwrap_or_else(|| unreachable!("peeked"));
            let delim = open.text.chars().next().unwrap_or('(');
            let want = match delim {
                '(' => ')',
                '[' => ']',
                _ => '}',
            };
            let trees = build_forest(iter, Some(want));
            let close_line = iter.next().map_or(open.line, |t| t.line); // the closer
            out.push(Tree::Group(Group {
                delim,
                open_line: open.line,
                close_line,
                trees,
            }));
            continue;
        }
        if let Some(tok) = iter.next() {
            out.push(Tree::Leaf(tok));
        }
    }
    out
}

/// Leaf-token text at `trees[i]`, or `""` for groups / out of range.
fn leaf(trees: &[Tree], i: usize) -> &str {
    match trees.get(i) {
        Some(Tree::Leaf(t)) => &t.text,
        _ => "",
    }
}

/// True when the leaf at `trees[i]` is test-gated (groups report their
/// opening token's gating via recursion elsewhere).
fn leaf_in_test(trees: &[Tree], i: usize) -> bool {
    match trees.get(i) {
        Some(Tree::Leaf(t)) => t.in_test,
        Some(Tree::Group(_)) => false,
        None => false,
    }
}

fn collect_fns<'a>(trees: &'a [Tree], out: &mut Vec<FnDef<'a>>) {
    let mut i = 0;
    while i < trees.len() {
        if leaf(trees, i) == "fn" && !leaf_in_test(trees, i) {
            let name = leaf(trees, i + 1).to_owned();
            let line = match trees.get(i) {
                Some(Tree::Leaf(t)) => t.line,
                _ => 0,
            };
            // Signature runs from after the name to the body `{...}` or a
            // terminating `;` (trait method declaration).
            let mut j = i + 2;
            let mut sig: Vec<&Tree> = Vec::new();
            let mut body = None;
            while let Some(tree) = trees.get(j) {
                match tree {
                    Tree::Group(g) if g.delim == '{' => {
                        body = Some(g);
                        break;
                    }
                    Tree::Leaf(t) if t.text == ";" => break,
                    t => sig.push(t),
                }
                j += 1;
            }
            if !name.is_empty() {
                out.push(FnDef {
                    name,
                    line,
                    sig,
                    body,
                });
            }
            // Recurse into the body for nested fns.
            if let Some(b) = body {
                collect_fns(&b.trees, out);
            }
            i = j + 1;
            continue;
        }
        // Recurse into mod/impl/trait bodies; `where` clauses and expressions
        // don't declare fns at their own level, so descending is harmless.
        if let Some(Tree::Group(g)) = trees.get(i) {
            if g.delim == '{' {
                collect_fns(&g.trees, out);
            }
        }
        i += 1;
    }
}

/// Last path segment of the token run starting at `trees[i]`, skipping `&`,
/// generics, and `::` separators; returns `(name, next index)`.
fn path_tail(trees: &[Tree], mut i: usize) -> (String, usize) {
    let mut name = String::new();
    let mut angle = 0i32;
    while let Some(tree) = trees.get(i) {
        match tree {
            Tree::Leaf(t) => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "::" | "&" | "'" => {}
                "for" | "where" => break,
                s if angle == 0
                    && (s.chars().next().is_some_and(|c| c.is_ascii_alphanumeric())
                        || s.starts_with('_')) =>
                {
                    name = s.to_owned();
                }
                _ if angle > 0 => {}
                _ => break,
            },
            Tree::Group(_) => break,
        }
        i += 1;
    }
    (name, i)
}

fn collect_impls<'a>(trees: &'a [Tree], out: &mut Vec<ImplBlock<'a>>) {
    let mut i = 0;
    while i < trees.len() {
        if leaf(trees, i) == "impl" && !leaf_in_test(trees, i) {
            let line = match trees.get(i) {
                Some(Tree::Leaf(t)) => t.line,
                _ => 0,
            };
            // Skip generic params on the impl itself: `impl<'a> ...`.
            let mut j = i + 1;
            if leaf(trees, j) == "<" {
                let mut depth = 0i32;
                while j < trees.len() {
                    match leaf(trees, j) {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            let (first, after_first) = path_tail(trees, j);
            let (trait_name, self_ty, mut k) = if leaf(trees, after_first) == "for" {
                let (ty, after_ty) = path_tail(trees, after_first + 1);
                (Some(first), ty, after_ty)
            } else {
                (None, first, after_first)
            };
            // Skip a `where` clause to the body.
            let mut body = None;
            while let Some(tree) = trees.get(k) {
                match tree {
                    Tree::Group(g) if g.delim == '{' => {
                        body = Some(g);
                        break;
                    }
                    Tree::Leaf(t) if t.text == ";" => break,
                    _ => k += 1,
                }
            }
            if let Some(b) = body {
                if !self_ty.is_empty() {
                    out.push(ImplBlock {
                        trait_name,
                        self_ty,
                        line,
                        body: b,
                    });
                }
                collect_impls(&b.trees, out);
                i = k + 1;
                continue;
            }
            i = k + 1;
            continue;
        }
        if let Some(Tree::Group(g)) = trees.get(i) {
            if g.delim == '{' {
                collect_impls(&g.trees, out);
            }
        }
        i += 1;
    }
}

/// Split a parameter group's trees into `(name, type-text)` pairs at
/// top-level commas. `self` receivers yield `("self", "")`-style pairs.
pub fn split_params(params: &Group) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut name = String::new();
    let mut ty = String::new();
    let mut in_ty = false;
    let mut angle = 0i32;
    for t in &params.trees {
        match t {
            Tree::Leaf(tok) => match tok.text.as_str() {
                "," if angle == 0 => {
                    if !name.is_empty() {
                        out.push((std::mem::take(&mut name), std::mem::take(&mut ty)));
                    }
                    in_ty = false;
                }
                ":" if !in_ty => in_ty = true,
                "<" => {
                    angle += 1;
                    if in_ty {
                        ty.push('<');
                    }
                }
                ">" => {
                    angle -= 1;
                    if in_ty {
                        ty.push('>');
                    }
                }
                s if in_ty => ty.push_str(s),
                s if s
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_') =>
                {
                    // `mut x` / `self`: the last bare ident before `:` wins.
                    name = s.to_owned();
                }
                _ => {}
            },
            Tree::Group(_) if in_ty => ty.push_str("()"),
            Tree::Group(_) => {}
        }
    }
    if !name.is_empty() {
        out.push((name, ty));
    }
    out
}

/// A method or path call found by [`calls`].
#[derive(Debug)]
pub struct Call<'a> {
    /// Callee name (method name, or last path segment for `path::fn(...)`).
    pub callee: String,
    /// For method calls, the token directly before the `.` (identifier or
    /// field name); `"()"` when the receiver is a call/group result; empty
    /// for path calls.
    pub receiver: String,
    /// For qualified calls (`Type::new(...)`), the path segment before the
    /// final `::`; empty otherwise.
    pub qualifier: String,
    /// 1-based line of the callee.
    pub line: usize,
    /// The argument group.
    pub args: &'a Group,
}

impl Call<'_> {
    /// True when any leaf token anywhere in the argument group equals `name`.
    pub fn passes_ident(&self, name: &str) -> bool {
        fn walk(trees: &[Tree], name: &str) -> bool {
            trees.iter().any(|t| match t {
                Tree::Leaf(tok) => tok.text == name,
                Tree::Group(g) => walk(&g.trees, name),
            })
        }
        walk(&self.args.trees, name)
    }
}

/// Every call in `trees`, recursively (including inside nested groups).
/// Macros (`name!(...)`) are excluded — `text!` is not a call.
pub fn calls<'a>(trees: &'a [Tree], out: &mut Vec<Call<'a>>) {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            // A call is `ident (group)` where the ident isn't a macro name
            // (`ident !`) or a definition keyword.
            if g.delim == '(' && i >= 1 {
                if let Some(Tree::Leaf(name)) = trees.get(i - 1) {
                    let is_ident = name.kind == TokenKind::Ident
                        && !name.text.chars().next().is_some_and(|c| c.is_ascii_digit());
                    let prev = if i >= 2 { leaf(trees, i - 2) } else { "" };
                    let is_macro = prev == "!";
                    let is_def = prev == "fn";
                    if is_ident && !is_macro && !is_def {
                        let before = |k: usize| {
                            if i >= k {
                                match trees.get(i - k) {
                                    Some(Tree::Leaf(r)) => r.text.clone(),
                                    Some(Tree::Group(_)) => "()".to_owned(),
                                    None => String::new(),
                                }
                            } else {
                                String::new()
                            }
                        };
                        let (receiver, qualifier) = match prev {
                            "." => (before(3), String::new()),
                            "::" => (String::new(), before(3)),
                            _ => (String::new(), String::new()),
                        };
                        out.push(Call {
                            callee: name.text.clone(),
                            receiver,
                            qualifier,
                            line: name.line,
                            args: g,
                        });
                    }
                }
            }
            calls(&g.trees, out);
        }
    }
}

/// Every method-call chain in `trees`, recursively. A chain starts at an
/// identifier (possibly a field access tail: `self.a.b` roots at `b`) and
/// follows `.method::<T>(args)` links. Chains of length zero (bare idents)
/// are not reported.
pub fn chains<'a>(trees: &'a [Tree], out: &mut Vec<Chain<'a>>) {
    let mut i = 0;
    while i < trees.len() {
        // Recurse into groups first so nested chains (closure bodies,
        // call arguments) are found too.
        if let Some(Tree::Group(g)) = trees.get(i) {
            chains(&g.trees, out);
            i += 1;
            continue;
        }
        if let Some(Tree::Leaf(tok)) = trees.get(i) {
            if tok.kind == TokenKind::Ident && leaf(trees, i + 1) == "." {
                // Walk the field-access prefix: a (.ident)* run without
                // parens; the chain roots at the last such ident.
                let mut root = tok.text.clone();
                let root_line = tok.line;
                let mut j = i;
                loop {
                    let is_dot = leaf(trees, j + 1) == ".";
                    let next_ident = matches!(trees.get(j + 2), Some(Tree::Leaf(t)) if t.kind == TokenKind::Ident);
                    let then_call = matches!(trees.get(j + 3), Some(Tree::Group(g)) if g.delim == '(')
                        || leaf(trees, j + 3) == "::";
                    if is_dot && next_ident && !then_call {
                        // plain field access: advance the root
                        if let Some(Tree::Leaf(t)) = trees.get(j + 2) {
                            root = t.text.clone();
                        }
                        j += 2;
                    } else {
                        break;
                    }
                }
                // Now parse call links from j.
                let mut links = Vec::new();
                let mut k = j;
                loop {
                    if leaf(trees, k + 1) != "." {
                        break;
                    }
                    let Some(Tree::Leaf(m)) = trees.get(k + 2) else {
                        break;
                    };
                    if m.kind != TokenKind::Ident {
                        break;
                    }
                    let mut fish = String::new();
                    let mut a = k + 3;
                    if leaf(trees, a) == "::" && leaf(trees, a + 1) == "<" {
                        let mut depth = 0i32;
                        let mut b = a + 1;
                        while let Some(tree) = trees.get(b) {
                            match tree {
                                Tree::Leaf(t) if t.text == "<" => {
                                    depth += 1;
                                    if depth > 1 {
                                        fish.push('<');
                                    }
                                }
                                Tree::Leaf(t) if t.text == ">" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        b += 1;
                                        break;
                                    }
                                    fish.push('>');
                                }
                                Tree::Leaf(t) => fish.push_str(&t.text),
                                Tree::Group(_) => fish.push_str("()"),
                            }
                            b += 1;
                        }
                        a = b;
                    }
                    let Some(Tree::Group(g)) = trees.get(a) else {
                        // `.field` access mid-chain (e.g. `x.iter().len`):
                        // stop the chain here.
                        break;
                    };
                    if g.delim != '(' {
                        break;
                    }
                    links.push(ChainLink {
                        method: m.text.clone(),
                        line: m.line,
                        turbofish: fish,
                        args: g,
                    });
                    // After the `(args)` group at index `a`, the next link's
                    // dot sits at `a + 1` — which the loop reads as `k + 1`.
                    k = a;
                }
                if !links.is_empty() {
                    out.push(Chain {
                        receiver: root,
                        line: root_line,
                        links,
                    });
                    i = k + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Split a tree sequence (a block body) into statements at top-level `;`.
pub fn statements(trees: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Leaf(tok) = t {
            if tok.text == ";" {
                out.push(trees.get(start..i).unwrap_or_default());
                start = i + 1;
            }
        }
    }
    if start < trees.len() {
        out.push(trees.get(start..).unwrap_or_default());
    }
    out
}

impl LetBinding {
    /// Parse a statement's trees as `let [mut] NAME [: TYPE] = INIT`.
    pub fn from_statement(stmt: &[Tree]) -> Option<LetBinding> {
        if leaf(stmt, 0) != "let" {
            return None;
        }
        let mut i = 1;
        if leaf(stmt, i) == "mut" {
            i += 1;
        }
        let (name, line) = match stmt.get(i) {
            Some(Tree::Leaf(t)) if t.kind == TokenKind::Ident => (t.text.clone(), t.line),
            _ => return None, // destructuring patterns: not modeled
        };
        i += 1;
        let mut annotation = String::new();
        if leaf(stmt, i) == ":" {
            i += 1;
            let mut angle = 0i32;
            while let Some(tree) = stmt.get(i) {
                match tree {
                    Tree::Leaf(t) => match t.text.as_str() {
                        "=" if angle == 0 => break,
                        "<" => {
                            angle += 1;
                            annotation.push('<');
                        }
                        ">" => {
                            angle -= 1;
                            annotation.push('>');
                        }
                        s => annotation.push_str(s),
                    },
                    Tree::Group(_) => annotation.push_str("()"),
                }
                i += 1;
            }
        }
        if leaf(stmt, i) != "=" {
            return None;
        }
        i += 1;
        let rest = stmt.get(i..).unwrap_or_default();
        let init_line = rest
            .first()
            .map(|t| match t {
                Tree::Leaf(tok) => tok.line,
                Tree::Group(g) => g.open_line,
            })
            .unwrap_or(line);
        let mut init = String::new();
        for t in rest {
            match t {
                Tree::Leaf(tok) => {
                    init.push_str(&tok.text);
                    init.push(' ');
                }
                Tree::Group(g) => {
                    init.push(g.delim);
                    init.push_str("...");
                    init.push(match g.delim {
                        '(' => ')',
                        '[' => ']',
                        _ => '}',
                    });
                    init.push(' ');
                }
            }
        }
        Some(LetBinding {
            name,
            line,
            annotation,
            init,
            init_line,
        })
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // fixture access; a miss is a test failure
mod tests {
    use super::*;

    fn parse(src: &str) -> Syntax {
        Syntax::parse(&SourceFile::parse("fixture.rs", src))
    }

    #[test]
    fn delimiter_trees_nest_and_record_lines() {
        let s = parse("fn f() {\n    g(a, [b, c]);\n}\n");
        // top level: fn f () { ... }
        assert_eq!(s.trees.len(), 4);
        let Tree::Group(body) = &s.trees[3] else {
            panic!("expected body group");
        };
        assert_eq!(body.delim, '{');
        assert_eq!(body.open_line, 1);
        assert_eq!(body.close_line, 3);
    }

    #[test]
    fn fns_are_extracted_with_params_and_return() {
        let s = parse("pub fn run(&self, ctx: &AnalysisContext<'_>, n: usize) -> Vec<u8> { x }\n");
        let fns = s.fns();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "run");
        assert_eq!(
            fns[0].param_named_by_type("AnalysisContext"),
            Some("ctx".to_owned())
        );
        assert_eq!(fns[0].return_type(), "Vec<u8>");
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn impl_blocks_resolve_trait_and_self_type() {
        let s = parse(
            "impl Stage for BurstStage {\n fn run(&self) {} \n}\n\
             impl<'a> AnalysisContext<'a> {\n fn job(&self) {} \n}\n",
        );
        let impls = s.impls();
        assert_eq!(impls.len(), 2);
        assert_eq!(impls[0].trait_name.as_deref(), Some("Stage"));
        assert_eq!(impls[0].self_ty, "BurstStage");
        assert_eq!(impls[1].trait_name, None);
        assert_eq!(impls[1].self_ty, "AnalysisContext");
    }

    #[test]
    fn test_gated_items_are_skipped() {
        let s = parse(
            "fn lib() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
             }\n",
        );
        let names: Vec<_> = s.fns().iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, vec!["lib".to_owned()]);
    }

    #[test]
    fn calls_capture_receiver_and_skip_macros() {
        let s = parse("fn f() { let x = state.matching(); g(y); println!(\"no\"); }\n");
        let mut out = Vec::new();
        calls(&s.trees, &mut out);
        let summary: Vec<_> = out
            .iter()
            .map(|c| (c.receiver.clone(), c.callee.clone()))
            .collect();
        assert!(summary.contains(&("state".to_owned(), "matching".to_owned())));
        assert!(summary.contains(&(String::new(), "g".to_owned())));
        assert!(!summary.iter().any(|(_, c)| c == "println"));
    }

    #[test]
    fn chains_root_at_last_field_and_keep_turbofish() {
        let s = parse("fn f() { let v = self.best.keys().copied().collect::<Vec<u32>>(); }\n");
        let mut out = Vec::new();
        chains(&s.trees, &mut out);
        let chain = out
            .iter()
            .find(|c| c.receiver == "best")
            .expect("chain rooted at the field name");
        let methods: Vec<_> = chain.links.iter().map(|l| l.method.clone()).collect();
        assert_eq!(methods, vec!["keys", "copied", "collect"]);
        assert_eq!(chain.links[2].turbofish, "Vec<u32>");
    }

    #[test]
    fn chains_inside_closures_are_found() {
        let s = parse("fn f() { run(|chunk| { acc.iter().sum::<f64>() }); }\n");
        let mut out = Vec::new();
        chains(&s.trees, &mut out);
        let chain = out
            .iter()
            .find(|c| c.receiver == "acc")
            .expect("closure chain");
        assert_eq!(chain.links[1].method, "sum");
        assert_eq!(chain.links[1].turbofish, "f64");
    }

    #[test]
    fn statements_split_and_let_bindings_parse() {
        let s = parse("fn f() { let mut m: HashMap<u32, f64> = HashMap::new(); m.clear(); }\n");
        let Tree::Group(body) = &s.trees[3] else {
            panic!("expected body");
        };
        let stmts = statements(&body.trees);
        assert_eq!(stmts.len(), 2);
        let b = LetBinding::from_statement(stmts[0]).expect("let binding");
        assert_eq!(b.name, "m");
        assert_eq!(b.annotation, "HashMap<u32,f64>");
        assert!(b.init.starts_with("HashMap :: new"));
    }

    #[test]
    fn unbalanced_input_degrades_without_panicking() {
        let s = parse("fn f( { ) } ]\n");
        // No panic; some forest comes back.
        assert!(!s.trees.is_empty());
    }
}
