//! The domain lint rules.
//!
//! Each rule is a pure function from analyzed sources ([`SourceFile`]) to
//! [`Finding`]s, so the unit tests can drive every rule with small in-memory
//! fixtures. Scoping — which files each rule sees — is the runner's job
//! (`crate::workspace`); suppression (`xtask-allow`) is applied there too, so
//! rules report every violation they see.
//!
//! The rule catalog, with ids as used in `xtask-allow(<id>): <why>`:
//!
//! | id | enforces |
//! |----|----------|
//! | `determinism` | no ambient clocks/entropy in `core`/`stats` |
//! | `no-panic` | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | `severity-wildcard` | `match` over `Severity` lists variants explicitly |
//! | `errcode-catalog` | classify's ERRCODE strings exist in the catalog |
//! | `crate-attrs` | crate roots forbid `unsafe_code`, warn `missing_docs` |
//! | `stage-contract` | public pipeline stages and `Stage` impls document their contract |
//! | `snapshot-version` | `.bgpsnap` layout fingerprints track the record structs |
//! | `dep-versions` | no duplicate major versions in `Cargo.lock` |
//! | `allow-syntax` | every `xtask-allow` carries a justification |

use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (see module docs).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number (0 for file- or workspace-level findings).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        }
    }
}

/// Static description of a rule, for `cargo xtask lint --list`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id as accepted by `--only` and `xtask-allow`.
    pub id: &'static str,
    /// One-line summary of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule the harness knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism",
        summary: "deny ambient clocks and entropy (SystemTime::now, Instant::now, thread RNGs) in crates/core and crates/stats",
    },
    RuleInfo {
        id: "no-panic",
        summary: "deny unwrap()/expect()/panic! in non-test library code",
    },
    RuleInfo {
        id: "severity-wildcard",
        summary: "matches over raslog::Severity must list variants explicitly (no `_` arm)",
    },
    RuleInfo {
        id: "errcode-catalog",
        summary: "every ERRCODE string referenced by crates/core/src/classify must exist in crates/raslog/src/catalog.rs",
    },
    RuleInfo {
        id: "crate-attrs",
        summary: "crate roots carry #![forbid(unsafe_code)] and #![warn(missing_docs)]",
    },
    RuleInfo {
        id: "stage-contract",
        summary: "public pipeline stage entry points and `Stage` impls document their input/output contract (a `Contract:` doc line)",
    },
    RuleInfo {
        id: "snapshot-version",
        summary: "snapshot LAYOUT_FINGERPRINT matches the record struct's field list, so layout changes force a FORMAT_VERSION bump",
    },
    RuleInfo {
        id: "dep-versions",
        summary: "Cargo.lock carries no duplicate major versions of any dependency",
    },
    RuleInfo {
        id: "allow-syntax",
        summary: "xtask-allow suppressions carry a non-empty justification",
    },
];

/// Ambient time / entropy sources that break pipeline reproducibility.
const NONDETERMINISM: &[(&str, &str)] = &[
    ("SystemTime::now", "ambient wall-clock read"),
    ("Instant::now", "ambient monotonic-clock read"),
    ("thread_rng", "thread-local RNG (unseeded)"),
    ("rand::rng(", "ambient RNG constructor (unseeded)"),
    ("from_entropy", "OS-entropy RNG seeding"),
    ("from_os_rng", "OS-entropy RNG seeding"),
];

/// `determinism`: the analysis pipeline (`crates/core`) and the statistics
/// substrate (`crates/stats`) must be pure functions of their inputs and
/// explicit seeds — the paper's results are only reproducible if the same
/// logs always produce the same tables.
pub fn determinism(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        for (pattern, what) in NONDETERMINISM {
            if line.code.contains(pattern) {
                out.push(Finding {
                    rule: "determinism",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "{what} (`{pattern}`) in deterministic pipeline code; \
                         thread an explicit seed or timestamp through the call graph"
                    ),
                });
            }
        }
    }
    out
}

/// Panic paths denied in library code.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap()"),
    (".expect(", "expect()"),
    ("panic!(", "panic!"),
];

/// `no-panic`: library code must return typed errors, not abort the process.
/// Test code is exempt (the runner only feeds non-test lines would be wrong —
/// the exemption is per line, handled here via `in_test`).
pub fn no_panic(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        for (pattern, what) in PANIC_PATTERNS {
            if line.code.contains(pattern) {
                out.push(Finding {
                    rule: "no-panic",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "{what} in library code; return a typed error \
                         (or justify with `xtask-allow(no-panic): <why>`)"
                    ),
                });
            }
        }
    }
    out
}

/// `severity-wildcard`: a `match` over `raslog::Severity` with a `_` arm
/// silently absorbs any future severity level; the catalog gained levels
/// before and will again. Requires every variant listed.
pub fn severity_wildcard(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    // Stack of open match blocks: (line of `match`, depth of its arms,
    // saw a Severity:: pattern, saw a wildcard arm).
    let mut depth: i64 = 0;
    let mut matches: Vec<(usize, i64, bool, bool)> = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        // Arm inspection happens before brace bookkeeping so `Severity::X =>`
        // patterns are attributed to the innermost open match.
        if let Some((arm_line, arm_depth, saw_sev, saw_wild)) = matches.last_mut() {
            let _ = arm_line;
            if depth == *arm_depth + 1 {
                if let Some(pat) = code.split_once("=>").map(|(p, _)| p.trim()) {
                    if pat.contains("Severity::") {
                        *saw_sev = true;
                    }
                    if pat == "_" || pat.ends_with("| _") || pat.starts_with("_ if") {
                        *saw_wild = true;
                    }
                }
            }
        }
        let opens_match = code.contains("match ") && code.trim_end().ends_with('{');
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if opens_match && matches.last().map(|m| m.1) != Some(depth - 1) {
                        // Attribute the first `{` on a `match ... {` line to
                        // the match itself.
                        matches.push((lineno, depth - 1, false, false));
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(&(mline, mdepth, saw_sev, saw_wild)) = matches.last() {
                        if depth == mdepth {
                            matches.pop();
                            if saw_sev && saw_wild {
                                out.push(Finding {
                                    rule: "severity-wildcard",
                                    path: file.path.clone(),
                                    line: mline,
                                    message: "match over Severity uses a wildcard arm; \
                                              list every variant so new severity levels \
                                              fail to compile instead of being absorbed"
                                        .to_owned(),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// True for strings shaped like Blue Gene/P error-code names: the lowercase
/// `_bgp_*` family or upper-snake-case hardware codes (`BULK_POWER_FATAL`).
fn looks_like_errcode(s: &str) -> bool {
    // Every catalog code is `_bgp_` + lower_snake; subcomponent names are
    // UPPER_SNAKE and deliberately not matched.
    if let Some(rest) = s.strip_prefix("_bgp_") {
        return !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    }
    false
}

/// Extract the set of code names defined by `catalog.rs`: the first string
/// of every `("name", C::Component, ...)` catalog entry.
pub fn catalog_names(catalog: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (_, line) in catalog.numbered() {
        // After string-blanking a catalog entry reads `("", C::Kernel, ...)`.
        if line.code.contains("(\"\", C::") {
            if let Some(first) = line.strings.first() {
                names.insert(first.clone());
            }
        }
    }
    names
}

/// `errcode-catalog`: every ERRCODE-shaped string in the classify sources
/// must name a code the catalog actually defines — classification decisions
/// keyed on a typo would silently never fire. Test code is checked too: a
/// test asserting on a phantom code is equally wrong.
pub fn errcode_catalog(catalog: &SourceFile, classify: &[&SourceFile]) -> Vec<Finding> {
    let names = catalog_names(catalog);
    let mut out = Vec::new();
    if names.is_empty() {
        out.push(Finding {
            rule: "errcode-catalog",
            path: catalog.path.clone(),
            line: 0,
            message: "no catalog entries recognized; catalog.rs format changed?".to_owned(),
        });
        return out;
    }
    for file in classify {
        for (lineno, line) in file.numbered() {
            for s in &line.strings {
                if looks_like_errcode(s) && !names.contains(s) {
                    out.push(Finding {
                        rule: "errcode-catalog",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "ERRCODE `{s}` is not defined in raslog's catalog \
                             (crates/raslog/src/catalog.rs); classification keyed \
                             on it can never fire"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Crate-root attributes every workspace crate must carry.
const REQUIRED_ATTRS: &[&str] = &["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

/// `crate-attrs`: belt and braces with `[workspace.lints]` — the attributes
/// keep the guarantees visible in the source and survive being compiled
/// outside this workspace.
pub fn crate_attrs(root: &SourceFile) -> Vec<Finding> {
    let squashed: Vec<String> = root
        .lines
        .iter()
        .map(|l| l.code.chars().filter(|c| !c.is_whitespace()).collect())
        .collect();
    REQUIRED_ATTRS
        .iter()
        .filter(|attr| {
            let want: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
            !squashed.iter().any(|l| l.contains(&want))
        })
        .map(|attr| Finding {
            rule: "crate-attrs",
            path: root.path.clone(),
            line: 0,
            message: format!("crate root is missing `{attr}`"),
        })
        .collect()
}

/// Names of public entry points that constitute pipeline stages.
const STAGE_FNS: &[&str] = &[
    "apply",
    "run",
    "filter",
    "classify_impact",
    "classify_root_cause",
];

/// `stage-contract`: every public stage entry point — and every `Stage`
/// trait implementation — must carry a doc line starting `Contract:`
/// stating its input → output obligation (e.g. that filtering is monotone:
/// output count ≤ input count). The paper's pipeline is a chain of such
/// contracts; making them greppable text keeps them reviewable.
pub fn stage_contract(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim_start();
        let subject = if let Some(rest) = code.strip_prefix("pub fn ") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !STAGE_FNS.contains(&name.as_str()) {
                continue;
            }
            format!("public stage entry point `{name}`")
        } else if code.contains("impl Stage for ") {
            // A `Stage` trait impl is a named pipeline pass; the contract
            // doc sits on the struct declaration directly above it.
            let name: String = code
                .split("impl Stage for ")
                .nth(1)
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            format!("stage implementation `{name}`")
        } else {
            continue;
        };
        if !has_contract_above(file, lineno) {
            out.push(Finding {
                rule: "stage-contract",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "{subject} has no `/// Contract:` doc line stating its \
                     input/output obligation"
                ),
            });
        }
    }
    out
}

/// Walk upward from `lineno` (1-based) over attributes, doc comments, and
/// — for `impl` blocks — the struct declaration the docs sit on, looking
/// for a doc line starting `Contract:`.
fn has_contract_above(file: &SourceFile, lineno: usize) -> bool {
    let mut idx = lineno - 1; // 0-based index of the subject line
    while idx > 0 {
        idx -= 1;
        let Some(above) = file.lines.get(idx) else {
            break;
        };
        // The lexer strips comments out of `code`: a `/// doc` line has
        // empty code and comment text beginning with `/`.
        let trimmed = above.code.trim();
        if trimmed.is_empty() && !above.comment.is_empty() {
            if let Some(doc) = above.comment.strip_prefix('/') {
                if doc.trim().starts_with("Contract:") {
                    return true;
                }
            }
        } else if trimmed.starts_with("#[")
            || trimmed.ends_with(']')
            || trimmed.is_empty()
            || (trimmed.starts_with("struct ") || trimmed.starts_with("pub struct "))
                && trimmed.ends_with(';')
        {
            // Attributes (possibly multi-line), blank separators, and the
            // unit-struct declaration an `impl Stage for` sits beneath.
            continue;
        } else {
            break;
        }
    }
    false
}

/// FNV-1a 64 over `bytes` — the same function `bgp_model::bytes::fnv1a_64`
/// implements; duplicated here so the lint harness stays dependency-free.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Extract `(name, type)` pairs of the `pub` fields of `pub struct
/// <struct_name> { ... }` from a source file. Types are normalized
/// whitespace-free so formatting churn never changes the fingerprint.
pub fn record_fields(file: &SourceFile, struct_name: &str) -> Vec<(String, String)> {
    let header = format!("pub struct {struct_name}");
    let mut out = Vec::new();
    let mut inside = false;
    for (_, line) in file.numbered() {
        let code = line.code.trim();
        if !inside {
            inside = code.starts_with(&header) && code.ends_with('{');
            continue;
        }
        if code.starts_with('}') {
            break;
        }
        if let Some(rest) = code.strip_prefix("pub ") {
            if let Some((name, ty)) = rest.split_once(':') {
                let name = name.trim();
                let named_field =
                    !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if named_field {
                    let ty: String = ty
                        .trim()
                        .trim_end_matches(',')
                        .chars()
                        .filter(|c| !c.is_whitespace())
                        .collect();
                    out.push((name.to_owned(), ty));
                }
            }
        }
    }
    out
}

/// Find `pub const <name>: <ty> = <int literal>;` in a source file and return
/// `(line, value)`. Accepts decimal and `0x` hex with `_` separators.
fn const_u64(file: &SourceFile, name: &str) -> Option<(usize, u64)> {
    for (lineno, line) in file.numbered() {
        let code = line.code.trim();
        let Some(rest) = code.strip_prefix("pub const ") else {
            continue;
        };
        let Some(rest) = rest.strip_prefix(name) else {
            continue;
        };
        if !rest.starts_with(':') {
            continue; // a longer const name sharing the prefix
        }
        let Some((_, value)) = rest.split_once('=') else {
            continue;
        };
        let cleaned: String = value
            .trim()
            .trim_end_matches(';')
            .chars()
            .filter(|c| *c != '_')
            .collect();
        let parsed = match cleaned
            .strip_prefix("0x")
            .or_else(|| cleaned.strip_prefix("0X"))
        {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => cleaned.parse().ok(),
        };
        if let Some(v) = parsed {
            return Some((lineno, v));
        }
    }
    None
}

/// `snapshot-version`: the `.bgpsnap` on-disk codec serializes the record
/// struct field by field, so any change to the struct's field list is a
/// layout change that stale snapshots on operators' disks will not survive.
/// The snapshot module pins a `LAYOUT_FINGERPRINT` (FNV-1a 64 over the
/// `name:type` field list); this rule recomputes it from `record.rs` and
/// fails on drift — forcing whoever changes the record to update the
/// fingerprint and bump `FORMAT_VERSION` in the same commit.
pub fn snapshot_version(
    record: &SourceFile,
    struct_name: &str,
    snapshot: &SourceFile,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let fields = record_fields(record, struct_name);
    if fields.is_empty() {
        out.push(Finding {
            rule: "snapshot-version",
            path: record.path.clone(),
            line: 0,
            message: format!(
                "no fields recognized for `pub struct {struct_name}`; record.rs format changed?"
            ),
        });
        return out;
    }
    let joined = fields
        .iter()
        .map(|(name, ty)| format!("{name}:{ty}"))
        .collect::<Vec<_>>()
        .join(";");
    let computed = fnv1a_64(joined.as_bytes());
    match const_u64(snapshot, "LAYOUT_FINGERPRINT") {
        None => out.push(Finding {
            rule: "snapshot-version",
            path: snapshot.path.clone(),
            line: 0,
            message: format!(
                "no `pub const LAYOUT_FINGERPRINT: u64 = ...;` found; the snapshot \
                 codec for `{struct_name}` must pin its layout fingerprint"
            ),
        }),
        Some((lineno, declared)) if declared != computed => out.push(Finding {
            rule: "snapshot-version",
            path: snapshot.path.clone(),
            line: lineno,
            message: format!(
                "`{struct_name}` field list changed: computed fingerprint {computed:#018x} \
                 != declared {declared:#018x}; the on-disk layout moved, so update \
                 LAYOUT_FINGERPRINT and bump FORMAT_VERSION together"
            ),
        }),
        Some(_) => {}
    }
    if const_u64(snapshot, "FORMAT_VERSION").is_none() {
        out.push(Finding {
            rule: "snapshot-version",
            path: snapshot.path.clone(),
            line: 0,
            message: "no `pub const FORMAT_VERSION: u32 = ...;` found; snapshot readers \
                      cannot reject incompatible files without a pinned version"
                .to_owned(),
        });
    }
    out
}

/// `dep-versions`: parse `Cargo.lock` and flag any package name resolved at
/// two different major versions (for `0.x` crates the minor is the
/// compatibility axis, per Cargo semantics).
pub fn dup_major_versions(lock_text: &str) -> Vec<Finding> {
    let mut versions: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut name: Option<String> = None;
    for raw in lock_text.lines() {
        let line = raw.trim();
        if line == "[[package]]" {
            name = None;
        } else if let Some(v) = line.strip_prefix("name = ") {
            name = Some(v.trim_matches('"').to_owned());
        } else if let Some(v) = line.strip_prefix("version = ") {
            if let Some(n) = name.clone() {
                let ver = v.trim_matches('"');
                let mut parts = ver.split('.');
                let major = parts.next().unwrap_or("0");
                let minor = parts.next().unwrap_or("0");
                let key = if major == "0" {
                    format!("0.{minor}")
                } else {
                    major.to_owned()
                };
                versions.entry(n).or_default().insert(key);
            }
        }
    }
    versions
        .into_iter()
        .filter(|(_, majors)| majors.len() > 1)
        .map(|(n, majors)| Finding {
            rule: "dep-versions",
            path: "Cargo.lock".to_owned(),
            line: 0,
            message: format!(
                "dependency `{n}` resolves at {} incompatible versions ({}); \
                 converge on one to keep builds lean and types unifiable",
                majors.len(),
                majors.into_iter().collect::<Vec<_>>().join(", ")
            ),
        })
        .collect()
}

/// `allow-syntax`: a suppression without a justification is itself a finding;
/// the whole point of `xtask-allow` is the recorded reason.
pub fn allow_syntax(file: &SourceFile) -> Vec<Finding> {
    file.numbered()
        .filter(|(_, l)| l.malformed_allow)
        .map(|(lineno, _)| Finding {
            rule: "allow-syntax",
            path: file.path.clone(),
            line: lineno,
            message: "malformed xtask-allow: use `xtask-allow(<rule>): <justification>`".to_owned(),
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // fixture access; a miss is a test failure
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("fixture.rs", src)
    }

    // -- determinism ------------------------------------------------------

    #[test]
    fn determinism_fires_on_ambient_clock_and_rng() {
        let f = file("let t = std::time::SystemTime::now();\nlet r = rand::rng();\n");
        let found = determinism(&f);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].line, 1);
        assert!(found[0].message.contains("wall-clock"));
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn determinism_is_quiet_on_seeded_code_and_test_code() {
        let clean = file("let rng = SmallRng::seed_from_u64(seed);\n");
        assert!(determinism(&clean).is_empty());
        let test_only = file("#[cfg(test)]\nmod tests {\n let t = Instant::now();\n}\n");
        assert!(determinism(&test_only).is_empty());
    }

    // -- no-panic ---------------------------------------------------------

    #[test]
    fn no_panic_fires_on_unwrap_expect_panic() {
        let f = file("a.unwrap();\nb.expect(\"msg\");\npanic!(\"boom\");\n");
        let rules: Vec<usize> = no_panic(&f).iter().map(|f| f.line).collect();
        assert_eq!(rules, vec![1, 2, 3]);
    }

    #[test]
    fn no_panic_is_quiet_in_tests_strings_and_comments() {
        let f = file(
            "#[cfg(test)]\nmod tests {\n x.unwrap();\n}\n\
             let s = \"don't .unwrap() here\"; // .unwrap() in prose\n",
        );
        assert!(no_panic(&f).is_empty());
    }

    // -- severity-wildcard ------------------------------------------------

    #[test]
    fn severity_wildcard_fires_on_wildcard_arm() {
        let f = file(
            "match sev {\n\
                 Severity::Fatal => 1,\n\
                 _ => 0,\n\
             }\n",
        );
        let found = severity_wildcard(&f);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1, "finding points at the match itself");
    }

    #[test]
    fn severity_wildcard_is_quiet_when_exhaustive_or_unrelated() {
        let exhaustive = file(
            "match sev {\n\
                 Severity::Fatal => 1,\n\
                 Severity::Error | Severity::Warn => 2,\n\
                 Severity::Info | Severity::Debug | Severity::Trace => 3,\n\
             }\n",
        );
        assert!(severity_wildcard(&exhaustive).is_empty());
        let unrelated = file("match n {\n 0 => a,\n _ => b,\n}\n");
        assert!(severity_wildcard(&unrelated).is_empty());
    }

    // -- errcode-catalog --------------------------------------------------

    fn catalog_fixture() -> SourceFile {
        SourceFile::parse(
            "crates/raslog/src/catalog.rs",
            "(\"_bgp_err_ddr_single\", C::Kernel, S::Warn),\n\
             (\"_bgp_err_torus_retrans\", C::Kernel, S::Error),\n",
        )
    }

    #[test]
    fn errcode_catalog_fires_on_unknown_code() {
        let cat = catalog_fixture();
        let classify = file("map(\"_bgp_err_ddr_single\");\nmap(\"_bgp_err_no_such\");\n");
        let found = errcode_catalog(&cat, &[&classify]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        assert!(found[0].message.contains("_bgp_err_no_such"));
    }

    #[test]
    fn errcode_catalog_is_quiet_on_known_codes_and_non_codes() {
        let cat = catalog_fixture();
        let classify = file("map(\"_bgp_err_torus_retrans\");\nlabel(\"PALOMINO_N\");\n");
        assert!(errcode_catalog(&cat, &[&classify]).is_empty());
    }

    #[test]
    fn errcode_catalog_reports_empty_catalog_as_format_drift() {
        let cat = file("// nothing shaped like an entry\n");
        let found = errcode_catalog(&cat, &[]);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("format changed"));
    }

    #[test]
    fn errcode_shapes() {
        assert!(looks_like_errcode("_bgp_err_x"));
        assert!(!looks_like_errcode("_bgp_"));
        assert!(!looks_like_errcode("_bgp_ERR"));
        assert!(!looks_like_errcode("BULK_POWER_FATAL"));
        assert!(!looks_like_errcode("plain_ident"));
    }

    // -- crate-attrs ------------------------------------------------------

    #[test]
    fn crate_attrs_fires_per_missing_attribute() {
        let f = file("#![forbid(unsafe_code)]\npub mod x;\n");
        let found = crate_attrs(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("missing_docs"));
    }

    #[test]
    fn crate_attrs_is_quiet_when_both_present() {
        let f = file("#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n");
        assert!(crate_attrs(&f).is_empty());
    }

    // -- stage-contract ---------------------------------------------------

    #[test]
    fn stage_contract_fires_on_undocumented_stage() {
        let f = file("/// Filters records.\npub fn apply(&self) -> Vec<R> {}\n");
        let found = stage_contract(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`apply`"));
    }

    #[test]
    fn stage_contract_sees_contract_doc_above_attributes() {
        let f = file(
            "/// Contract: output is a subsequence of input.\n\
             /// More prose.\n\
             #[must_use]\n\
             pub fn apply(&self) -> Vec<R> {}\n\
             pub fn helper() {}\n",
        );
        assert!(stage_contract(&f).is_empty(), "helper is not a stage fn");
    }

    #[test]
    fn stage_contract_fires_on_undocumented_stage_impl() {
        let f = file(
            "/// A pass.\n\
             struct FooStage;\n\
             \n\
             impl Stage for FooStage {\n\
             }\n",
        );
        let found = stage_contract(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`FooStage`"));
    }

    #[test]
    fn stage_contract_accepts_documented_stage_impl() {
        let f = file(
            "/// Contract: dedups the shard; output count <= input count.\n\
             struct FooStage;\n\
             \n\
             impl Stage for FooStage {\n\
             }\n",
        );
        assert!(
            stage_contract(&f).is_empty(),
            "contract doc above the struct declaration covers the impl"
        );
    }

    // -- snapshot-version -------------------------------------------------

    fn record_fixture() -> SourceFile {
        SourceFile::parse(
            "crates/raslog/src/record.rs",
            "/// One record.\n\
             pub struct RasRecord {\n\
                 /// Sequence number.\n\
                 pub recid: u64,\n\
                 /// Where.\n\
                 pub location: Location,\n\
             }\n",
        )
    }

    fn snapshot_fixture(fingerprint: u64) -> SourceFile {
        SourceFile::parse(
            "crates/raslog/src/snapshot.rs",
            &format!(
                "pub const FORMAT_VERSION: u32 = 1;\n\
                 pub const LAYOUT_FINGERPRINT: u64 = {fingerprint:#018x};\n"
            ),
        )
    }

    #[test]
    fn snapshot_version_is_quiet_when_fingerprint_matches() {
        let expected = fnv1a_64(b"recid:u64;location:Location");
        let found = snapshot_version(&record_fixture(), "RasRecord", &snapshot_fixture(expected));
        assert!(found.is_empty(), "unexpected findings: {found:?}");
    }

    #[test]
    fn snapshot_version_fires_on_layout_drift() {
        let stale = fnv1a_64(b"recid:u64"); // as if `location` was added later
        let found = snapshot_version(&record_fixture(), "RasRecord", &snapshot_fixture(stale));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2, "finding points at LAYOUT_FINGERPRINT");
        assert!(found[0].message.contains("bump FORMAT_VERSION"));
    }

    #[test]
    fn snapshot_version_fires_on_missing_consts() {
        let expected = fnv1a_64(b"recid:u64;location:Location");
        let no_consts = file("pub fn unrelated() {}\n");
        let found = snapshot_version(&record_fixture(), "RasRecord", &no_consts);
        assert_eq!(found.len(), 2);
        assert!(found[0].message.contains("LAYOUT_FINGERPRINT"));
        assert!(found[1].message.contains("FORMAT_VERSION"));
        let _ = expected;
    }

    #[test]
    fn snapshot_version_reports_unrecognizable_struct() {
        let empty = file("// no struct here\n");
        let found = snapshot_version(&empty, "RasRecord", &snapshot_fixture(0));
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("format changed"));
    }

    #[test]
    fn record_fields_normalize_types_and_skip_private() {
        let f = file(
            "pub struct R {\n\
                 pub a: Vec< u8 >,\n\
                 b: usize,\n\
                 pub c: u64,\n\
             }\n\
             pub struct Other {\n\
                 pub d: u8,\n\
             }\n",
        );
        let fields = record_fields(&f, "R");
        assert_eq!(
            fields,
            vec![
                ("a".to_owned(), "Vec<u8>".to_owned()),
                ("c".to_owned(), "u64".to_owned())
            ]
        );
    }

    #[test]
    fn pinned_fingerprints_match_the_live_structs() {
        // The constants shipped in raslog/joblog `snapshot.rs` were computed
        // from these exact field lists; if this test fails the helper
        // changed, not the structs.
        assert_eq!(
            fnv1a_64(
                b"recid:u64;event_time:Timestamp;location:Location;\
                  errcode:ErrCode;severity:Severity"
            ),
            0x37f1_fcf3_b1a3_e2e7u64
        );
    }

    // -- dep-versions -----------------------------------------------------

    #[test]
    fn dep_versions_fires_on_duplicate_major() {
        let lock = "[[package]]\nname = \"syn\"\nversion = \"1.0.3\"\n\n\
                    [[package]]\nname = \"syn\"\nversion = \"2.0.1\"\n";
        let found = dup_major_versions(lock);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`syn`"));
    }

    #[test]
    fn dep_versions_treats_zero_x_minor_as_the_compat_axis() {
        let two_minors = "[[package]]\nname = \"rand\"\nversion = \"0.8.5\"\n\n\
                          [[package]]\nname = \"rand\"\nversion = \"0.9.0\"\n";
        assert_eq!(dup_major_versions(two_minors).len(), 1);
        let patch_only = "[[package]]\nname = \"rand\"\nversion = \"0.8.4\"\n\n\
                          [[package]]\nname = \"rand\"\nversion = \"0.8.5\"\n";
        assert!(dup_major_versions(patch_only).is_empty());
    }

    // -- allow-syntax -----------------------------------------------------

    #[test]
    fn allow_syntax_fires_on_missing_justification() {
        let f = file("x(); // xtask-allow(no-panic)\n");
        let found = allow_syntax(&f);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn allow_syntax_is_quiet_on_justified_use() {
        let f = file("x(); // xtask-allow(no-panic): poisoned mutex is fatal by design\n");
        assert!(allow_syntax(&f).is_empty());
    }
}
