//! The domain lint rules.
//!
//! Each rule is a pure function from analyzed sources ([`SourceFile`]) to
//! [`Finding`]s, so the unit tests can drive every rule with small in-memory
//! fixtures. Scoping — which files each rule sees — is the runner's job
//! (`crate::workspace`); suppression (`xtask-allow`) is applied there too, so
//! rules report every violation they see.
//!
//! The rule catalog, with ids as used in `xtask-allow(<id>): <why>`:
//!
//! | id | enforces |
//! |----|----------|
//! | `determinism` | no ambient clocks/entropy in `core`/`stats` |
//! | `no-panic` | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | `severity-wildcard` | `match` over `Severity` lists variants explicitly |
//! | `errcode-catalog` | classify's ERRCODE strings exist in the catalog |
//! | `crate-attrs` | crate roots forbid `unsafe_code`, warn `missing_docs` |
//! | `stage-contract` | public pipeline stages and `Stage` impls document their contract |
//! | `snapshot-version` | `.bgpsnap` layout fingerprints track the record structs |
//! | `dep-versions` | no duplicate major versions in `Cargo.lock` |
//! | `allow-syntax` | every `xtask-allow` carries a justification |
//! | `stage-deps` | `StageId::deps()` matches each stage's actual product reads, and `/// Reads:` doc lines stay true |
//! | `parallel-determinism` | no hash-ordered iteration or FP reduction feeding kernel results; no unsanctioned thread spawns |
//! | `serve-concurrency` | no Mutex guard held across blocking I/O in `crates/serve`; queues are bounded at construction |
//! | `port-boundary` | raw `raslog`/`joblog` parser entry points stay inside the BG/P adapter |
//! | `simd-fallback` | every SWAR/SIMD-documented scan keeps a `_scalar` twin referenced by equivalence tests |
//!
//! The last three are token-tree rules: they parse delimiter trees and call
//! chains via [`crate::syntax`] and whole-workspace dataflow models via
//! [`crate::stagegraph`], rather than matching single lines.

use crate::source::SourceFile;
use crate::stagegraph::{self, HashModel};
use crate::syntax::{self, Syntax, Tree};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (see module docs).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number (0 for file- or workspace-level findings).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        }
    }
}

/// Static description of a rule, for `cargo xtask lint --list`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id as accepted by `--only` and `xtask-allow`.
    pub id: &'static str,
    /// One-line summary of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule the harness knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism",
        summary: "deny ambient clocks and entropy (SystemTime::now, Instant::now, thread RNGs) in crates/core and crates/stats",
    },
    RuleInfo {
        id: "no-panic",
        summary: "deny unwrap()/expect()/panic! in non-test library code",
    },
    RuleInfo {
        id: "severity-wildcard",
        summary: "matches over raslog::Severity must list variants explicitly (no `_` arm)",
    },
    RuleInfo {
        id: "errcode-catalog",
        summary: "every ERRCODE string referenced by crates/core/src/classify must exist in crates/raslog/src/catalog.rs",
    },
    RuleInfo {
        id: "crate-attrs",
        summary: "crate roots carry #![forbid(unsafe_code)] and #![warn(missing_docs)]",
    },
    RuleInfo {
        id: "stage-contract",
        summary: "public pipeline stage entry points and `Stage` impls document their input/output contract (a `Contract:` doc line)",
    },
    RuleInfo {
        id: "snapshot-version",
        summary: "snapshot LAYOUT_FINGERPRINT matches the record struct's field list, so layout changes force a FORMAT_VERSION bump",
    },
    RuleInfo {
        id: "dep-versions",
        summary: "Cargo.lock carries no duplicate major versions of any dependency",
    },
    RuleInfo {
        id: "allow-syntax",
        summary: "xtask-allow suppressions carry a non-empty justification",
    },
    RuleInfo {
        id: "stage-deps",
        summary: "StageId::deps() declarations match the products each Stage::run actually reads (undeclared deps break wave execution; stale deps cost parallelism), and `/// Reads:` doc lines stay true",
    },
    RuleInfo {
        id: "parallel-determinism",
        summary: "parallel kernels never let HashMap/HashSet iteration order or FP accumulation order reach results, and spawn threads only via the sanctioned scope helpers",
    },
    RuleInfo {
        id: "serve-concurrency",
        summary: "crates/serve never holds a Mutex guard across blocking I/O and constructs only bounded channels/queues",
    },
    RuleInfo {
        id: "port-boundary",
        summary: "raw raslog/joblog parser entry points are called only from the BG/P adapter (crates/ports/src/bgp.rs); everything else goes through the bgp-ports source traits",
    },
    RuleInfo {
        id: "simd-fallback",
        summary: "every function documented as a SWAR/SIMD scan has a `<name>_scalar` twin in the same file, and the twin is exercised by test code (the equivalence oracle)",
    },
];

/// Ambient time / entropy sources that break pipeline reproducibility.
const NONDETERMINISM: &[(&str, &str)] = &[
    ("SystemTime::now", "ambient wall-clock read"),
    ("Instant::now", "ambient monotonic-clock read"),
    ("thread_rng", "thread-local RNG (unseeded)"),
    ("rand::rng(", "ambient RNG constructor (unseeded)"),
    ("from_entropy", "OS-entropy RNG seeding"),
    ("from_os_rng", "OS-entropy RNG seeding"),
];

/// `determinism`: the analysis pipeline (`crates/core`) and the statistics
/// substrate (`crates/stats`) must be pure functions of their inputs and
/// explicit seeds — the paper's results are only reproducible if the same
/// logs always produce the same tables.
pub fn determinism(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        for (pattern, what) in NONDETERMINISM {
            if line.code.contains(pattern) {
                out.push(Finding {
                    rule: "determinism",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "{what} (`{pattern}`) in deterministic pipeline code; \
                         thread an explicit seed or timestamp through the call graph"
                    ),
                });
            }
        }
    }
    out
}

/// Raw parser entry points that only the BG/P adapter may name.
const PORT_BOUNDARY_PATTERNS: &[&str] = &[
    "raslog::parse",
    "joblog::parse",
    "raslog::ingest",
    "joblog::ingest",
    "ingest::parse_log_bytes",
];

/// `port-boundary`: consumers reach log records through the `bgp-ports`
/// source traits; naming a raw parser entry point directly bypasses the
/// adapter layer and its per-source diagnostics. The parser crates
/// themselves and `crates/ports/src/bgp.rs` — the one sanctioned adapter —
/// are outside this rule's scope (see the caller).
pub fn port_boundary(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        for pattern in PORT_BOUNDARY_PATTERNS {
            if line.code.contains(pattern) {
                out.push(Finding {
                    rule: "port-boundary",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "direct parser entry point (`{pattern}`) outside the BG/P \
                         adapter; go through the `bgp_ports` source traits \
                         (crates/ports/src/bgp.rs is the one sanctioned call site)"
                    ),
                });
                break; // one finding per line, not one per overlapping pattern
            }
        }
    }
    out
}

/// Panic paths denied in library code.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap()"),
    (".expect(", "expect()"),
    ("panic!(", "panic!"),
];

/// `no-panic`: library code must return typed errors, not abort the process.
/// Test code is exempt (the runner only feeds non-test lines would be wrong —
/// the exemption is per line, handled here via `in_test`).
pub fn no_panic(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        for (pattern, what) in PANIC_PATTERNS {
            if line.code.contains(pattern) {
                out.push(Finding {
                    rule: "no-panic",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "{what} in library code; return a typed error \
                         (or justify with `xtask-allow(no-panic): <why>`)"
                    ),
                });
            }
        }
    }
    out
}

/// `severity-wildcard`: a `match` over `raslog::Severity` with a `_` arm
/// silently absorbs any future severity level; the catalog gained levels
/// before and will again. Requires every variant listed.
pub fn severity_wildcard(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    // Stack of open match blocks: (line of `match`, depth of its arms,
    // saw a Severity:: pattern, saw a wildcard arm).
    let mut depth: i64 = 0;
    let mut matches: Vec<(usize, i64, bool, bool)> = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        // Arm inspection happens before brace bookkeeping so `Severity::X =>`
        // patterns are attributed to the innermost open match.
        if let Some((arm_line, arm_depth, saw_sev, saw_wild)) = matches.last_mut() {
            let _ = arm_line;
            if depth == *arm_depth + 1 {
                if let Some(pat) = code.split_once("=>").map(|(p, _)| p.trim()) {
                    if pat.contains("Severity::") {
                        *saw_sev = true;
                    }
                    if pat == "_" || pat.ends_with("| _") || pat.starts_with("_ if") {
                        *saw_wild = true;
                    }
                }
            }
        }
        let opens_match = code.contains("match ") && code.trim_end().ends_with('{');
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if opens_match && matches.last().map(|m| m.1) != Some(depth - 1) {
                        // Attribute the first `{` on a `match ... {` line to
                        // the match itself.
                        matches.push((lineno, depth - 1, false, false));
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(&(mline, mdepth, saw_sev, saw_wild)) = matches.last() {
                        if depth == mdepth {
                            matches.pop();
                            if saw_sev && saw_wild {
                                out.push(Finding {
                                    rule: "severity-wildcard",
                                    path: file.path.clone(),
                                    line: mline,
                                    message: "match over Severity uses a wildcard arm; \
                                              list every variant so new severity levels \
                                              fail to compile instead of being absorbed"
                                        .to_owned(),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// True for strings shaped like Blue Gene/P error-code names: the lowercase
/// `_bgp_*` family or upper-snake-case hardware codes (`BULK_POWER_FATAL`).
fn looks_like_errcode(s: &str) -> bool {
    // Every catalog code is `_bgp_` + lower_snake; subcomponent names are
    // UPPER_SNAKE and deliberately not matched.
    if let Some(rest) = s.strip_prefix("_bgp_") {
        return !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    }
    false
}

/// Extract the set of code names defined by `catalog.rs`: the first string
/// of every `("name", C::Component, ...)` catalog entry.
pub fn catalog_names(catalog: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (_, line) in catalog.numbered() {
        // After string-blanking a catalog entry reads `("", C::Kernel, ...)`.
        if line.code.contains("(\"\", C::") {
            if let Some(first) = line.strings.first() {
                names.insert(first.clone());
            }
        }
    }
    names
}

/// `errcode-catalog`: every ERRCODE-shaped string in the classify sources
/// must name a code the catalog actually defines — classification decisions
/// keyed on a typo would silently never fire. Test code is checked too: a
/// test asserting on a phantom code is equally wrong.
pub fn errcode_catalog(catalog: &SourceFile, classify: &[&SourceFile]) -> Vec<Finding> {
    let names = catalog_names(catalog);
    let mut out = Vec::new();
    if names.is_empty() {
        out.push(Finding {
            rule: "errcode-catalog",
            path: catalog.path.clone(),
            line: 0,
            message: "no catalog entries recognized; catalog.rs format changed?".to_owned(),
        });
        return out;
    }
    for file in classify {
        for (lineno, line) in file.numbered() {
            for s in &line.strings {
                if looks_like_errcode(s) && !names.contains(s) {
                    out.push(Finding {
                        rule: "errcode-catalog",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "ERRCODE `{s}` is not defined in raslog's catalog \
                             (crates/raslog/src/catalog.rs); classification keyed \
                             on it can never fire"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// True when the contiguous doc block above `lineno` (1-based) advertises a
/// word- or vector-parallel implementation ("SWAR" or "SIMD").
fn doc_mentions_simd(file: &SourceFile, lineno: usize) -> bool {
    let mut idx = lineno - 1; // 0-based index of the subject line
    while idx > 0 {
        idx -= 1;
        let Some(above) = file.lines.get(idx) else {
            return false;
        };
        let trimmed = above.code.trim();
        if trimmed.is_empty() && !above.comment.is_empty() {
            if above.comment.contains("SWAR") || above.comment.contains("SIMD") {
                return true;
            }
        } else if trimmed.starts_with("#[") || trimmed.ends_with(']') || trimmed.is_empty() {
            continue; // attributes (possibly multi-line) and blank separators
        } else {
            break;
        }
    }
    false
}

/// `simd-fallback`: a function documented as a SWAR/SIMD scan is an
/// optimization, and optimizations need oracles. Each one must keep a
/// `<name>_scalar` twin in the same file — the byte-at-a-time reference it
/// is benchmarked over and falls back to — and that twin must be named from
/// test code, so the promised SWAR-vs-scalar equivalence is actually
/// executed, not just documented.
pub fn simd_fallback(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut defined: BTreeSet<String> = BTreeSet::new();
    let mut scans: Vec<(usize, String)> = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim_start();
        let Some(rest) = code
            .strip_prefix("pub fn ")
            .or_else(|| code.strip_prefix("fn "))
        else {
            continue;
        };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        defined.insert(name.clone());
        // The scalar twins themselves mention SWAR in their docs (they state
        // what they are the oracle *for*) but need no twin of their own.
        if !name.ends_with("_scalar") && doc_mentions_simd(file, lineno) {
            scans.push((lineno, name));
        }
    }
    for (lineno, name) in scans {
        let twin = format!("{name}_scalar");
        if !defined.contains(&twin) {
            out.push(Finding {
                rule: "simd-fallback",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "SWAR/SIMD scan `{name}` has no scalar twin `{twin}` in this \
                     file; keep the byte-at-a-time reference as the fallback and \
                     equivalence oracle"
                ),
            });
        } else if !file
            .lines
            .iter()
            .any(|l| l.in_test && l.code.contains(twin.as_str()))
        {
            out.push(Finding {
                rule: "simd-fallback",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "scalar twin `{twin}` of SWAR/SIMD scan `{name}` is never \
                     referenced from test code; the documented equivalence is \
                     unverified — add (or restore) the head-to-head test"
                ),
            });
        }
    }
    out
}

/// Crate-root attributes every workspace crate must carry.
const REQUIRED_ATTRS: &[&str] = &["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

/// Crate roots allowed to downgrade `forbid(unsafe_code)` to `deny`: the
/// machine-model crate hosts the workspace's single sanctioned `unsafe`
/// module (`mmap`, the read-only file mapping), which opts back in with a
/// scoped `#![allow(unsafe_code)]` and a written safety argument. `deny`
/// still stops every *other* module in the crate; `forbid` would stop the
/// opt-in too.
const DENY_UNSAFE_ROOTS: &[&str] = &["crates/bgp-model/src/lib.rs"];

/// `crate-attrs`: belt and braces with `[workspace.lints]` — the attributes
/// keep the guarantees visible in the source and survive being compiled
/// outside this workspace.
pub fn crate_attrs(root: &SourceFile) -> Vec<Finding> {
    let squashed: Vec<String> = root
        .lines
        .iter()
        .map(|l| l.code.chars().filter(|c| !c.is_whitespace()).collect())
        .collect();
    REQUIRED_ATTRS
        .iter()
        .filter(|attr| {
            let want: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
            if squashed.iter().any(|l| l.contains(&want)) {
                return false;
            }
            // Allowlisted roots satisfy the unsafe_code requirement with
            // `deny` instead of `forbid`.
            let deny_ok = **attr == "#![forbid(unsafe_code)]"
                && DENY_UNSAFE_ROOTS.contains(&root.path.as_str())
                && squashed.iter().any(|l| l.contains("#![deny(unsafe_code)]"));
            !deny_ok
        })
        .map(|attr| Finding {
            rule: "crate-attrs",
            path: root.path.clone(),
            line: 0,
            message: format!("crate root is missing `{attr}`"),
        })
        .collect()
}

/// Names of public entry points that constitute pipeline stages.
const STAGE_FNS: &[&str] = &[
    "apply",
    "run",
    "filter",
    "classify_impact",
    "classify_root_cause",
];

/// `stage-contract`: every public stage entry point — and every `Stage`
/// trait implementation — must carry a doc line starting `Contract:`
/// stating its input → output obligation (e.g. that filtering is monotone:
/// output count ≤ input count). The paper's pipeline is a chain of such
/// contracts; making them greppable text keeps them reviewable.
pub fn stage_contract(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim_start();
        let subject = if let Some(rest) = code.strip_prefix("pub fn ") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !STAGE_FNS.contains(&name.as_str()) {
                continue;
            }
            format!("public stage entry point `{name}`")
        } else if code.contains("impl Stage for ") {
            // A `Stage` trait impl is a named pipeline pass; the contract
            // doc sits on the struct declaration directly above it.
            let name: String = code
                .split("impl Stage for ")
                .nth(1)
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            format!("stage implementation `{name}`")
        } else {
            continue;
        };
        if !has_contract_above(file, lineno) {
            out.push(Finding {
                rule: "stage-contract",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "{subject} has no `/// Contract:` doc line stating its \
                     input/output obligation"
                ),
            });
        }
    }
    out
}

/// Walk upward from `lineno` (1-based) over attributes, doc comments, and
/// — for `impl` blocks — the struct declaration the docs sit on, looking
/// for a doc line starting `prefix`; returns the text after the prefix.
fn doc_above(file: &SourceFile, lineno: usize, prefix: &str) -> Option<String> {
    let mut idx = lineno - 1; // 0-based index of the subject line
    while idx > 0 {
        idx -= 1;
        let above = file.lines.get(idx)?;
        // The lexer strips comments out of `code`: a `/// doc` line has
        // empty code and comment text beginning with `/`.
        let trimmed = above.code.trim();
        if trimmed.is_empty() && !above.comment.is_empty() {
            if let Some(doc) = above.comment.strip_prefix('/') {
                if let Some(rest) = doc.trim().strip_prefix(prefix) {
                    return Some(rest.trim().to_owned());
                }
            }
        } else if trimmed.starts_with("#[")
            || trimmed.ends_with(']')
            || trimmed.is_empty()
            || (trimmed.starts_with("struct ") || trimmed.starts_with("pub struct "))
                && trimmed.ends_with(';')
        {
            // Attributes (possibly multi-line), blank separators, and the
            // unit-struct declaration an `impl Stage for` sits beneath.
            continue;
        } else {
            break;
        }
    }
    None
}

/// True when a `/// Contract:` doc line sits above `lineno`.
fn has_contract_above(file: &SourceFile, lineno: usize) -> bool {
    doc_above(file, lineno, "Contract:").is_some()
}

/// FNV-1a 64 over `bytes` — the same function `bgp_model::bytes::fnv1a_64`
/// implements; duplicated here so the lint harness stays dependency-free.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Extract `(name, type)` pairs of the `pub` fields of `pub struct
/// <struct_name> { ... }` from a source file. Types are normalized
/// whitespace-free so formatting churn never changes the fingerprint.
pub fn record_fields(file: &SourceFile, struct_name: &str) -> Vec<(String, String)> {
    let header = format!("pub struct {struct_name}");
    let mut out = Vec::new();
    let mut inside = false;
    for (_, line) in file.numbered() {
        let code = line.code.trim();
        if !inside {
            inside = code.starts_with(&header) && code.ends_with('{');
            continue;
        }
        if code.starts_with('}') {
            break;
        }
        if let Some(rest) = code.strip_prefix("pub ") {
            if let Some((name, ty)) = rest.split_once(':') {
                let name = name.trim();
                let named_field =
                    !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if named_field {
                    let ty: String = ty
                        .trim()
                        .trim_end_matches(',')
                        .chars()
                        .filter(|c| !c.is_whitespace())
                        .collect();
                    out.push((name.to_owned(), ty));
                }
            }
        }
    }
    out
}

/// Find `pub const <name>: <ty> = <int literal>;` in a source file and return
/// `(line, value)`. Accepts decimal and `0x` hex with `_` separators.
fn const_u64(file: &SourceFile, name: &str) -> Option<(usize, u64)> {
    for (lineno, line) in file.numbered() {
        let code = line.code.trim();
        let Some(rest) = code.strip_prefix("pub const ") else {
            continue;
        };
        let Some(rest) = rest.strip_prefix(name) else {
            continue;
        };
        if !rest.starts_with(':') {
            continue; // a longer const name sharing the prefix
        }
        let Some((_, value)) = rest.split_once('=') else {
            continue;
        };
        let cleaned: String = value
            .trim()
            .trim_end_matches(';')
            .chars()
            .filter(|c| *c != '_')
            .collect();
        let parsed = match cleaned
            .strip_prefix("0x")
            .or_else(|| cleaned.strip_prefix("0X"))
        {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => cleaned.parse().ok(),
        };
        if let Some(v) = parsed {
            return Some((lineno, v));
        }
    }
    None
}

/// `snapshot-version`: the `.bgpsnap` on-disk codec serializes the record
/// struct field by field, so any change to the struct's field list is a
/// layout change that stale snapshots on operators' disks will not survive.
/// The snapshot module pins a `LAYOUT_FINGERPRINT` (FNV-1a 64 over the
/// `name:type` field list); this rule recomputes it from `record.rs` and
/// fails on drift — forcing whoever changes the record to update the
/// fingerprint and bump `FORMAT_VERSION` in the same commit.
pub fn snapshot_version(
    record: &SourceFile,
    struct_name: &str,
    snapshot: &SourceFile,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let fields = record_fields(record, struct_name);
    if fields.is_empty() {
        out.push(Finding {
            rule: "snapshot-version",
            path: record.path.clone(),
            line: 0,
            message: format!(
                "no fields recognized for `pub struct {struct_name}`; record.rs format changed?"
            ),
        });
        return out;
    }
    let joined = fields
        .iter()
        .map(|(name, ty)| format!("{name}:{ty}"))
        .collect::<Vec<_>>()
        .join(";");
    let computed = fnv1a_64(joined.as_bytes());
    match const_u64(snapshot, "LAYOUT_FINGERPRINT") {
        None => out.push(Finding {
            rule: "snapshot-version",
            path: snapshot.path.clone(),
            line: 0,
            message: format!(
                "no `pub const LAYOUT_FINGERPRINT: u64 = ...;` found; the snapshot \
                 codec for `{struct_name}` must pin its layout fingerprint"
            ),
        }),
        Some((lineno, declared)) if declared != computed => out.push(Finding {
            rule: "snapshot-version",
            path: snapshot.path.clone(),
            line: lineno,
            message: format!(
                "`{struct_name}` field list changed: computed fingerprint {computed:#018x} \
                 != declared {declared:#018x}; the on-disk layout moved, so update \
                 LAYOUT_FINGERPRINT and bump FORMAT_VERSION together"
            ),
        }),
        Some(_) => {}
    }
    if const_u64(snapshot, "FORMAT_VERSION").is_none() {
        out.push(Finding {
            rule: "snapshot-version",
            path: snapshot.path.clone(),
            line: 0,
            message: "no `pub const FORMAT_VERSION: u32 = ...;` found; snapshot readers \
                      cannot reject incompatible files without a pinned version"
                .to_owned(),
        });
    }
    out
}

/// `dep-versions`: parse `Cargo.lock` and flag any package name resolved at
/// two different major versions (for `0.x` crates the minor is the
/// compatibility axis, per Cargo semantics).
pub fn dup_major_versions(lock_text: &str) -> Vec<Finding> {
    let mut versions: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut name: Option<String> = None;
    for raw in lock_text.lines() {
        let line = raw.trim();
        if line == "[[package]]" {
            name = None;
        } else if let Some(v) = line.strip_prefix("name = ") {
            name = Some(v.trim_matches('"').to_owned());
        } else if let Some(v) = line.strip_prefix("version = ") {
            if let Some(n) = name.clone() {
                let ver = v.trim_matches('"');
                let mut parts = ver.split('.');
                let major = parts.next().unwrap_or("0");
                let minor = parts.next().unwrap_or("0");
                let key = if major == "0" {
                    format!("0.{minor}")
                } else {
                    major.to_owned()
                };
                versions.entry(n).or_default().insert(key);
            }
        }
    }
    versions
        .into_iter()
        .filter(|(_, majors)| majors.len() > 1)
        .map(|(n, majors)| Finding {
            rule: "dep-versions",
            path: "Cargo.lock".to_owned(),
            line: 0,
            message: format!(
                "dependency `{n}` resolves at {} incompatible versions ({}); \
                 converge on one to keep builds lean and types unifiable",
                majors.len(),
                majors.into_iter().collect::<Vec<_>>().join(", ")
            ),
        })
        .collect()
}

/// `allow-syntax`: a suppression without a justification is itself a finding;
/// the whole point of `xtask-allow` is the recorded reason.
pub fn allow_syntax(file: &SourceFile) -> Vec<Finding> {
    file.numbered()
        .filter(|(_, l)| l.malformed_allow)
        .map(|(lineno, _)| Finding {
            rule: "allow-syntax",
            path: file.path.clone(),
            line: lineno,
            message: "malformed xtask-allow: use `xtask-allow(<rule>): <justification>`".to_owned(),
        })
        .collect()
}

/// Canonical text of a stage's `Reads:` contract line: the `PipelineState`
/// product accessors and `AnalysisContext` methods its `run` reaches, both
/// sorted. The lint regenerates this text and compares it whitespace-free,
/// so the doc can wrap freely.
fn reads_doc_text(state: &BTreeSet<String>, ctx: &BTreeSet<String>) -> String {
    let join = |s: &BTreeSet<String>| s.iter().cloned().collect::<Vec<_>>().join(", ");
    format!("state{{{}}}; ctx{{{}}}", join(state), join(ctx))
}

/// Whitespace-free comparison key for doc-line checks.
fn squash_ws(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// `stage-deps`: cross-check `StageId::deps()` against what every
/// `impl Stage` actually reads.
///
/// An **undeclared** dependency is a correctness bug: the wave executor
/// schedules a stage as soon as its *declared* dependencies finish, so a
/// product read outside the declared transitive closure can observe an
/// absent product and silently degrade to the empty default. A **stale**
/// (over-declared) dependency is a performance bug: it serializes stages
/// that could run in the same wave. Both directions are computed from the
/// extracted [`stagegraph::StageGraphModel`]; `/// Reads:` doc lines on the
/// stage structs are verified against the same model so the docs cannot
/// drift from the code.
pub fn stage_deps(
    stage_file: &SourceFile,
    context_file: &SourceFile,
    core_files: &[&SourceFile],
) -> Vec<Finding> {
    let model = stagegraph::extract(stage_file, context_file, core_files);
    let mut out = Vec::new();
    let finding = |line: usize, message: String| Finding {
        rule: "stage-deps",
        path: stage_file.path.clone(),
        line,
        message,
    };
    for (line, message) in &model.problems {
        out.push(finding(*line, message.clone()));
    }
    let implemented: BTreeSet<&String> = model
        .impls
        .iter()
        .filter_map(|i| i.variant.as_ref())
        .collect();
    for v in &model.variants {
        if !implemented.contains(v) {
            out.push(finding(
                0,
                format!("no `impl Stage` found for StageId::{v}; every variant needs a pass"),
            ));
        }
        if !model.declared.contains_key(v) {
            out.push(finding(
                0,
                format!("`fn deps` has no arm for StageId::{v}; its dependencies are undeclared"),
            ));
        }
    }
    for imp in &model.impls {
        let Some(variant) = &imp.variant else {
            continue;
        };
        let declared = model.declared.get(variant).cloned().unwrap_or_default();
        let reach = stagegraph::closure(&model.declared, &declared);
        let mut producers: BTreeSet<String> = BTreeSet::new();
        let mut state_set: BTreeSet<String> = BTreeSet::new();
        for r in &imp.state_reads {
            state_set.insert(r.accessor.clone());
            match stagegraph::producer_of(&r.accessor) {
                None => out.push(finding(
                    r.line,
                    format!(
                        "unknown PipelineState accessor `{}`; extend \
                         stagegraph::PRODUCT_ACCESSORS so the dependency check sees it",
                        r.accessor
                    ),
                )),
                Some(p) => {
                    producers.insert(p.to_owned());
                    if p != variant && !reach.contains(p) {
                        out.push(finding(
                            r.line,
                            format!(
                                "undeclared dependency: {} ({variant}) reads the {p} product \
                                 via `state.{}()`, but StageId::deps() does not reach {p} — \
                                 the wave executor may schedule {variant} before {p} and the \
                                 read degrades to an empty default",
                                imp.struct_name, r.accessor
                            ),
                        ));
                    }
                }
            }
        }
        for d in &declared {
            let rest: Vec<String> = declared.iter().filter(|x| *x != d).cloned().collect();
            let cover = stagegraph::closure(&model.declared, &rest);
            if producers.iter().all(|p| cover.contains(p)) {
                out.push(finding(
                    imp.line,
                    format!(
                        "stale dependency: {variant} declares {d} but every product it reads \
                         is already covered by {{{}}}; drop it to restore wave parallelism",
                        rest.join(", ")
                    ),
                ));
            }
        }
        let expected = reads_doc_text(&state_set, &imp.ctx_reads);
        match doc_above(stage_file, imp.line, "Reads:") {
            None => out.push(finding(
                imp.line,
                format!(
                    "{} has no `/// Reads:` contract line; expected `/// Reads: {expected}`",
                    imp.struct_name
                ),
            )),
            Some(actual) if squash_ws(&actual) != squash_ws(&expected) => out.push(finding(
                imp.line,
                format!(
                    "stale `/// Reads:` line on {}: expected `Reads: {expected}`, found \
                     `Reads: {actual}`",
                    imp.struct_name
                ),
            )),
            Some(_) => {}
        }
    }
    out
}

/// Iterator heads that expose a hash container's nondeterministic order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Chain sinks whose value depends on iteration order.
const ORDER_SINKS: &[&str] = &[
    "fold",
    "reduce",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "find",
    "find_map",
    "position",
    "last",
    "next",
    "for_each",
    "scan",
];

/// Chain sinks that are order-insensitive regardless of element type.
const COMMUTATIVE_SINKS: &[&str] = &["count", "any", "all"];

/// Integer types whose `sum()`/`product()` is order-insensitive.
const INT_TYPES: &[&str] = &[
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
];

/// Collect every `let` binding under `trees`, recursively through nested
/// blocks and closure bodies.
fn collect_lets(trees: &[Tree], out: &mut Vec<syntax::LetBinding>) {
    for stmt in syntax::statements(trees) {
        // A statement can carry several `let`s: block statements need no
        // semicolon, so `if … {…} let s = …;` parses as one statement.
        // Try every top-level `let`; non-binding positions (`if let`)
        // simply fail to parse.
        for (i, t) in stmt.iter().enumerate() {
            if matches!(t, Tree::Leaf(tok) if tok.text == "let") {
                let tail = stmt.get(i..).unwrap_or_default();
                if let Some(b) = syntax::LetBinding::from_statement(tail) {
                    out.push(b);
                }
            }
        }
    }
    for t in trees {
        if let Tree::Group(g) = t {
            collect_lets(&g.trees, out);
        }
    }
}

/// `parallel-determinism`: the kernels' bit-identity guarantee (every
/// `matches_baseline` flag in the committed benchmark baseline) holds only
/// if `HashMap`/`HashSet` iteration order and floating-point accumulation
/// order never reach results. Hash containers are fine as *keyed stores*;
/// iterating one is fine when the traversal is order-insensitive (counts),
/// re-keyed (collected back into a map), or explicitly re-ordered (sorted
/// after collection). Everything else is a finding. Thread creation outside
/// the sanctioned scope helpers (`fork_join`, `map_chunks_parallel`) is
/// denied in the same scope, since ad-hoc threads bypass the deterministic
/// chunk → thread assignment.
pub fn parallel_determinism(
    file: &SourceFile,
    model: &HashModel,
    spawn_sanctioned: bool,
) -> Vec<Finding> {
    let syntax_tree = Syntax::parse(file);
    let mut out = Vec::new();
    let not_test = |line: usize| {
        !line
            .checked_sub(1)
            .and_then(|i| file.lines.get(i))
            .is_some_and(|l| l.in_test)
    };
    if !spawn_sanctioned {
        let mut found = Vec::new();
        syntax::calls(&syntax_tree.trees, &mut found);
        for c in &found {
            let is_spawn = c.callee == "spawn" || (c.callee == "scope" && c.qualifier == "thread");
            if is_spawn && not_test(c.line) {
                out.push(Finding {
                    rule: "parallel-determinism",
                    path: file.path.clone(),
                    line: c.line,
                    message: "thread creation outside the sanctioned scope helpers \
                              (`fork_join` / `map_chunks_parallel`); route parallelism \
                              through them so chunking and result order stay deterministic"
                        .to_owned(),
                });
            }
        }
    }
    for f in syntax_tree.fns() {
        let Some(body) = f.body else { continue };
        // Names bound to hash containers in this body's scope: struct
        // fields (global by name), hash-typed parameters, and locals whose
        // annotation, constructor, or initializing call is hash-typed.
        let mut hash_names: BTreeSet<String> = model.hash_fields.clone();
        if let Some(params) = f.params() {
            for (name, ty) in syntax::split_params(params) {
                if stagegraph::is_hash_type(&ty) {
                    hash_names.insert(name);
                }
            }
        }
        let mut lets: Vec<syntax::LetBinding> = Vec::new();
        collect_lets(&body.trees, &mut lets);
        for b in &lets {
            let hash_init = stagegraph::is_hash_type(&b.annotation)
                || b.init.contains("HashMap")
                || b.init.contains("HashSet")
                || b.init
                    .split_whitespace()
                    .any(|t| model.hash_fns.contains(t));
            if hash_init {
                hash_names.insert(b.name.clone());
            }
        }
        let mut chains: Vec<syntax::Chain<'_>> = Vec::new();
        syntax::chains(&body.trees, &mut chains);
        for chain in &chains {
            if !hash_names.contains(&chain.receiver) || !not_test(chain.line) {
                continue;
            }
            let Some(first) = chain.links.first() else {
                continue;
            };
            if !HASH_ITER_METHODS.contains(&first.method.as_str()) {
                continue;
            }
            // The let binding (if any) this chain initializes, for
            // annotation and sorted-later checks. The receiver opens the
            // initializer, so it sits on the initializer's first line;
            // matching by line keeps `let a = m.iter()…` from resolving to
            // some earlier binding that merely mentions `m`.
            let binding = lets.iter().find(|b| {
                b.init_line == chain.line && b.init.split_whitespace().any(|t| t == chain.receiver)
            });
            // A chain with no binding is usually a tail expression or
            // return value: the enclosing fn's return type annotates it.
            let fallback_annot = if binding.is_none() {
                f.return_type()
            } else {
                String::new()
            };
            let sorted_later = |name: &str| {
                chains.iter().any(|c| {
                    c.receiver == name && c.links.iter().any(|l| l.method.starts_with("sort"))
                })
            };
            let mut message: Option<(usize, String)> = None;
            for link in chain.links.get(1..).unwrap_or_default() {
                let m = link.method.as_str();
                if m == "collect" {
                    let fish = &link.turbofish;
                    let annot = binding
                        .map(|b| b.annotation.as_str())
                        .unwrap_or(&fallback_annot);
                    let keyed = |t: &str| {
                        stagegraph::is_hash_type(t)
                            || t.contains("BTreeMap")
                            || t.contains("BTreeSet")
                    };
                    if keyed(fish) || (fish.is_empty() && keyed(annot)) {
                        break; // re-keyed or ordered container: order restored
                    }
                    if binding.is_some_and(|b| sorted_later(&b.name)) {
                        break; // collected then deterministically sorted
                    }
                    message = Some((
                        link.line,
                        format!(
                            "hash-ordered iteration of `{}` is collected into an \
                             order-sensitive container and never sorted; sort the result \
                             or collect into a keyed/ordered container",
                            chain.receiver
                        ),
                    ));
                    break;
                }
                if m == "sum" || m == "product" {
                    let fish = &link.turbofish;
                    let annot = binding
                        .map(|b| b.annotation.as_str())
                        .unwrap_or(&fallback_annot);
                    let ty = if fish.is_empty() { annot } else { fish };
                    if INT_TYPES.contains(&ty) {
                        break; // integer accumulation commutes exactly
                    }
                    let what = if ty.starts_with('f') {
                        "floating-point accumulation order varies with hash order"
                    } else {
                        "element type not visible; floats would accumulate in hash order"
                    };
                    message = Some((
                        link.line,
                        format!(
                            "`{m}()` over hash-ordered iteration of `{}`: {what}; \
                             iterate a sorted view or accumulate integers",
                            chain.receiver
                        ),
                    ));
                    break;
                }
                if ORDER_SINKS.contains(&m) {
                    message = Some((
                        link.line,
                        format!(
                            "`{m}` consumes hash-ordered iteration of `{}`; its result \
                             depends on HashMap/HashSet iteration order — iterate a \
                             sorted view instead",
                            chain.receiver
                        ),
                    ));
                    break;
                }
                if COMMUTATIVE_SINKS.contains(&m) {
                    break; // order-insensitive sink
                }
                // Anything else (map/filter/copied/...) transforms the
                // stream; keep scanning for the sink.
            }
            if let Some((line, message)) = message {
                out.push(Finding {
                    rule: "parallel-determinism",
                    path: file.path.clone(),
                    line,
                    message,
                });
            }
        }
    }
    out
}

/// Method calls that block on I/O, channels, timers, or other threads.
const BLOCKING_CALLS: &[&str] = &[
    "recv",
    "recv_timeout",
    "accept",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "write",
    "write_all",
    "write_vectored",
    "flush",
    "send",
    "sleep",
    "join",
    "connect",
    "wait",
    "wait_timeout",
];

/// One live Mutex guard during the `serve-concurrency` scan.
struct LiveGuard {
    name: String,
    line: usize,
}

/// True when a statement prefix / initializer contains a guard-producing
/// call: `.lock(...)` or a local helper returning a `MutexGuard`.
fn produces_guard(mut words: impl Iterator<Item = String>, guard_fns: &BTreeSet<String>) -> bool {
    words.any(|w| w == "lock" || guard_fns.contains(&w))
}

/// Flattened word stream of a tree slice (group contents included).
fn words_of(trees: &[Tree], out: &mut Vec<String>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => out.push(tok.text.clone()),
            Tree::Group(g) => words_of(&g.trees, out),
        }
    }
}

/// Scan one statement's trees for blocking calls under live guards and
/// `drop(guard)` deactivations; recurse into nested blocks with proper
/// guard scoping, skipping `spawn(...)` argument closures (they run on
/// another thread, without the caller's guards).
fn scan_serve_stmt(
    file: &SourceFile,
    stmt: &[Tree],
    guard_fns: &BTreeSet<String>,
    active: &mut Vec<LiveGuard>,
    out: &mut Vec<Finding>,
) {
    let leaf = |i: usize| match stmt.get(i) {
        Some(Tree::Leaf(t)) => t.text.as_str(),
        _ => "",
    };
    for (i, t) in stmt.iter().enumerate() {
        match t {
            Tree::Group(g) if g.delim == '{' => {
                // A block after a guard-producing prefix (`if let Ok(g) =
                // x.lock() {`, `match x.lock() {`) runs with that guard live.
                let mut prefix = Vec::new();
                words_of(stmt.get(..i).unwrap_or_default(), &mut prefix);
                let scoped = produces_guard(prefix.into_iter(), guard_fns);
                if scoped {
                    active.push(LiveGuard {
                        name: "<scoped>".to_owned(),
                        line: g.open_line,
                    });
                }
                scan_serve_block(file, &g.trees, guard_fns, active, out);
                if scoped {
                    active.pop();
                }
            }
            Tree::Group(g) => {
                if leaf(i.wrapping_sub(1)) == "spawn" {
                    continue; // the spawned closure runs without our guards
                }
                scan_serve_stmt(file, &g.trees, guard_fns, active, out);
            }
            Tree::Leaf(tok) => {
                // A call is `ident (…)`; check blocking + drop.
                let is_call = matches!(stmt.get(i + 1), Some(Tree::Group(g)) if g.delim == '(');
                if !is_call || leaf(i.wrapping_sub(1)) == "!" {
                    continue;
                }
                if tok.text == "drop" {
                    if let Some(Tree::Group(args)) = stmt.get(i + 1) {
                        let mut names = Vec::new();
                        words_of(&args.trees, &mut names);
                        active.retain(|g| !names.contains(&g.name));
                    }
                    continue;
                }
                if BLOCKING_CALLS.contains(&tok.text.as_str()) {
                    if let Some(guard) = active.last() {
                        out.push(Finding {
                            rule: "serve-concurrency",
                            path: file.path.clone(),
                            line: tok.line,
                            message: format!(
                                "blocking `{}` while a Mutex guard (taken on line {}) is \
                                 live; shrink the guard scope (clone/move what you need, \
                                 or drop the guard) before blocking",
                                tok.text, guard.line
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Scan a block's statements, activating guards bound by `let` for the
/// remainder of the block only.
fn scan_serve_block(
    file: &SourceFile,
    trees: &[Tree],
    guard_fns: &BTreeSet<String>,
    active: &mut Vec<LiveGuard>,
    out: &mut Vec<Finding>,
) {
    let entry = active.len();
    for stmt in syntax::statements(trees) {
        scan_serve_stmt(file, stmt, guard_fns, active, out);
        // The binding `let` may trail an earlier block statement in the
        // same splitter statement (`if … {…} let g = …;`); parse from the
        // last top-level `let`.
        let last_let = stmt
            .iter()
            .rposition(|t| matches!(t, Tree::Leaf(tok) if tok.text == "let"));
        let binding = last_let
            .and_then(|i| syntax::LetBinding::from_statement(stmt.get(i..).unwrap_or_default()));
        if let Some(b) = binding {
            if produces_guard(b.init.split_whitespace().map(str::to_owned), guard_fns) {
                active.push(LiveGuard {
                    name: b.name,
                    line: b.line,
                });
            }
        }
    }
    active.truncate(entry);
}

/// `serve-concurrency`: the daemon's shards and HTTP endpoints share state
/// behind mutexes, and its queues sit between a socket thread and the
/// analyzers. Two structural rules keep that sound: a Mutex guard must
/// never be held across a call that can block (socket I/O, channel
/// `recv`/`send`, thread `join`) — that serializes unrelated readers and
/// can deadlock shutdown — and every channel/queue must be bounded at its
/// construction site so a slow consumer applies back-pressure instead of
/// growing the heap without bound.
pub fn serve_concurrency(file: &SourceFile) -> Vec<Finding> {
    let syntax_tree = Syntax::parse(file);
    let mut out = Vec::new();
    let not_test = |line: usize| {
        !line
            .checked_sub(1)
            .and_then(|i| file.lines.get(i))
            .is_some_and(|l| l.in_test)
    };
    let mut found = Vec::new();
    syntax::calls(&syntax_tree.trees, &mut found);
    for c in &found {
        if !not_test(c.line) {
            continue;
        }
        if c.callee == "channel" {
            out.push(Finding {
                rule: "serve-concurrency",
                path: file.path.clone(),
                line: c.line,
                message: "unbounded `channel()`; use `sync_channel` with an explicit \
                          capacity so producers back-pressure instead of buffering \
                          without bound"
                    .to_owned(),
            });
        }
        if c.callee == "new" && c.qualifier == "VecDeque" {
            out.push(Finding {
                rule: "serve-concurrency",
                path: file.path.clone(),
                line: c.line,
                message: "unbounded `VecDeque::new()`; use `with_capacity` plus explicit \
                          eviction so queues stay bounded"
                    .to_owned(),
            });
        }
    }
    let guard_fns: BTreeSet<String> = syntax_tree
        .fns()
        .iter()
        .filter(|f| f.return_type().contains("MutexGuard"))
        .map(|f| f.name.clone())
        .collect();
    for f in syntax_tree.fns() {
        let Some(body) = f.body else { continue };
        let mut active: Vec<LiveGuard> = Vec::new();
        scan_serve_block(file, &body.trees, &guard_fns, &mut active, &mut out);
    }
    out
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // fixture access; a miss is a test failure
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("fixture.rs", src)
    }

    // -- port-boundary ----------------------------------------------------

    #[test]
    fn port_boundary_fires_once_per_line_on_raw_parser_calls() {
        let f = file(
            "let (r, e) = raslog::ingest::parse_log_bytes(data, threads);\n\
             let j = joblog::parse_line(text)?;\n\
             let ok = bgp_ports::bgp::decode_ras(data, threads);\n",
        );
        let found = port_boundary(&f);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].line, 1, "overlapping patterns collapse to one");
        assert_eq!(found[1].line, 2);
        assert!(found[0].message.contains("bgp_ports"));
    }

    #[test]
    fn port_boundary_is_quiet_on_test_code_and_formatting() {
        let quiet =
            file("#[cfg(test)]\nmod tests {\n    fn t() { raslog::parse_line(\"x\"); }\n}\n");
        assert!(port_boundary(&quiet).is_empty());
        // The format side of the codec is not a parser entry point.
        let fmt = file("let s = raslog::format_record(&rec);\n");
        assert!(port_boundary(&fmt).is_empty());
    }

    // -- determinism ------------------------------------------------------

    #[test]
    fn determinism_fires_on_ambient_clock_and_rng() {
        let f = file("let t = std::time::SystemTime::now();\nlet r = rand::rng();\n");
        let found = determinism(&f);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].line, 1);
        assert!(found[0].message.contains("wall-clock"));
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn determinism_is_quiet_on_seeded_code_and_test_code() {
        let clean = file("let rng = SmallRng::seed_from_u64(seed);\n");
        assert!(determinism(&clean).is_empty());
        let test_only = file("#[cfg(test)]\nmod tests {\n let t = Instant::now();\n}\n");
        assert!(determinism(&test_only).is_empty());
    }

    // -- no-panic ---------------------------------------------------------

    #[test]
    fn no_panic_fires_on_unwrap_expect_panic() {
        let f = file("a.unwrap();\nb.expect(\"msg\");\npanic!(\"boom\");\n");
        let rules: Vec<usize> = no_panic(&f).iter().map(|f| f.line).collect();
        assert_eq!(rules, vec![1, 2, 3]);
    }

    #[test]
    fn no_panic_is_quiet_in_tests_strings_and_comments() {
        let f = file(
            "#[cfg(test)]\nmod tests {\n x.unwrap();\n}\n\
             let s = \"don't .unwrap() here\"; // .unwrap() in prose\n",
        );
        assert!(no_panic(&f).is_empty());
    }

    // -- severity-wildcard ------------------------------------------------

    #[test]
    fn severity_wildcard_fires_on_wildcard_arm() {
        let f = file(
            "match sev {\n\
                 Severity::Fatal => 1,\n\
                 _ => 0,\n\
             }\n",
        );
        let found = severity_wildcard(&f);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1, "finding points at the match itself");
    }

    #[test]
    fn severity_wildcard_is_quiet_when_exhaustive_or_unrelated() {
        let exhaustive = file(
            "match sev {\n\
                 Severity::Fatal => 1,\n\
                 Severity::Error | Severity::Warn => 2,\n\
                 Severity::Info | Severity::Debug | Severity::Trace => 3,\n\
             }\n",
        );
        assert!(severity_wildcard(&exhaustive).is_empty());
        let unrelated = file("match n {\n 0 => a,\n _ => b,\n}\n");
        assert!(severity_wildcard(&unrelated).is_empty());
    }

    // -- errcode-catalog --------------------------------------------------

    fn catalog_fixture() -> SourceFile {
        SourceFile::parse(
            "crates/raslog/src/catalog.rs",
            "(\"_bgp_err_ddr_single\", C::Kernel, S::Warn),\n\
             (\"_bgp_err_torus_retrans\", C::Kernel, S::Error),\n",
        )
    }

    #[test]
    fn errcode_catalog_fires_on_unknown_code() {
        let cat = catalog_fixture();
        let classify = file("map(\"_bgp_err_ddr_single\");\nmap(\"_bgp_err_no_such\");\n");
        let found = errcode_catalog(&cat, &[&classify]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        assert!(found[0].message.contains("_bgp_err_no_such"));
    }

    #[test]
    fn errcode_catalog_is_quiet_on_known_codes_and_non_codes() {
        let cat = catalog_fixture();
        let classify = file("map(\"_bgp_err_torus_retrans\");\nlabel(\"PALOMINO_N\");\n");
        assert!(errcode_catalog(&cat, &[&classify]).is_empty());
    }

    #[test]
    fn errcode_catalog_reports_empty_catalog_as_format_drift() {
        let cat = file("// nothing shaped like an entry\n");
        let found = errcode_catalog(&cat, &[]);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("format changed"));
    }

    #[test]
    fn errcode_shapes() {
        assert!(looks_like_errcode("_bgp_err_x"));
        assert!(!looks_like_errcode("_bgp_"));
        assert!(!looks_like_errcode("_bgp_ERR"));
        assert!(!looks_like_errcode("BULK_POWER_FATAL"));
        assert!(!looks_like_errcode("plain_ident"));
    }

    // -- crate-attrs ------------------------------------------------------

    #[test]
    fn crate_attrs_fires_per_missing_attribute() {
        let f = file("#![forbid(unsafe_code)]\npub mod x;\n");
        let found = crate_attrs(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("missing_docs"));
    }

    #[test]
    fn crate_attrs_is_quiet_when_both_present() {
        let f = file("#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n");
        assert!(crate_attrs(&f).is_empty());
    }

    #[test]
    fn crate_attrs_accepts_deny_unsafe_on_allowlisted_roots_only() {
        let src = "#![deny(unsafe_code)]\n#![warn(missing_docs)]\n";
        let listed = SourceFile::parse("crates/bgp-model/src/lib.rs", src);
        assert!(
            crate_attrs(&listed).is_empty(),
            "bgp-model's sanctioned mmap module needs the deny downgrade"
        );
        let unlisted = SourceFile::parse("crates/core/src/lib.rs", src);
        let found = crate_attrs(&unlisted);
        assert_eq!(found.len(), 1, "everyone else still needs forbid");
        assert!(found[0].message.contains("forbid(unsafe_code)"));
    }

    // -- simd-fallback ----------------------------------------------------

    #[test]
    fn simd_fallback_fires_when_scalar_twin_is_missing() {
        let f = file(
            "/// SWAR scan over the haystack.\n\
             pub fn find_x(h: &[u8]) -> Option<usize> { None }\n",
        );
        let found = simd_fallback(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`find_x_scalar`"));
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn simd_fallback_fires_when_twin_is_untested() {
        let f = file(
            "/// SIMD delimiter scan.\n\
             pub fn scan(h: &[u8]) -> usize { 0 }\n\
             /// Scalar reference.\n\
             pub fn scan_scalar(h: &[u8]) -> usize { 0 }\n",
        );
        let found = simd_fallback(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("never referenced from test code"));
    }

    #[test]
    fn simd_fallback_is_quiet_when_twin_is_tested() {
        let f = file(
            "/// SWAR scan, eight bytes per step.\n\
             #[inline]\n\
             pub fn scan(h: &[u8]) -> usize { 0 }\n\
             /// Scalar reference; the SWAR scan must agree with it.\n\
             pub fn scan_scalar(h: &[u8]) -> usize { 0 }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn agree() { assert_eq!(scan(b\"x\"), scan_scalar(b\"x\")); }\n\
             }\n",
        );
        assert!(simd_fallback(&f).is_empty());
    }

    #[test]
    fn simd_fallback_ignores_undocumented_and_plain_functions() {
        let f = file(
            "/// Splits lines. Nothing vectorized about it.\n\
             pub fn line_split(h: &[u8]) -> usize { 0 }\n\
             fn helper() {}\n",
        );
        assert!(simd_fallback(&f).is_empty());
    }

    // -- stage-contract ---------------------------------------------------

    #[test]
    fn stage_contract_fires_on_undocumented_stage() {
        let f = file("/// Filters records.\npub fn apply(&self) -> Vec<R> {}\n");
        let found = stage_contract(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`apply`"));
    }

    #[test]
    fn stage_contract_sees_contract_doc_above_attributes() {
        let f = file(
            "/// Contract: output is a subsequence of input.\n\
             /// More prose.\n\
             #[must_use]\n\
             pub fn apply(&self) -> Vec<R> {}\n\
             pub fn helper() {}\n",
        );
        assert!(stage_contract(&f).is_empty(), "helper is not a stage fn");
    }

    #[test]
    fn stage_contract_fires_on_undocumented_stage_impl() {
        let f = file(
            "/// A pass.\n\
             struct FooStage;\n\
             \n\
             impl Stage for FooStage {\n\
             }\n",
        );
        let found = stage_contract(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`FooStage`"));
    }

    #[test]
    fn stage_contract_accepts_documented_stage_impl() {
        let f = file(
            "/// Contract: dedups the shard; output count <= input count.\n\
             struct FooStage;\n\
             \n\
             impl Stage for FooStage {\n\
             }\n",
        );
        assert!(
            stage_contract(&f).is_empty(),
            "contract doc above the struct declaration covers the impl"
        );
    }

    // -- snapshot-version -------------------------------------------------

    fn record_fixture() -> SourceFile {
        SourceFile::parse(
            "crates/raslog/src/record.rs",
            "/// One record.\n\
             pub struct RasRecord {\n\
                 /// Sequence number.\n\
                 pub recid: u64,\n\
                 /// Where.\n\
                 pub location: Location,\n\
             }\n",
        )
    }

    fn snapshot_fixture(fingerprint: u64) -> SourceFile {
        SourceFile::parse(
            "crates/raslog/src/snapshot.rs",
            &format!(
                "pub const FORMAT_VERSION: u32 = 1;\n\
                 pub const LAYOUT_FINGERPRINT: u64 = {fingerprint:#018x};\n"
            ),
        )
    }

    #[test]
    fn snapshot_version_is_quiet_when_fingerprint_matches() {
        let expected = fnv1a_64(b"recid:u64;location:Location");
        let found = snapshot_version(&record_fixture(), "RasRecord", &snapshot_fixture(expected));
        assert!(found.is_empty(), "unexpected findings: {found:?}");
    }

    #[test]
    fn snapshot_version_fires_on_layout_drift() {
        let stale = fnv1a_64(b"recid:u64"); // as if `location` was added later
        let found = snapshot_version(&record_fixture(), "RasRecord", &snapshot_fixture(stale));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2, "finding points at LAYOUT_FINGERPRINT");
        assert!(found[0].message.contains("bump FORMAT_VERSION"));
    }

    #[test]
    fn snapshot_version_fires_on_missing_consts() {
        let expected = fnv1a_64(b"recid:u64;location:Location");
        let no_consts = file("pub fn unrelated() {}\n");
        let found = snapshot_version(&record_fixture(), "RasRecord", &no_consts);
        assert_eq!(found.len(), 2);
        assert!(found[0].message.contains("LAYOUT_FINGERPRINT"));
        assert!(found[1].message.contains("FORMAT_VERSION"));
        let _ = expected;
    }

    #[test]
    fn snapshot_version_reports_unrecognizable_struct() {
        let empty = file("// no struct here\n");
        let found = snapshot_version(&empty, "RasRecord", &snapshot_fixture(0));
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("format changed"));
    }

    #[test]
    fn record_fields_normalize_types_and_skip_private() {
        let f = file(
            "pub struct R {\n\
                 pub a: Vec< u8 >,\n\
                 b: usize,\n\
                 pub c: u64,\n\
             }\n\
             pub struct Other {\n\
                 pub d: u8,\n\
             }\n",
        );
        let fields = record_fields(&f, "R");
        assert_eq!(
            fields,
            vec![
                ("a".to_owned(), "Vec<u8>".to_owned()),
                ("c".to_owned(), "u64".to_owned())
            ]
        );
    }

    #[test]
    fn pinned_fingerprints_match_the_live_structs() {
        // The constants shipped in raslog/joblog `snapshot.rs` were computed
        // from these exact field lists; if this test fails the helper
        // changed, not the structs.
        assert_eq!(
            fnv1a_64(
                b"recid:u64;event_time:Timestamp;location:Location;\
                  errcode:ErrCode;severity:Severity"
            ),
            0x37f1_fcf3_b1a3_e2e7u64
        );
    }

    // -- dep-versions -----------------------------------------------------

    #[test]
    fn dep_versions_fires_on_duplicate_major() {
        let lock = "[[package]]\nname = \"syn\"\nversion = \"1.0.3\"\n\n\
                    [[package]]\nname = \"syn\"\nversion = \"2.0.1\"\n";
        let found = dup_major_versions(lock);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`syn`"));
    }

    #[test]
    fn dep_versions_treats_zero_x_minor_as_the_compat_axis() {
        let two_minors = "[[package]]\nname = \"rand\"\nversion = \"0.8.5\"\n\n\
                          [[package]]\nname = \"rand\"\nversion = \"0.9.0\"\n";
        assert_eq!(dup_major_versions(two_minors).len(), 1);
        let patch_only = "[[package]]\nname = \"rand\"\nversion = \"0.8.4\"\n\n\
                          [[package]]\nname = \"rand\"\nversion = \"0.8.5\"\n";
        assert!(dup_major_versions(patch_only).is_empty());
    }

    // -- allow-syntax -----------------------------------------------------

    #[test]
    fn allow_syntax_fires_on_missing_justification() {
        let f = file("x(); // xtask-allow(no-panic)\n");
        let found = allow_syntax(&f);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn allow_syntax_is_quiet_on_justified_use() {
        let f = file("x(); // xtask-allow(no-panic): poisoned mutex is fatal by design\n");
        assert!(allow_syntax(&f).is_empty());
    }

    // -- stage-deps -------------------------------------------------------

    /// A minimal stage file: three variants wired `Causal ← Matching ←
    /// Burst`, with `deps` arms and `impl Stage` blocks shaped like the real
    /// `crates/core/src/stage.rs`. The closure builds the file from parts so
    /// each test can vary one aspect (a deps arm, a read, a doc line).
    fn stage_fixture(burst_deps: &str, burst_read: &str, burst_doc: &str) -> SourceFile {
        let src = format!(
            "pub enum StageId {{ Causal = 0, Matching = 1, Burst = 2 }}\n\
             impl StageId {{\n\
                 pub fn deps(self) -> &'static [StageId] {{\n\
                     match self {{\n\
                         StageId::Causal => &[],\n\
                         StageId::Matching => &[StageId::Causal],\n\
                         StageId::Burst => {burst_deps},\n\
                     }}\n\
                 }}\n\
             }}\n\
             /// Reads: state{{}}; ctx{{}}\n\
             pub struct CausalStage;\n\
             impl Stage for CausalStage {{\n\
                 fn id(&self) -> StageId {{ StageId::Causal }}\n\
                 fn run(&self, ctx: &AnalysisContext<'_>, state: &mut PipelineState) {{}}\n\
             }}\n\
             /// Reads: state{{events}}; ctx{{}}\n\
             pub struct MatchingStage;\n\
             impl Stage for MatchingStage {{\n\
                 fn id(&self) -> StageId {{ StageId::Matching }}\n\
                 fn run(&self, ctx: &AnalysisContext<'_>, state: &mut PipelineState) {{\n\
                     let e = state.events();\n\
                 }}\n\
             }}\n\
             {burst_doc}\n\
             pub struct BurstStage;\n\
             impl Stage for BurstStage {{\n\
                 fn id(&self) -> StageId {{ StageId::Burst }}\n\
                 fn run(&self, ctx: &AnalysisContext<'_>, state: &mut PipelineState) {{\n\
                     {burst_read}\n\
                 }}\n\
             }}\n"
        );
        SourceFile::parse("stage_fixture.rs", &src)
    }

    fn ctx_fixture() -> SourceFile {
        file("impl<'a> AnalysisContext<'a> {\n    pub fn span(&self) -> u64 { 0 }\n}\n")
    }

    #[test]
    fn stage_deps_is_quiet_on_a_consistent_graph() {
        let stage = stage_fixture(
            "&[StageId::Matching]",
            "let m = state.matching();",
            "/// Reads: state{matching}; ctx{}",
        );
        let ctx = ctx_fixture();
        let found = stage_deps(&stage, &ctx, &[&stage]);
        assert!(found.is_empty(), "unexpected findings: {found:?}");
    }

    #[test]
    fn stage_deps_fires_on_undeclared_dependency() {
        // Burst reads the Matching product but declares no deps at all.
        let stage = stage_fixture(
            "&[]",
            "let m = state.matching();",
            "/// Reads: state{matching}; ctx{}",
        );
        let ctx = ctx_fixture();
        let found = stage_deps(&stage, &ctx, &[&stage]);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.message.contains("undeclared dependency"))
            .collect();
        assert_eq!(hits.len(), 1, "findings: {found:?}");
        assert!(hits[0].message.contains("Matching"));
        assert!(hits[0].message.contains("Burst"));
    }

    #[test]
    fn stage_deps_fires_on_stale_over_declared_dependency() {
        // Burst declares Causal on top of Matching, but Matching's closure
        // already covers everything Burst reads.
        let stage = stage_fixture(
            "&[StageId::Causal, StageId::Matching]",
            "let m = state.matching();",
            "/// Reads: state{matching}; ctx{}",
        );
        let ctx = ctx_fixture();
        let found = stage_deps(&stage, &ctx, &[&stage]);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.message.contains("stale dependency"))
            .collect();
        assert_eq!(hits.len(), 1, "findings: {found:?}");
        assert!(hits[0].message.contains("Causal"));
    }

    #[test]
    fn stage_deps_fires_on_missing_or_stale_reads_doc() {
        let missing = stage_fixture(
            "&[StageId::Matching]",
            "let m = state.matching();",
            "// not a doc line",
        );
        let ctx = ctx_fixture();
        let found = stage_deps(&missing, &ctx, &[&missing]);
        assert!(
            found.iter().any(|f| f.message.contains("no `/// Reads:`")),
            "findings: {found:?}"
        );
        let stale = stage_fixture(
            "&[StageId::Matching]",
            "let m = state.matching();",
            "/// Reads: state{events}; ctx{}",
        );
        let found = stage_deps(&stale, &ctx, &[&stale]);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.message.contains("stale `/// Reads:`"))
            .collect();
        assert_eq!(hits.len(), 1, "findings: {found:?}");
        assert!(hits[0].message.contains("state{matching}"));
    }

    #[test]
    fn stage_deps_fires_on_unknown_accessor_and_missing_impl() {
        let stage = stage_fixture(
            "&[StageId::Matching]",
            "let m = state.mystery_product();",
            "/// Reads: state{mystery_product}; ctx{}",
        );
        let ctx = ctx_fixture();
        let found = stage_deps(&stage, &ctx, &[&stage]);
        assert!(
            found
                .iter()
                .any(|f| f.message.contains("unknown PipelineState accessor")),
            "findings: {found:?}"
        );
        // Drop the Burst impl entirely: its variant goes unimplemented.
        let src = "pub enum StageId { Causal = 0 }\n\
                   impl StageId {\n\
                       pub fn deps(self) -> &'static [StageId] {\n\
                           match self { StageId::Causal => &[] }\n\
                       }\n\
                   }\n";
        let bare = SourceFile::parse("stage_fixture.rs", src);
        let found = stage_deps(&bare, &ctx, &[&bare]);
        assert!(
            found.iter().any(|f| f.message.contains("no `impl Stage`")),
            "findings: {found:?}"
        );
    }

    // -- parallel-determinism ---------------------------------------------

    #[test]
    fn parallel_determinism_fires_on_order_sensitive_hash_iteration() {
        let f = file(
            "fn kernel(m: &HashMap<u64, u64>) -> u64 {\n\
                 let first = m.keys().copied().next();\n\
                 let v: Vec<u64> = m.values().copied().collect();\n\
                 let s: f64 = m.values().map(|v| *v as f64).sum();\n\
                 0\n\
             }\n",
        );
        let found = parallel_determinism(&f, &HashModel::default(), true);
        assert_eq!(found.len(), 3, "findings: {found:?}");
        assert!(found.iter().any(|x| x.message.contains("`next`")));
        assert!(found.iter().any(|x| x.message.contains("never sorted")));
        assert!(found.iter().any(|x| x.message.contains("floating-point")));
    }

    #[test]
    fn parallel_determinism_is_quiet_on_restored_order() {
        let f = file(
            "fn kernel(m: &HashMap<u64, u64>, s: &HashSet<u64>) -> u64 {\n\
                 let rekeyed: HashMap<u64, u64> = m.iter().map(|(k, v)| (*k, *v)).collect();\n\
                 let fish = m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, u64>>();\n\
                 let mut sorted: Vec<u64> = s.iter().copied().collect();\n\
                 sorted.sort_unstable();\n\
                 let n = s.iter().filter(|x| **x > 0).count();\n\
                 let total: u64 = m.values().sum();\n\
                 n as u64 + total\n\
             }\n",
        );
        let found = parallel_determinism(&f, &HashModel::default(), true);
        assert!(found.is_empty(), "unexpected findings: {found:?}");
    }

    #[test]
    fn parallel_determinism_tracks_hash_bindings_and_fields() {
        // Locals bound from hash constructors and struct fields declared
        // hash-typed elsewhere both count as hash receivers.
        let decl = file("struct Index {\n    by_job: HashMap<u64, u64>,\n}\n");
        let model = stagegraph::hash_model(&[&decl]);
        let f = file(
            "fn go(ix: &Index) -> Option<u64> {\n\
                 let local = HashMap::new();\n\
                 let a = local.keys().last();\n\
                 by_job.values().copied().find(|v| *v > 0)\n\
             }\n",
        );
        let found = parallel_determinism(&f, &model, true);
        assert_eq!(found.len(), 2, "findings: {found:?}");
    }

    #[test]
    fn parallel_determinism_fires_on_unsanctioned_spawn() {
        let f = file("fn go() {\n    std::thread::spawn(move || work());\n}\n");
        let found = parallel_determinism(&f, &HashModel::default(), false);
        assert_eq!(found.len(), 1, "findings: {found:?}");
        assert!(found[0].message.contains("sanctioned"));
        assert!(parallel_determinism(&f, &HashModel::default(), true).is_empty());
    }

    #[test]
    fn parallel_determinism_suppression_is_line_addressable() {
        let f = file(
            "fn kernel(m: &HashMap<u64, u64>) -> Option<u64> {\n\
                 // xtask-allow(parallel-determinism): single-chunk path, order cannot vary\n\
                 m.values().copied().next()\n\
             }\n",
        );
        let found = parallel_determinism(&f, &HashModel::default(), true);
        assert_eq!(found.len(), 1);
        assert!(f.is_allowed("parallel-determinism", found[0].line));
    }

    // -- serve-concurrency ------------------------------------------------

    #[test]
    fn serve_concurrency_fires_on_guard_across_blocking_call() {
        let f = file(
            "fn pump(state: &Mutex<u64>, rx: &Receiver<u64>) {\n\
                 let mut guard = state.lock().unwrap_or_else(|p| p.into_inner());\n\
                 let next = rx.recv();\n\
             }\n",
        );
        let found = serve_concurrency(&f);
        assert_eq!(found.len(), 1, "findings: {found:?}");
        assert!(found[0].message.contains("`recv`"));
        assert!(found[0].message.contains("line 2"));
    }

    #[test]
    fn serve_concurrency_respects_guard_scope_and_drop() {
        let f = file(
            "fn pump(state: &Mutex<u64>, rx: &Receiver<u64>) {\n\
                 {\n\
                     let g = state.lock().unwrap_or_else(|p| p.into_inner());\n\
                 }\n\
                 let a = rx.recv();\n\
                 let g = state.lock().unwrap_or_else(|p| p.into_inner());\n\
                 drop(g);\n\
                 let b = rx.recv();\n\
             }\n",
        );
        assert!(serve_concurrency(&f).is_empty());
    }

    #[test]
    fn serve_concurrency_sees_scoped_guards_and_helper_fns() {
        // `if let` guard expressions and local helpers returning a guard
        // both put a guard in scope for the attached block.
        let f = file(
            "fn shard(&self) -> MutexGuard<'_, u64> {\n\
                 self.inner.lock().unwrap_or_else(|p| p.into_inner())\n\
             }\n\
             fn pump(&self, rx: &Receiver<u64>) {\n\
                 if let Ok(g) = self.inner.lock() {\n\
                     let x = rx.recv();\n\
                 }\n\
                 let s = self.shard();\n\
                 let y = rx.recv();\n\
             }\n",
        );
        let found = serve_concurrency(&f);
        assert_eq!(found.len(), 2, "findings: {found:?}");
    }

    #[test]
    fn serve_concurrency_ignores_spawned_closures() {
        // The spawned closure runs on another thread without our guards.
        let f = file(
            "fn pump(state: &Mutex<u64>, rx: Receiver<u64>) {\n\
                 let g = state.lock().unwrap_or_else(|p| p.into_inner());\n\
                 spawn(move || {\n\
                     let x = rx.recv();\n\
                 });\n\
             }\n",
        );
        assert!(serve_concurrency(&f).is_empty());
    }

    // -- seeded violations in real workspace files ------------------------
    //
    // Each family's acceptance proof: load the real source, inject the
    // defect the rule exists to catch, and assert it is caught — and that
    // the unmutated file stays clean, so the lint's green run means
    // something.

    /// A real workspace source, parsed with its repo-relative path.
    fn real(rel: &str) -> SourceFile {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let text =
            std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        SourceFile::parse(rel, &text)
    }

    /// Every real source under `crates/core/src` — the interprocedural
    /// ctx-read resolution needs the whole crate, not just stage.rs.
    fn core_sources() -> Vec<SourceFile> {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        crate::workspace::library_sources(&root)
            .expect("workspace sources")
            .into_iter()
            .filter(|f| f.path.starts_with("crates/core/src"))
            .collect()
    }

    /// `real(rel)` with `from` replaced by `to` (must occur exactly once).
    fn mutated(rel: &str, from: &str, to: &str) -> SourceFile {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let text =
            std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        assert_eq!(
            text.matches(from).count(),
            1,
            "mutation anchor `{from}` in {rel}"
        );
        SourceFile::parse(rel, &text.replace(from, to))
    }

    #[test]
    fn seeded_dropped_stage_dep_is_detected() {
        // Interruption's declared dependency becomes Causal: its reads of
        // the matching and root-cause products are now undeclared, so the
        // wave executor could schedule it one wave too early.
        let stage = mutated(
            "crates/core/src/stage.rs",
            "StageId::Interruption => &[StageId::RootCause],",
            "StageId::Interruption => &[StageId::Causal],",
        );
        let context = real("crates/core/src/context.rs");
        let core = core_sources();
        let mut files: Vec<&SourceFile> = core.iter().collect();
        files.push(&stage);
        let found = stage_deps(&stage, &context, &files);
        let undeclared: Vec<_> = found
            .iter()
            .filter(|f| f.message.contains("undeclared dependency"))
            .collect();
        assert!(
            undeclared.iter().any(|f| f.message.contains("RootCause")),
            "findings: {found:?}"
        );
        assert!(
            undeclared.iter().any(|f| f.message.contains("Matching")),
            "findings: {found:?}"
        );
    }

    #[test]
    fn seeded_redundant_stage_dep_is_detected() {
        let stage = mutated(
            "crates/core/src/stage.rs",
            "StageId::Vulnerability => &[StageId::RootCause, StageId::Midplane],",
            "StageId::Vulnerability => &[StageId::RootCause, StageId::Midplane, StageId::Causal],",
        );
        let context = real("crates/core/src/context.rs");
        let core = core_sources();
        let mut files: Vec<&SourceFile> = core.iter().collect();
        files.push(&stage);
        let found = stage_deps(&stage, &context, &files);
        let stale: Vec<_> = found
            .iter()
            .filter(|f| f.message.contains("stale dependency"))
            .collect();
        assert_eq!(stale.len(), 1, "findings: {found:?}");
        assert!(stale[0].message.contains("Causal"));
    }

    #[test]
    fn real_stage_graph_is_clean() {
        let stage = real("crates/core/src/stage.rs");
        let context = real("crates/core/src/context.rs");
        let core = core_sources();
        let mut files: Vec<&SourceFile> = core.iter().collect();
        files.push(&stage);
        let found = stage_deps(&stage, &context, &files);
        assert!(found.is_empty(), "findings: {found:?}");
    }

    #[test]
    fn seeded_hash_order_reduction_is_detected() {
        // Drop the deterministic re-ordering of the app-error victims: the
        // collected Vec inherits HashMap iteration order.
        let rel = "crates/core/src/analysis/vulnerability.rs";
        let f = mutated(rel, "app_jobs.sort_unstable_by_key(|j| j.job_id);", "");
        let model = stagegraph::hash_model(&[&f]);
        let found = parallel_determinism(&f, &model, false);
        assert!(
            found
                .iter()
                .any(|x| x.message.contains("never sorted") && x.message.contains("causes")),
            "findings: {found:?}"
        );
        // The unmutated kernel is clean under the same model.
        let clean = real(rel);
        let model = stagegraph::hash_model(&[&clean]);
        assert!(parallel_determinism(&clean, &model, false).is_empty());
    }

    #[test]
    fn seeded_guard_across_blocking_call_is_detected() {
        // `close` joins the workers while still holding the senders lock —
        // the exact shutdown deadlock shape the rule exists for.
        let rel = "crates/serve/src/shard.rs";
        let f = mutated(
            rel,
            "*guard = None;",
            "*guard = None;\n        self.join();",
        );
        let found = serve_concurrency(&f);
        assert!(
            found.iter().any(|x| x.message.contains("`join`")),
            "findings: {found:?}"
        );
        assert!(serve_concurrency(&real(rel)).is_empty());
    }

    #[test]
    fn seeded_unbounded_channel_is_detected() {
        let rel = "crates/serve/src/shard.rs";
        let f = mutated(
            rel,
            "sync_channel::<RasRecord>(cfg.queue_capacity.max(1))",
            "channel()",
        );
        let found = serve_concurrency(&f);
        assert_eq!(found.len(), 1, "findings: {found:?}");
        assert!(found[0].message.contains("sync_channel"));
    }

    #[test]
    fn serve_concurrency_fires_on_unbounded_queues() {
        let f = file(
            "fn build() {\n\
                 let (tx, rx) = channel();\n\
                 let q: VecDeque<u64> = VecDeque::new();\n\
             }\n",
        );
        let found = serve_concurrency(&f);
        assert_eq!(found.len(), 2, "findings: {found:?}");
        assert!(found[0].message.contains("sync_channel"));
        assert!(found[1].message.contains("with_capacity"));
        let bounded = file(
            "fn build() {\n\
                 let (tx, rx) = sync_channel(64);\n\
                 let q = VecDeque::with_capacity(64);\n\
             }\n",
        );
        assert!(serve_concurrency(&bounded).is_empty());
    }
}
