//! A lightweight lexical model of a Rust source file.
//!
//! The domain lints don't need full parsing — they need to know, line by
//! line, (a) what the code says once comments and string contents are out of
//! the way, (b) which string literals appear, (c) whether the line sits
//! inside `#[cfg(test)]` code, and (d) whether a finding on the line has been
//! suppressed with a justification comment. [`SourceFile::parse`] computes
//! all four in two passes: a character-level lexer that splits each line into
//! code / strings / comment text, then a line-level pass that tracks brace
//! depth to delimit `#[cfg(test)]` regions.
//!
//! The lexer understands line and (nested) block comments, plain and raw
//! string literals, character literals, and lifetimes. It is deliberately
//! not a parser: pathological token sequences can fool it, but on `rustfmt`ed
//! code — which `cargo xtask lint` requires anyway via CI — it is exact.

/// One analyzed line of source.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments removed and string-literal contents blanked
    /// (quotes are kept, so `("x", C::A)` becomes `("", C::A)`).
    pub code: String,
    /// String literals that *start* on this line, in order of appearance.
    pub strings: Vec<String>,
    /// Comment text on this line (without the `//`, `/*`, `*/` markers).
    pub comment: String,
    /// True when the line is inside `#[cfg(test)]`-gated code.
    pub in_test: bool,
    /// Lint rules suppressed on this line via `xtask-allow`.
    pub allows: Vec<String>,
    /// An `xtask-allow` on this line was malformed (missing justification).
    pub malformed_allow: bool,
}

/// A parsed source file: path plus analyzed lines (0-indexed internally;
/// findings report 1-indexed line numbers).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, used in finding reports.
    pub path: String,
    /// Analyzed lines.
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl SourceFile {
    /// Analyze `text` as the contents of `path`.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let mut lines = lex(text);
        mark_test_regions(&mut lines);
        attach_allows(&mut lines);
        SourceFile {
            path: path.to_owned(),
            lines,
        }
    }

    /// Iterate `(1-based line number, line)` pairs.
    pub fn numbered(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines.iter().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// True if a finding with `rule` on 1-based line `lineno` is suppressed.
    pub fn is_allowed(&self, rule: &str, lineno: usize) -> bool {
        lineno
            .checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .is_some_and(|l| l.allows.iter().any(|a| a == rule))
    }
}

/// Character-level pass: split every physical line into code, strings, and
/// comment text.
fn lex(text: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    let mut line = Line::default();
    let mut state = LexState::Code;
    let mut cur_string = String::new();
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if c == '\r' && chars.peek() == Some(&'\n') {
            // CRLF line ending: the `\r` is not code (a trailing `\r` in
            // `code` breaks every `ends_with`/`trim` check downstream).
            continue;
        }
        if c == '\n' {
            if state == LexState::LineComment {
                state = LexState::Code;
            }
            if state == LexState::Str {
                // Plain string continuing across lines: keep collecting.
                cur_string.push('\n');
            }
            if let LexState::RawStr(_) = state {
                cur_string.push('\n');
            }
            out.push(std::mem::take(&mut line));
            continue;
        }
        match state {
            LexState::Code => match c {
                '/' => match chars.peek() {
                    Some('/') => {
                        chars.next();
                        state = LexState::LineComment;
                    }
                    Some('*') => {
                        chars.next();
                        state = LexState::BlockComment(1);
                    }
                    _ => line.code.push('/'),
                },
                '"' => {
                    line.code.push('"');
                    cur_string.clear();
                    state = LexState::Str;
                }
                'r' => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0u32;
                    let mut lookahead = chars.clone();
                    while lookahead.peek() == Some(&'#') {
                        lookahead.next();
                        hashes += 1;
                    }
                    if lookahead.peek() == Some(&'"') {
                        for _ in 0..hashes {
                            chars.next();
                        }
                        chars.next(); // the quote
                        line.code.push('"');
                        cur_string.clear();
                        state = LexState::RawStr(hashes);
                    } else {
                        line.code.push('r');
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a char literal closes with a
                    // quote after one (possibly escaped) character.
                    let mut lookahead = chars.clone();
                    match lookahead.next() {
                        Some('\\') => {
                            // Escaped char literal: the backslash is followed
                            // by exactly one escaped character (which may be a
                            // quote or another backslash), then plain chars up
                            // to the closing quote (`\x41`, `\u{..}`).
                            line.code.push('\'');
                            chars.next(); // backslash
                            chars.next(); // the escaped character
                            for c2 in chars.by_ref() {
                                if c2 == '\'' {
                                    break;
                                }
                            }
                            line.code.push('\'');
                        }
                        Some(inner) if lookahead.next() == Some('\'') && inner != '\'' => {
                            chars.next();
                            chars.next();
                            line.code.push_str("' '");
                        }
                        _ => line.code.push('\''), // lifetime
                    }
                }
                _ => line.code.push(c),
            },
            LexState::LineComment => line.comment.push(c),
            LexState::BlockComment(depth) => match c {
                '*' if chars.peek() == Some(&'/') => {
                    chars.next();
                    if depth == 1 {
                        state = LexState::Code;
                    } else {
                        state = LexState::BlockComment(depth - 1);
                    }
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    state = LexState::BlockComment(depth + 1);
                }
                _ => line.comment.push(c),
            },
            LexState::Str => match c {
                '\\' => {
                    if let Some(&esc) = chars.peek() {
                        chars.next();
                        cur_string.push('\\');
                        cur_string.push(esc);
                    }
                }
                '"' => {
                    line.code.push('"');
                    line.strings.push(std::mem::take(&mut cur_string));
                    state = LexState::Code;
                }
                _ => cur_string.push(c),
            },
            LexState::RawStr(hashes) => {
                if c == '"' {
                    // Check for the closing hash run.
                    let mut lookahead = chars.clone();
                    let mut seen = 0u32;
                    while seen < hashes && lookahead.peek() == Some(&'#') {
                        lookahead.next();
                        seen += 1;
                    }
                    if seen == hashes {
                        for _ in 0..hashes {
                            chars.next();
                        }
                        line.code.push('"');
                        line.strings.push(std::mem::take(&mut cur_string));
                        state = LexState::Code;
                    } else {
                        cur_string.push('"');
                    }
                } else {
                    cur_string.push(c);
                }
            }
        }
    }
    out.push(line);
    out
}

/// Line-level pass: delimit `#[cfg(test)]` regions by brace depth.
fn mark_test_regions(lines: &mut [Line]) {
    // `#![cfg(test)]` as an inner attribute gates the whole file.
    let whole_file = lines
        .iter()
        .any(|l| squash(&l.code).contains("#![cfg(test)]"));

    let mut depth: i64 = 0;
    let mut regions: Vec<i64> = Vec::new();
    let mut pending_attr = false;

    for line in lines.iter_mut() {
        line.in_test = whole_file || !regions.is_empty();
        let code = squash(&line.code);
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            // The second pattern matches `#[cfg(all(test, ...))]`.
            pending_attr = true;
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_attr {
                        regions.push(depth);
                        pending_attr = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                ';' if pending_attr && regions.is_empty() => {
                    // `#[cfg(test)] mod tests;` — out-of-line module; the
                    // gated code lives in another file.
                    pending_attr = false;
                }
                _ => {}
            }
        }
    }
}

/// Remove whitespace so attribute spellings compare robustly.
fn squash(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Parse `xtask-allow(rule, ...): justification` comments and attach the
/// allowed rules to the line they suppress: the same line for a trailing
/// comment, the next code line for a standalone comment line.
fn attach_allows(lines: &mut [Line]) {
    let mut carried: Vec<String> = Vec::new();
    for line in lines.iter_mut() {
        let standalone = line.code.trim().is_empty();
        // Doc comments (`///` and `//!` surface as comment text starting
        // with `/` or `!`) never carry suppressions: docs may *mention* the
        // syntax without enacting it.
        let is_doc = line.comment.starts_with('/') || line.comment.starts_with('!');
        let (mut rules, malformed) = if is_doc {
            (Vec::new(), false)
        } else {
            parse_allow(&line.comment)
        };
        line.malformed_allow = malformed;
        let attribute_only = line.code.trim().starts_with("#[") || line.code.trim() == "]";
        if standalone || attribute_only {
            // Attribute lines (`#[allow(...)]` etc.) sit between a standalone
            // suppression comment and the statement it gates: pass through.
            carried.append(&mut rules);
        } else {
            line.allows.append(&mut carried);
            line.allows.append(&mut rules);
        }
    }
}

/// Extract rule ids from one comment's `xtask-allow(...)` uses. Returns the
/// rules and whether any use lacked a `: justification` tail.
fn parse_allow(comment: &str) -> (Vec<String>, bool) {
    let mut rules = Vec::new();
    let mut malformed = false;
    let mut rest = comment;
    while let Some(start) = rest.find("xtask-allow(") {
        let after = &rest[start + "xtask-allow(".len()..];
        let Some(close) = after.find(')') else {
            malformed = true;
            break;
        };
        let inside = &after[..close];
        let tail = &after[close + 1..];
        let justified = tail.strip_prefix(':').is_some_and(|j| !j.trim().is_empty());
        if justified {
            rules.extend(
                inside
                    .split(',')
                    .map(|r| r.trim().to_owned())
                    .filter(|r| !r.is_empty()),
            );
        } else {
            malformed = true;
        }
        rest = tail;
    }
    (rules, malformed)
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // fixture access; a miss is a test failure
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_and_kept() {
        let f = SourceFile::parse("a.rs", "let x = 1; // trailing\n/* block */ let y = 2;\n");
        assert_eq!(f.lines[0].code, "let x = 1; ");
        assert_eq!(f.lines[0].comment, " trailing");
        assert_eq!(f.lines[1].code, " let y = 2;");
    }

    #[test]
    fn string_contents_are_blanked_but_recorded() {
        let f = SourceFile::parse("a.rs", r#"call("_bgp_err_x", "unwrap() inside");"#);
        assert_eq!(f.lines[0].code, r#"call("", "");"#);
        assert_eq!(
            f.lines[0].strings,
            vec!["_bgp_err_x".to_owned(), "unwrap() inside".to_owned()]
        );
    }

    #[test]
    fn raw_strings_and_escapes() {
        let f = SourceFile::parse("a.rs", "let s = r#\"a\"b\"#; let t = \"q\\\"w\";");
        assert_eq!(f.lines[0].strings[0], "a\"b");
        assert_eq!(f.lines[0].strings[1], "q\\\"w");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = SourceFile::parse("a.rs", "fn f<'a>(x: &'a str) { let c = '\"'; g(c); }");
        // The double-quote char literal must not open a string.
        assert!(f.lines[0].code.contains("g(c)"));
        assert!(f.lines[0].strings.is_empty());
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn lib2() {}\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn inner_cfg_test_gates_whole_file() {
        let f = SourceFile::parse("a.rs", "#![cfg(test)]\nfn t() { x.unwrap(); }\n");
        assert!(f.lines.iter().all(|l| l.in_test));
    }

    #[test]
    fn allow_comments_attach_to_code_lines() {
        let src = "// xtask-allow(no-panic): locked mutex, poisoning is fatal by design\n\
                   let g = m.lock().unwrap();\n\
                   let h = n.lock().unwrap(); // xtask-allow(no-panic): same invariant\n\
                   let bad = o.lock().unwrap(); // xtask-allow(no-panic)\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.is_allowed("no-panic", 2));
        assert!(f.is_allowed("no-panic", 3));
        assert!(!f.is_allowed("no-panic", 4), "missing justification");
        assert!(f.lines[3].malformed_allow);
    }

    #[test]
    fn allow_comments_pass_through_attribute_lines() {
        let src = "// xtask-allow(no-panic): the matching clippy allow sits in between\n\
                   #[allow(clippy::expect_used)]\n\
                   let v = w.first().expect(\"non-empty\");\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(!f.is_allowed("no-panic", 2));
        assert!(f.is_allowed("no-panic", 3));
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::parse("a.rs", "/* a /* b */ still comment */ code();\n");
        assert_eq!(f.lines[0].code.trim(), "code();");
    }

    #[test]
    fn multi_hash_raw_strings() {
        // `r##"…"##` may contain `"#` without closing; only `"##` ends it.
        let f = SourceFile::parse("a.rs", "let s = r##\"has \"# inside\"##; done();\n");
        assert_eq!(f.lines[0].strings[0], "has \"# inside");
        assert!(f.lines[0].code.contains("done()"));
        // A lone `r` identifier is not a raw-string opener.
        let g = SourceFile::parse("a.rs", "let r = r + 1;\n");
        assert_eq!(g.lines[0].code, "let r = r + 1;");
    }

    #[test]
    fn byte_strings_and_byte_raw_strings() {
        let f = SourceFile::parse("a.rs", "let b = b\"bytes with .unwrap()\"; h();\n");
        assert_eq!(f.lines[0].strings[0], "bytes with .unwrap()");
        assert!(f.lines[0].code.contains("h()"));
        assert!(!f.lines[0].code.contains("unwrap"));
        let g = SourceFile::parse("a.rs", "let b = br#\"raw \" bytes\"#; k();\n");
        assert_eq!(g.lines[0].strings[0], "raw \" bytes");
        assert!(g.lines[0].code.contains("k()"));
    }

    #[test]
    fn crlf_line_endings_leave_no_carriage_return_in_code() {
        let f = SourceFile::parse("a.rs", "struct Unit;\r\nfn f() {}\r\n");
        assert_eq!(f.lines[0].code, "struct Unit;");
        assert!(
            f.lines[0].code.ends_with(';'),
            "trailing \\r breaks ends_with"
        );
        assert_eq!(f.lines[1].code, "fn f() {}");
    }

    #[test]
    fn multiline_raw_string_blanks_every_line() {
        let f = SourceFile::parse("a.rs", "let s = r#\"line one\nline two\"#; tail();\n");
        // Code on the continuation line is only the closing quote + tail.
        assert!(f.lines[0].code.contains("let s = \""));
        assert!(f.lines[1].code.contains("tail()"));
        assert_eq!(f.lines[1].strings[0], "line one\nline two");
    }
}
