//! # `xtask` — the workspace's static-analysis harness
//!
//! Invoked as `cargo xtask lint` (the alias lives in `.cargo/config.toml`),
//! this crate enforces the *domain* invariants that `rustc` and `clippy`
//! cannot see:
//!
//! * **Determinism** — `crates/core` and `crates/stats` may not read ambient
//!   clocks or entropy; the paper's co-analysis must be a pure function of
//!   its input logs and explicit seeds.
//! * **Cross-crate consistency** — every ERRCODE the classifier mentions
//!   must exist in `raslog`'s catalog.
//! * **Totality over severities** — no wildcard `match` over `Severity`.
//! * **No panic paths** — library code returns typed errors; `unwrap`,
//!   `expect`, and `panic!` are confined to test code.
//! * **Structural hygiene** — crate roots carry `#![forbid(unsafe_code)]`
//!   and `#![warn(missing_docs)]`; public pipeline stages document their
//!   input/output contract; `Cargo.lock` carries no duplicate majors.
//!
//! A finding is suppressed — visibly, greppably — with a justification
//! comment on or directly above the offending line:
//!
//! ```text
//! // xtask-allow(no-panic): mutex poisoning is unrecoverable here by design
//! let guard = lock.lock().unwrap();
//! ```
//!
//! See `DESIGN.md` § "Static analysis & invariants" for the full catalog and
//! the policy for adding rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod source;
pub mod stagegraph;
pub mod syntax;
pub mod workspace;

pub use rules::{Finding, RuleInfo, RULES};
pub use source::SourceFile;
