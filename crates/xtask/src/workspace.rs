//! Workspace discovery and the lint runner.
//!
//! Walks the workspace the same way Cargo sees it (members listed in the
//! root `Cargo.toml`), loads library sources, scopes each rule to the files
//! it governs, applies `xtask-allow` suppressions, and returns the surviving
//! findings.

use crate::rules::{self, Finding};
use crate::source::SourceFile;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Find the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no workspace root (Cargo.toml with [workspace]) above the current directory",
            ));
        }
    }
}

/// Parse the `members = [...]` list out of the root manifest.
pub fn members(root: &Path) -> io::Result<Vec<PathBuf>> {
    let text = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut out = vec![PathBuf::from(".")]; // the root facade package
    let mut in_members = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("members = [") {
            in_members = true;
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                out.push(PathBuf::from(piece));
            }
            if line.ends_with(']') {
                break;
            }
        }
    }
    Ok(out)
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&d)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// All library sources of the workspace: `(member dir, src file)` pairs.
/// Library code means everything under each member's `src/` — unit tests
/// inside those files are excluded line-wise by the `cfg(test)` mask, while
/// `tests/`, `benches/`, and `examples/` directories are not library code
/// and are skipped entirely.
pub fn library_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for member in members(root)? {
        for file in rust_files(&root.join(&member).join("src"))? {
            let text = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::parse(&rel, &text));
        }
    }
    Ok(out)
}

/// Crate-root files: `src/lib.rs`, `src/main.rs` for bin-only members, and
/// every `src/bin/*.rs` binary — each is a separate crate root and needs
/// its own `#![forbid(unsafe_code)]` / `#![warn(missing_docs)]`.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || path
            .rsplit_once('/')
            .is_some_and(|(dir, file)| dir.ends_with("src/bin") && file.ends_with(".rs"))
}

/// The pure modules of the serve daemon: byte-in/frame-out protocol code,
/// counters, data structures, config parsing, the chunk-consuming source
/// context, and cassette replay. These must stay clock- and entropy-free so
/// their behavior is a function of their inputs; the layers that
/// legitimately read clocks (`http`, `server`, `timing`, and `recorder`,
/// which deliberately owns the one `Instant` behind `--record`) are the
/// remaining exemptions.
const SERVE_DETERMINISTIC_MODULES: &[&str] = &[
    "crates/serve/src/protocol.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/ring.rs",
    "crates/serve/src/shard.rs",
    "crates/serve/src/config.rs",
    "crates/serve/src/error.rs",
    "crates/serve/src/lib.rs",
    "crates/serve/src/source.rs",
    "crates/serve/src/replay.rs",
    // The continuous full-analysis worker folds ingest batches through the
    // delta session; its snapshots must be a pure function of the batches.
    "crates/serve/src/full.rs",
];

/// True for sources the `determinism` rule governs. Besides the analysis
/// pipeline and statistics substrate, the ingestion and snapshot layers must
/// be deterministic: a parallel parse must yield the same records in the
/// same order as a serial one, and snapshot bytes must be reproducible. The
/// serve daemon's pure modules join the scope for the same reason — its
/// sharded counters must reconcile exactly with the batch pipeline.
fn in_deterministic_scope(path: &str) -> bool {
    path.starts_with("crates/core/src")
        || path.starts_with("crates/stats/src")
        // The ports layer decodes bytes into records and replays cassettes;
        // both must be pure functions of their inputs (the recorded
        // `delta_nanos` come from `serve`'s recorder, never from here).
        || path.starts_with("crates/ports/src")
        || path == "crates/bgp-model/src/bytes.rs"
        || path == "crates/bgp-model/src/snapshot.rs"
        // The mmap wrapper feeds the same parse paths as buffered reads;
        // mapped bytes must decode identically however they were loaded.
        || path == "crates/bgp-model/src/mmap.rs"
        // The bench crate's timing harness reads clocks by design, but its
        // frozen serial reference kernels must not: BENCH_PIPELINE.json's
        // `matches_baseline` flags compare their output bit-for-bit against
        // the parallel kernels.
        || path == "crates/bench/src/baseline.rs"
        || path.ends_with("raslog/src/ingest.rs")
        || path.ends_with("raslog/src/snapshot.rs")
        || path.ends_with("joblog/src/ingest.rs")
        || path.ends_with("joblog/src/snapshot.rs")
        || SERVE_DETERMINISTIC_MODULES.contains(&path)
}

/// The `(record source, struct, snapshot codec)` triples the
/// `snapshot-version` rule ties together.
const SNAPSHOT_PAIRS: &[(&str, &str, &str)] = &[
    (
        "crates/raslog/src/record.rs",
        "RasRecord",
        "crates/raslog/src/snapshot.rs",
    ),
    (
        "crates/joblog/src/record.rs",
        "JobRecord",
        "crates/joblog/src/snapshot.rs",
    ),
    // The cassette codec defines both the frame struct and its on-disk
    // encoding in one module, so the pair points at the same file.
    (
        "crates/ports/src/cassette.rs",
        "CassetteFrame",
        "crates/ports/src/cassette.rs",
    ),
];

/// Sources the `parallel-determinism` rule governs: the files defining the
/// parallel kernels and their reduction paths, whose outputs the committed
/// benchmark baseline compares bit-for-bit. The `bool` is whether thread
/// creation is sanctioned there (the file *defines* a scope helper).
const KERNEL_SCOPE: &[(&str, bool)] = &[
    ("crates/core/src/stage.rs", true), // defines fork_join
    ("crates/core/src/matching.rs", false),
    ("crates/core/src/classify/root_cause.rs", false),
    ("crates/core/src/analysis/vulnerability.rs", false),
    ("crates/core/src/analysis/fda.rs", false),
    ("crates/bgp-model/src/bytes.rs", true), // defines map_chunks_parallel
];

/// Sources contributing hash-typed struct fields to the
/// `parallel-determinism` model: the kernels' own crates.
fn in_hash_model_scope(path: &str) -> bool {
    path.starts_with("crates/core/src") || path.starts_with("crates/bgp-model/src")
}

/// True for sources the `port-boundary` rule governs: everything except the
/// parser crates themselves (which define the entry points) and the one
/// sanctioned adapter module that wraps them.
fn in_port_boundary_scope(path: &str) -> bool {
    !(path.starts_with("crates/raslog/src")
        || path.starts_with("crates/joblog/src")
        || path == "crates/ports/src/bgp.rs")
}

/// True for sources the `stage-contract` rule governs: the pipeline stage
/// modules of the core crate.
fn in_stage_scope(path: &str) -> bool {
    (path.starts_with("crates/core/src/filter/")
        || path == "crates/core/src/matching.rs"
        || path == "crates/core/src/pipeline.rs"
        || path == "crates/core/src/stage.rs"
        || path == "crates/core/src/context.rs"
        || path.starts_with("crates/core/src/classify/"))
        && !path.ends_with("proptests.rs")
}

/// Run every rule (or the subset in `only`) over the workspace at `root`.
/// Returns `(surviving findings, suppressed count)`.
pub fn run_lint(root: &Path, only: Option<&BTreeSet<String>>) -> io::Result<(Vec<Finding>, usize)> {
    let sources = library_sources(root)?;
    let enabled = |rule: &str| only.is_none_or(|set| set.contains(rule));

    let mut findings: Vec<Finding> = Vec::new();

    for file in &sources {
        if enabled("determinism") && in_deterministic_scope(&file.path) {
            findings.extend(rules::determinism(file));
        }
        if enabled("no-panic") {
            findings.extend(rules::no_panic(file));
        }
        if enabled("severity-wildcard") {
            findings.extend(rules::severity_wildcard(file));
        }
        if enabled("crate-attrs") && is_crate_root(&file.path) {
            findings.extend(rules::crate_attrs(file));
        }
        if enabled("stage-contract") && in_stage_scope(&file.path) {
            findings.extend(rules::stage_contract(file));
        }
        if enabled("allow-syntax") {
            findings.extend(rules::allow_syntax(file));
        }
        if enabled("serve-concurrency") && file.path.starts_with("crates/serve/src") {
            findings.extend(rules::serve_concurrency(file));
        }
        if enabled("port-boundary") && in_port_boundary_scope(&file.path) {
            findings.extend(rules::port_boundary(file));
        }
        // Scoped by content, not path: it fires wherever a doc block
        // advertises a SWAR/SIMD implementation. The lint harness and the
        // bench harness are exempt — their docs *mention* SWAR (rules about
        // scans; kernels timing scans) without implementing one.
        if enabled("simd-fallback")
            && !file.path.starts_with("crates/xtask/src")
            && !file.path.starts_with("crates/bench/src")
        {
            findings.extend(rules::simd_fallback(file));
        }
    }

    if enabled("parallel-determinism") {
        let model_sources: Vec<&SourceFile> = sources
            .iter()
            .filter(|f| in_hash_model_scope(&f.path))
            .collect();
        let model = crate::stagegraph::hash_model(&model_sources);
        for &(path, spawn_sanctioned) in KERNEL_SCOPE {
            if let Some(file) = sources.iter().find(|f| f.path == path) {
                findings.extend(rules::parallel_determinism(file, &model, spawn_sanctioned));
            }
        }
    }

    if enabled("stage-deps") {
        let stage = sources
            .iter()
            .find(|f| f.path == "crates/core/src/stage.rs");
        let context = sources
            .iter()
            .find(|f| f.path == "crates/core/src/context.rs");
        match (stage, context) {
            (Some(stage), Some(context)) => {
                let core: Vec<&SourceFile> = sources
                    .iter()
                    .filter(|f| f.path.starts_with("crates/core/src"))
                    .collect();
                findings.extend(rules::stage_deps(stage, context, &core));
            }
            _ => findings.push(Finding {
                rule: "stage-deps",
                path: "crates/core/src/stage.rs".to_owned(),
                line: 0,
                message: "stage.rs / context.rs not found; stage graph unverifiable".to_owned(),
            }),
        }
    }

    if enabled("errcode-catalog") {
        let catalog = sources
            .iter()
            .find(|f| f.path == "crates/raslog/src/catalog.rs");
        // The classifier keys decisions on code names, and the simulator
        // emits records by name — both must agree with the catalog.
        let classify: Vec<&SourceFile> = sources
            .iter()
            .filter(|f| {
                f.path.starts_with("crates/core/src/classify/")
                    || f.path.starts_with("crates/bgp-sim/src/")
            })
            .collect();
        match catalog {
            Some(cat) => findings.extend(rules::errcode_catalog(cat, &classify)),
            None => findings.push(Finding {
                rule: "errcode-catalog",
                path: "crates/raslog/src/catalog.rs".to_owned(),
                line: 0,
                message: "catalog source not found".to_owned(),
            }),
        }
    }

    if enabled("snapshot-version") {
        for &(record_path, struct_name, snap_path) in SNAPSHOT_PAIRS {
            let record = sources.iter().find(|f| f.path == record_path);
            let snap = sources.iter().find(|f| f.path == snap_path);
            match (record, snap) {
                (Some(r), Some(s)) => findings.extend(rules::snapshot_version(r, struct_name, s)),
                _ => findings.push(Finding {
                    rule: "snapshot-version",
                    path: record_path.to_owned(),
                    line: 0,
                    message: format!(
                        "expected sources `{record_path}` and `{snap_path}` not both found"
                    ),
                }),
            }
        }
    }

    if enabled("dep-versions") {
        let lock = root.join("Cargo.lock");
        if lock.is_file() {
            findings.extend(rules::dup_major_versions(&fs::read_to_string(lock)?));
        }
    }

    // Apply suppressions (never for allow-syntax: a malformed suppression
    // cannot suppress itself).
    let by_path: std::collections::BTreeMap<&str, &SourceFile> =
        sources.iter().map(|f| (f.path.as_str(), f)).collect();
    let before = findings.len();
    findings.retain(|f| {
        f.rule == "allow-syntax"
            || !by_path
                .get(f.path.as_str())
                .is_some_and(|src| src.is_allowed(f.rule, f.line))
    });
    let suppressed = before - findings.len();

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok((findings, suppressed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_scope_covers_serve_pure_modules_only() {
        // Pure modules are in scope, including the chunk-consuming source
        // context and the cassette replayer...
        for path in SERVE_DETERMINISTIC_MODULES {
            assert!(in_deterministic_scope(path), "{path} should be in scope");
        }
        // ...while the clock-reading layers are deliberately outside it —
        // `recorder` owns the one `Instant` that stamps cassette deltas.
        for path in [
            "crates/serve/src/recorder.rs",
            "crates/serve/src/http.rs",
            "crates/serve/src/server.rs",
            "crates/serve/src/timing.rs",
        ] {
            assert!(
                !in_deterministic_scope(path),
                "{path} must stay out of scope"
            );
        }
        // The long-standing members are unaffected, and the whole ports
        // layer (decoders + cassette codec) is governed.
        assert!(in_deterministic_scope("crates/core/src/stream.rs"));
        assert!(in_deterministic_scope("crates/ports/src/cassette.rs"));
        assert!(in_deterministic_scope("crates/ports/src/syslog.rs"));
        assert!(!in_deterministic_scope("crates/bgp-sim/src/engine.rs"));
        // The delta/SIMD ingest additions: the mmap wrapper and the serve
        // full-analysis fold are pure functions of their inputs, and the
        // delta-session modules ride in under the crates/core/src prefix.
        assert!(in_deterministic_scope("crates/bgp-model/src/mmap.rs"));
        assert!(in_deterministic_scope("crates/serve/src/full.rs"));
        assert!(in_deterministic_scope("crates/core/src/context.rs"));
        assert!(in_deterministic_scope("crates/core/src/stage.rs"));
    }

    #[test]
    fn port_boundary_scope_exempts_only_the_parsers_and_the_adapter() {
        for path in [
            "crates/raslog/src/ingest.rs",
            "crates/raslog/src/lib.rs",
            "crates/joblog/src/ingest.rs",
            "crates/ports/src/bgp.rs",
        ] {
            assert!(!in_port_boundary_scope(path), "{path} must be exempt");
        }
        for path in [
            "crates/ports/src/syslog.rs",
            "crates/core/src/load.rs",
            "crates/serve/src/source.rs",
            "src/bin/coctl.rs",
        ] {
            assert!(in_port_boundary_scope(path), "{path} must be governed");
        }
    }

    #[test]
    fn determinism_scope_covers_bench_baseline_but_not_timers() {
        // The parallel kernels and the frozen serial references they are
        // compared against are both governed...
        for path in [
            "crates/core/src/matching.rs",
            "crates/core/src/classify/root_cause.rs",
            "crates/core/src/analysis/vulnerability.rs",
            "crates/core/src/analysis/fda.rs",
            "crates/bench/src/baseline.rs",
        ] {
            assert!(in_deterministic_scope(path), "{path} should be in scope");
        }
        // Every parallel kernel file is also governed by the determinism
        // rule — `parallel-determinism` scope is a subset by construction.
        for &(path, _) in KERNEL_SCOPE {
            assert!(in_deterministic_scope(path), "{path} should be in scope");
        }
        // ...while the bench harness itself times things on purpose.
        for path in [
            "crates/bench/src/bench_pipeline.rs",
            "crates/bench/src/experiments.rs",
            "crates/bench/src/lib.rs",
        ] {
            assert!(
                !in_deterministic_scope(path),
                "{path} must stay out of scope"
            );
        }
    }
}
