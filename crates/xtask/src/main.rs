//! CLI entry point for `cargo xtask`.
//!
//! Subcommands:
//! * `lint [--only rule,rule] [--list] [--json]` — run the static-analysis
//!   harness. `--json` emits one object per finding on stdout for tooling.
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask lint [--only <rule>[,<rule>...]] [--list] [--json]\n\
         \n\
         Runs the workspace's domain lints. `--list` prints the rule catalog;\n\
         `--only` restricts the run to the named rules; `--json` prints the\n\
         findings as a JSON report instead of human-readable lines."
    );
    ExitCode::from(2)
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the full lint report as a single JSON document.
fn json_report(findings: &[xtask::rules::Finding], suppressed: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"count\": {},\n  \"suppressed\": {suppressed}\n}}",
        findings.len()
    ));
    out
}

fn list_rules() {
    for rule in xtask::RULES {
        println!("{:<18} {}", rule.id, rule.summary);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = args.iter();
    match args.next().map(String::as_str) {
        Some("lint") => {}
        _ => return usage(),
    }

    let mut only: Option<BTreeSet<String>> = None;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                list_rules();
                return ExitCode::SUCCESS;
            }
            "--json" => {
                json = true;
            }
            "--only" => {
                let Some(names) = args.next() else {
                    return usage();
                };
                let set: BTreeSet<String> = names.split(',').map(|s| s.trim().to_owned()).collect();
                let known: BTreeSet<&str> = xtask::RULES.iter().map(|r| r.id).collect();
                for name in &set {
                    if !known.contains(name.as_str()) {
                        eprintln!("unknown rule `{name}` (try `cargo xtask lint --list`)");
                        return ExitCode::from(2);
                    }
                }
                only = Some(set);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    // Cargo runs the binary from the invocation directory; CARGO_MANIFEST_DIR
    // is a more reliable anchor when present.
    let anchor = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or(cwd);

    let root = match xtask::workspace::find_root(&anchor) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };

    match xtask::workspace::run_lint(&root, only.as_ref()) {
        Ok((findings, suppressed)) => {
            if json {
                println!("{}", json_report(&findings, suppressed));
            } else {
                for f in &findings {
                    println!("{f}");
                }
                let status = if findings.is_empty() {
                    "clean"
                } else {
                    "FAILED"
                };
                println!(
                    "xtask lint: {status} — {} finding(s), {suppressed} suppressed by xtask-allow",
                    findings.len()
                );
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}
